"""Table 1 — dataset statistics for the twelve (surrogate) networks.

Prints, for each surrogate, the same columns the paper reports: name,
network type, n, m, m/n, average degree, max degree and ``|G|`` (8 bytes
per edge direction). The paper's original magnitudes are shown alongside
so EXPERIMENTS.md can record the scale substitution explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.harness import ExperimentConfig
from repro.graphs.stats import GraphStats, compute_stats
from repro.utils.formatting import format_table


@dataclass
class Table1Row:
    stats: GraphStats
    paper_vertices: str
    paper_edges: str
    paper_avg_degree: float


def run(config: Optional[ExperimentConfig] = None) -> List[Table1Row]:
    """Generate every surrogate and compute its Table 1 row."""
    config = config or ExperimentConfig()
    names = config.datasets or list(DATASETS)
    rows: List[Table1Row] = []
    for name in names:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=config.scale)
        rows.append(
            Table1Row(
                stats=compute_stats(graph, network_type=spec.network_type),
                paper_vertices=spec.paper_vertices,
                paper_edges=spec.paper_edges,
                paper_avg_degree=spec.paper_avg_degree,
            )
        )
    return rows


def render(rows: List[Table1Row]) -> str:
    headers = [
        "Dataset",
        "Type",
        "n",
        "m",
        "m/n",
        "avg.deg",
        "max.deg",
        "|G|",
        "paper n",
        "paper m",
    ]
    body = []
    for row in rows:
        cells = row.stats.as_row()
        body.append(cells[:1] + cells[1:] + [row.paper_vertices, row.paper_edges])
    return format_table(headers, body)


def main() -> None:
    print("Table 1: datasets (synthetic surrogates; paper columns on the right)")
    print(render(run()))


if __name__ == "__main__":
    main()
