"""Run every experiment driver and write one consolidated report.

``python -m repro.experiments.runall [output.md]`` regenerates Tables
1-3 and Figures 1/6/7/8/9 at the current configuration and writes them
into a single markdown report — the machine-generated companion to the
hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Optional

from repro.experiments import figure1, figure6, figure7, figure8, figure9, table1, table2, table3
from repro.experiments.harness import ExperimentConfig

_SECTIONS = [
    ("Table 1 — datasets", table1),
    ("Table 2 — CT / QT / ALS", table2),
    ("Table 3 — labelling sizes", table3),
    ("Figure 1 — overview", figure1),
    ("Figure 6 — distance distributions", figure6),
    ("Figure 7 — landmarks sweep: CT & QT", figure7),
    ("Figure 8 — landmarks sweep: label size", figure8),
    ("Figure 9 — pair coverage", figure9),
]


def run_all(
    config: Optional[ExperimentConfig] = None, output: Optional[Path] = None
) -> str:
    """Run every driver; returns (and optionally writes) the report text."""
    config = config or ExperimentConfig()
    lines = [
        "# Regenerated evaluation report",
        "",
        f"configuration: scale={config.scale}, k={config.num_landmarks}, "
        f"pairs={config.num_query_pairs}, budget={config.construction_budget_s}s",
        "",
    ]
    for title, module in _SECTIONS:
        start = time.perf_counter()
        result = module.run(config)
        elapsed = time.perf_counter() - start
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(module.render(result))
        lines.append("```")
        lines.append(f"_(regenerated in {elapsed:.1f}s)_")
        lines.append("")
    report = "\n".join(lines)
    if output is not None:
        output.write_text(report)
    return report


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("evaluation_report.md")
    report = run_all(output=output)
    print(report)
    print(f"\n[report written to {output}]")


if __name__ == "__main__":
    main()
