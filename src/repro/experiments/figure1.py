"""Figure 1 — the paper's high-level overview, regenerated from our builds.

Three panels:

* **(a)** query time vs index size per method (scatter) — labelling
  methods (PLL) sit at large-index/fast-query, online methods (Bi-BFS,
  Dijkstra) at zero-index/slow-query, hybrids (HL, FD, IS-L) in between
  with HL at the smallest index among the hybrids.
* **(b)** construction time vs network size — only HL/HL-P keep
  finishing as the surrogates grow; PLL and IS-L hit their budgets first
  (the paper's DNF wall between 400M and 8B edges).
* **(c)** the properties matrix — ordering-dependence, 2HC/HWC
  minimality and parallelism. Unlike the paper's static table, the HL
  column is *verified programmatically* on a sample graph via
  :mod:`repro.core.verification`.

HDB/HHL/RXL/CRXL are omitted exactly as the paper omits them from its own
measured tables (Section 6.2: dominated by FD and PLL respectively).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.construction import build_highway_cover_labelling
from repro.core.verification import is_hwc_minimal
from repro.datasets.registry import load_dataset
from repro.experiments.harness import (
    ExperimentConfig,
    MethodMeasurement,
    measure_method,
)
from repro.graphs.sampling import sample_vertex_pairs
from repro.landmarks.selection import select_landmarks
from repro.utils.formatting import format_bytes, format_table

PANEL_A_METHODS = ["HL", "FD", "PLL", "IS-L", "Bi-BFS", "Dijkstra"]
PANEL_B_METHODS = ["HL-P", "HL", "FD", "PLL", "IS-L"]

#: Figure 1(c): method -> (ordering-dependent?, 2HC-minimal, HWC-minimal,
#: parallelism). Values follow the paper's table; HL's are re-verified.
PROPERTIES: Dict[str, Tuple[str, str, str, str]] = {
    "HL (ours)": ("no", "n/a", "yes", "landmarks"),
    "FD": ("no", "no", "no", "neighbours"),
    "IS-L": ("yes", "no", "no", "no"),
    "PLL": ("yes", "yes", "no", "neighbours"),
    "HDB": ("yes", "no", "no", "no"),
    "HHL": ("yes", "no", "no", "no"),
}


@dataclass
class Figure1Result:
    panel_a: List[MethodMeasurement] = field(default_factory=list)
    panel_b: Dict[str, List[Tuple[int, Optional[float]]]] = field(default_factory=dict)
    hl_hwc_minimal_verified: bool = False


def run(config: Optional[ExperimentConfig] = None) -> Figure1Result:
    config = config or ExperimentConfig()
    result = Figure1Result()

    # Panel (a): one medium dataset, all methods.
    graph = load_dataset("Skitter", scale=config.scale)
    pairs = sample_vertex_pairs(graph, config.num_online_pairs, seed=config.seed)
    for method in PANEL_A_METHODS:
        result.panel_a.append(measure_method(method, graph, pairs, config))

    # Panel (b): construction time across growing network sizes.
    sizes = ["Skitter", "LiveJournal", "uk2007", "ClueWeb09"]
    for method in PANEL_B_METHODS:
        series: List[Tuple[int, Optional[float]]] = []
        for name in sizes:
            g = load_dataset(name, scale=config.scale)
            meas = measure_method(method, g, pairs[:0], config, measure_queries=False)
            series.append((g.num_edges, meas.construction_seconds))
        result.panel_b[method] = series

    # Panel (c): verify HL's HWC-minimality claim on a sample graph.
    sample = load_dataset("Skitter", scale=min(config.scale, 0.05))
    landmarks = select_landmarks(sample, min(10, sample.num_vertices))
    labelling, highway = build_highway_cover_labelling(sample, landmarks)
    result.hl_hwc_minimal_verified = is_hwc_minimal(sample, labelling, highway)
    return result


def render(result: Figure1Result) -> str:
    lines: List[str] = ["(a) query time vs index size (Skitter surrogate):"]
    body_a = []
    for meas in result.panel_a:
        body_a.append(
            [
                meas.method,
                format_bytes(meas.size_bytes) if meas.finished else "DNF",
                meas.qt_cell() if meas.finished else "-",
            ]
        )
    lines.append(format_table(["Method", "Index size", "QT[ms]"], body_a))

    lines.append("\n(b) construction time vs network size (m edges):")
    body_b = []
    for method, series in result.panel_b.items():
        row = [method]
        for m_edges, ct in series:
            row.append(f"m={m_edges}: " + (f"{ct:.2f}s" if ct is not None else "DNF"))
        body_b.append(row)
    lines.append(format_table(["Method", "size 1", "size 2", "size 3", "size 4"], body_b))

    lines.append("\n(c) properties (HL column verified programmatically):")
    body_c = [
        [name, *props] for name, props in PROPERTIES.items()
    ]
    lines.append(
        format_table(
            ["Method", "Ordering-dep?", "2HC-minimal", "HWC-minimal", "Parallel"],
            body_c,
        )
    )
    lines.append(
        f"verified: HL labelling is HWC-minimal = {result.hl_hwc_minimal_verified}"
    )
    return "\n".join(lines)


def main() -> None:
    print("Figure 1: overview of methods")
    print(render(run()))


if __name__ == "__main__":
    main()
