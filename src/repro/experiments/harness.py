"""Shared experiment machinery: method factories, measurement, DNF.

The harness knows how to build any of the paper's methods by name, time
its construction under a budget (rendering overruns as ``DNF``, exactly
how Tables 2-3 report methods that did not finish), and time query
batches over a shared random pair sample.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api import Capability, capabilities_of, make_oracle
from repro.errors import ConstructionBudgetExceeded
from repro.graphs.graph import Graph

#: Sentinel string used in printed tables, mirroring the paper.
DNF = "DNF"


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``scale`` multiplies every surrogate's vertex count;
    ``REPRO_SCALE`` overrides the default so the benchmark suite can be
    sized to the machine. Budgets are deliberately small: they exist to
    reproduce the paper's DNF *pattern*, not to wait a day.
    """

    scale: float = float(os.environ.get("REPRO_SCALE", "0.25"))
    num_landmarks: int = 20
    num_query_pairs: int = int(os.environ.get("REPRO_QUERY_PAIRS", "400"))
    num_online_pairs: int = 50  # Bi-BFS pairs (paper uses 1000 of 100k)
    construction_budget_s: float = float(os.environ.get("REPRO_BUDGET_S", "20"))
    seed: int = 42
    datasets: Optional[List[str]] = None


@dataclass
class MethodMeasurement:
    """One method on one dataset: the cells it contributes to Tables 2-3."""

    method: str
    dataset: str
    construction_seconds: Optional[float]  # None = DNF
    avg_query_ms: Optional[float]
    average_label_size: Optional[float]
    size_bytes: Optional[int]
    als_display: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.construction_seconds is not None

    def ct_cell(self) -> str:
        return f"{self.construction_seconds:.2f}" if self.finished else DNF

    def qt_cell(self) -> str:
        if self.avg_query_ms is None:
            return "-"
        return f"{self.avg_query_ms:.3f}"

    def als_cell(self) -> str:
        if self.als_display:
            return self.als_display
        if self.average_label_size is None:
            return "-"
        return f"{self.average_label_size:.0f}"


def make_method(name: str, config: ExperimentConfig) -> object:
    """Instantiate a method by its paper name with the config's budgets.

    Thin wrapper over the :mod:`repro.api` method registry
    (:func:`repro.api.make_oracle`): this function only maps the
    config's knobs onto each method's constructor options, so newly
    registered backends are available to every experiment for free.
    """
    budget = config.construction_budget_s
    landmark_methods = dict(num_landmarks=config.num_landmarks, budget_s=budget)
    options: Dict[str, dict] = {
        "HL": landmark_methods,
        "HL-P": landmark_methods,
        "HL(8)": landmark_methods,
        "FD": landmark_methods,
        "ALT": landmark_methods,
        "PLL": dict(budget_s=budget),
        "IS-L": dict(budget_s=budget),
        "Bi-BFS": {},
        "BFS": {},
        "Dijkstra": {},
    }
    try:
        opts = options[name]
    except KeyError as exc:
        raise KeyError(f"unknown method {name!r}; options: {sorted(options)}") from exc
    return make_oracle(name, **opts)


def measure_method(
    name: str,
    graph: Graph,
    pairs: np.ndarray,
    config: ExperimentConfig,
    measure_queries: bool = True,
) -> MethodMeasurement:
    """Build + query one method on one dataset.

    Construction overruns (:class:`ConstructionBudgetExceeded`) become a
    DNF row; queries are then skipped, as in the paper's tables.
    """
    method = make_method(name, config)
    start = time.perf_counter()
    try:
        method.build(graph)
    except ConstructionBudgetExceeded:
        return MethodMeasurement(
            method=name,
            dataset=graph.name,
            construction_seconds=None,
            avg_query_ms=None,
            average_label_size=None,
            size_bytes=None,
        )
    construction_seconds = time.perf_counter() - start

    avg_query_ms = None
    if measure_queries and len(pairs):
        # The paper's query workload is bulk (100k random pairs per
        # dataset), so batch-capable methods are timed through
        # query_many: vectorized for HL, the correctness-equivalent
        # looped fallback for the baselines.
        t0 = time.perf_counter()
        if Capability.BATCH in capabilities_of(method):
            method.query_many(pairs)
        else:
            query = method.query
            for s, t in pairs:
                query(int(s), int(t))
        avg_query_ms = (time.perf_counter() - t0) / len(pairs) * 1e3

    als_display = method.als_display() if hasattr(method, "als_display") else ""
    return MethodMeasurement(
        method=name,
        dataset=graph.name,
        construction_seconds=construction_seconds,
        avg_query_ms=avg_query_ms,
        average_label_size=method.average_label_size(),
        size_bytes=method.size_bytes(),
        als_display=als_display,
    )
