"""Figure 7 — HL construction time (a-d) and query time (e-g) vs #landmarks.

The paper sweeps the landmark count from 10 to 50 (top degrees) on all
twelve datasets. Expected shapes, both asserted in EXPERIMENTS.md:

* construction time grows ~linearly in the number of landmarks
  (one pruned BFS per landmark);
* query time stays flat or slightly improves (tighter upper bounds from
  better pair coverage offset the larger labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.query import HighwayCoverOracle
from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.harness import ExperimentConfig
from repro.graphs.sampling import sample_vertex_pairs
from repro.utils.formatting import format_table

LANDMARK_SWEEP = [10, 20, 30, 40, 50]


@dataclass
class Figure7Row:
    dataset: str
    construction_seconds: Dict[int, float] = field(default_factory=dict)
    avg_query_ms: Dict[int, float] = field(default_factory=dict)


def run(config: Optional[ExperimentConfig] = None) -> List[Figure7Row]:
    import time

    config = config or ExperimentConfig()
    names = config.datasets or list(DATASETS)
    rows: List[Figure7Row] = []
    for name in names:
        graph = load_dataset(name, scale=config.scale)
        pairs = sample_vertex_pairs(graph, config.num_query_pairs, seed=config.seed)
        row = Figure7Row(dataset=name)
        for k in LANDMARK_SWEEP:
            oracle = HighwayCoverOracle(num_landmarks=k).build(graph)
            row.construction_seconds[k] = oracle.construction_seconds
            t0 = time.perf_counter()
            for s, t in pairs:
                oracle.query(int(s), int(t))
            row.avg_query_ms[k] = (time.perf_counter() - t0) / len(pairs) * 1e3
        rows.append(row)
    return rows


def render(rows: List[Figure7Row]) -> str:
    headers = (
        ["Dataset"]
        + [f"CT[s] k={k}" for k in LANDMARK_SWEEP]
        + [f"QT[ms] k={k}" for k in LANDMARK_SWEEP]
    )
    body = []
    for row in rows:
        cells = [row.dataset]
        cells += [f"{row.construction_seconds[k]:.2f}" for k in LANDMARK_SWEEP]
        cells += [f"{row.avg_query_ms[k]:.3f}" for k in LANDMARK_SWEEP]
        body.append(cells)
    return format_table(headers, body)


def linearity_ratio(row: Figure7Row) -> float:
    """CT(50)/CT(10): ~5 when construction is linear in #landmarks."""
    lo = row.construction_seconds[LANDMARK_SWEEP[0]]
    hi = row.construction_seconds[LANDMARK_SWEEP[-1]]
    return hi / lo if lo > 0 else float("inf")


def main() -> None:
    config = ExperimentConfig()
    rows = run(config)
    print(f"Figure 7: HL under 10-50 landmarks (scale={config.scale})")
    print(render(rows))
    print(
        "CT(50)/CT(10) ratios (linear scaling => ~5): "
        + ", ".join(f"{r.dataset}={linearity_ratio(r):.1f}" for r in rows)
    )


if __name__ == "__main__":
    main()
