"""Table 2 — construction time, query time, and average label size.

Reproduces the paper's headline comparison: CT for HL-P, HL, FD, PLL and
IS-L; QT for HL, FD, PLL, IS-L and Bi-BFS; ALS for HL, FD, PLL and IS-L.
Methods that exceed the construction budget print ``DNF``, which is how
the paper reports PLL on 7/12 and IS-L on 9/12 datasets.

Expected shape (paper): ``CT(HL-P) < CT(HL) < CT(FD) << CT(PLL/IS-L)``;
``QT(HL) ~ QT(FD) << QT(Bi-BFS)``; ``ALS(HL)`` around 10-20 entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.harness import (
    DNF,
    ExperimentConfig,
    MethodMeasurement,
    measure_method,
)
from repro.graphs.sampling import sample_vertex_pairs
from repro.utils.formatting import format_table

CT_METHODS = ["HL-P", "HL", "FD", "PLL", "IS-L"]
QT_METHODS = ["HL", "FD", "PLL", "IS-L", "Bi-BFS"]
ALS_METHODS = ["HL", "FD", "PLL", "IS-L"]


@dataclass
class Table2Row:
    dataset: str
    measurements: Dict[str, MethodMeasurement] = field(default_factory=dict)


def run(config: Optional[ExperimentConfig] = None) -> List[Table2Row]:
    """Measure every method on every surrogate (respecting budgets)."""
    config = config or ExperimentConfig()
    names = config.datasets or list(DATASETS)
    rows: List[Table2Row] = []
    for name in names:
        graph = load_dataset(name, scale=config.scale)
        pairs = sample_vertex_pairs(graph, config.num_query_pairs, seed=config.seed)
        online_pairs = pairs[: config.num_online_pairs]
        row = Table2Row(dataset=name)
        for method in ["HL-P", "HL", "FD", "PLL", "IS-L", "Bi-BFS"]:
            method_pairs = online_pairs if method == "Bi-BFS" else pairs
            row.measurements[method] = measure_method(
                method, graph, method_pairs, config
            )
        rows.append(row)
    return rows


def render(rows: List[Table2Row]) -> str:
    headers = (
        ["Dataset"]
        + [f"CT[s] {m}" for m in CT_METHODS]
        + [f"QT[ms] {m}" for m in QT_METHODS]
        + [f"ALS {m}" for m in ALS_METHODS]
    )
    body = []
    for row in rows:
        cells: List[str] = [row.dataset]
        for m in CT_METHODS:
            cells.append(row.measurements[m].ct_cell())
        for m in QT_METHODS:
            meas = row.measurements[m]
            cells.append(meas.qt_cell() if meas.finished else "-")
        for m in ALS_METHODS:
            meas = row.measurements[m]
            cells.append(meas.als_cell() if meas.finished else "-")
        body.append(cells)
    return format_table(headers, body)


def main() -> None:
    config = ExperimentConfig()
    print(
        "Table 2: construction time (CT), query time (QT), avg label size "
        f"(ALS); k={config.num_landmarks} landmarks, scale={config.scale}, "
        f"budget={config.construction_budget_s}s ({DNF} = exceeded)"
    )
    print(render(run(config)))


if __name__ == "__main__":
    main()
