"""Experiment drivers that regenerate every table and figure of the paper.

Each module exposes ``run(...)`` returning structured results and a
``main()`` that prints the paper-shaped rows; all are runnable as
``python -m repro.experiments.<name>``. The pytest-benchmark wrappers in
``benchmarks/`` call the same ``run`` functions.
"""

from repro.experiments.harness import (
    DNF,
    ExperimentConfig,
    MethodMeasurement,
    make_method,
    measure_method,
)

__all__ = [
    "DNF",
    "ExperimentConfig",
    "MethodMeasurement",
    "make_method",
    "measure_method",
]
