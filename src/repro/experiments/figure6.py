"""Figure 6 — distance distribution of random vertex pairs.

The paper samples 100,000 pairs per dataset and plots the fraction of
pairs at each distance, confirming that most pairs in complex networks
sit at distances 2-8 (small-world). We regenerate the same series (ASCII
histogram) from the surrogates with exact HL distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.query import HighwayCoverOracle
from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.harness import ExperimentConfig
from repro.graphs.sampling import distance_distribution, sample_vertex_pairs


@dataclass
class Figure6Series:
    dataset: str
    distribution: Dict[int, float]  # distance -> fraction of pairs

    def modal_distance(self) -> int:
        return max(self.distribution, key=self.distribution.get)


def run(config: Optional[ExperimentConfig] = None) -> List[Figure6Series]:
    config = config or ExperimentConfig()
    names = config.datasets or list(DATASETS)
    series: List[Figure6Series] = []
    for name in names:
        graph = load_dataset(name, scale=config.scale)
        oracle = HighwayCoverOracle(num_landmarks=config.num_landmarks).build(graph)
        pairs = sample_vertex_pairs(graph, config.num_query_pairs, seed=config.seed)
        dist = distance_distribution(pairs, oracle.query)
        series.append(Figure6Series(dataset=name, distribution=dist))
    return series


def render(series: List[Figure6Series], bar_width: int = 40) -> str:
    lines: List[str] = []
    for s in series:
        lines.append(f"{s.dataset} (modal distance {s.modal_distance()}):")
        for distance, fraction in sorted(s.distribution.items()):
            label = "inf" if distance < 0 else str(distance)
            bar = "#" * max(1, int(round(fraction * bar_width)))
            lines.append(f"  d={label:>3}  {fraction:6.3f}  {bar}")
    return "\n".join(lines)


def main() -> None:
    config = ExperimentConfig()
    print(
        f"Figure 6: distance distribution of {config.num_query_pairs} random "
        f"pairs per dataset (scale={config.scale})"
    )
    print(render(run(config)))


if __name__ == "__main__":
    main()
