"""Figure 9 — pair coverage ratios, HL 10-50 landmarks vs FD-20.

A pair is *covered* when the offline upper bound is already the exact
distance — i.e. some (bit-parallel-augmented, for FD) landmark lies on a
shortest path between the endpoints. Expected shapes (paper §6.4.4):

* HL's coverage increases with the landmark count;
* FD-20's coverage is at or above HL-20's on most datasets: FD's
  bit-parallel masks effectively add up to 64 neighbour sub-hubs per
  landmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.fd import FullyDynamicOracle
from repro.core.query import HighwayCoverOracle
from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.harness import ExperimentConfig
from repro.graphs.sampling import sample_vertex_pairs
from repro.utils.formatting import format_table

LANDMARK_SWEEP = [10, 20, 30, 40, 50]


@dataclass
class Figure9Row:
    dataset: str
    hl_coverage: Dict[int, float] = field(default_factory=dict)
    fd_coverage: float = 0.0


def _coverage(oracle, pairs) -> float:
    if len(pairs) == 0:
        return 0.0
    if hasattr(oracle, "batch_engine"):
        # HL answers the whole sweep through the vectorized batch engine.
        return oracle.batch_engine().coverage_ratio(pairs)
    covered = sum(1 for s, t in pairs if oracle.is_covered(int(s), int(t)))
    return covered / len(pairs)


def run(config: Optional[ExperimentConfig] = None) -> List[Figure9Row]:
    config = config or ExperimentConfig()
    names = config.datasets or list(DATASETS)
    rows: List[Figure9Row] = []
    for name in names:
        graph = load_dataset(name, scale=config.scale)
        pairs = sample_vertex_pairs(graph, config.num_query_pairs, seed=config.seed)
        row = Figure9Row(dataset=name)
        for k in LANDMARK_SWEEP:
            oracle = HighwayCoverOracle(num_landmarks=k).build(graph)
            row.hl_coverage[k] = _coverage(oracle, pairs)
        fd = FullyDynamicOracle(num_landmarks=config.num_landmarks).build(graph)
        row.fd_coverage = _coverage(fd, pairs)
        rows.append(row)
    return rows


def render(rows: List[Figure9Row]) -> str:
    headers = ["Dataset"] + [f"HL-{k}" for k in LANDMARK_SWEEP] + ["FD-20"]
    body = []
    for row in rows:
        cells = [row.dataset]
        cells += [f"{row.hl_coverage[k]:.2f}" for k in LANDMARK_SWEEP]
        cells.append(f"{row.fd_coverage:.2f}")
        body.append(cells)
    return format_table(headers, body)


def main() -> None:
    config = ExperimentConfig()
    print(f"Figure 9: pair coverage ratios (scale={config.scale})")
    print(render(run(config)))


if __name__ == "__main__":
    main()
