"""Table 3 — labelling sizes: HL(8), HL, FD, PLL, IS-L.

Byte accounting follows Section 5.2: HL entries are 32+8 bit, HL(8)
entries 8+8 bit, FD stores k SPT entries per vertex plus BP words, PLL
32+8-bit entries plus BP words, IS-L 8-byte weighted entries.

Expected shape (paper): size(HL(8)) < size(HL) < size(FD) << size(PLL),
with PLL/IS-L DNF on the larger datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.harness import (
    DNF,
    ExperimentConfig,
    MethodMeasurement,
    measure_method,
)
from repro.utils.formatting import format_bytes, format_table

SIZE_METHODS = ["HL(8)", "HL", "FD", "PLL", "IS-L"]


@dataclass
class Table3Row:
    dataset: str
    measurements: Dict[str, MethodMeasurement] = field(default_factory=dict)


def run(config: Optional[ExperimentConfig] = None) -> List[Table3Row]:
    """Build every method per dataset and record index sizes (no queries)."""
    config = config or ExperimentConfig()
    names = config.datasets or list(DATASETS)
    rows: List[Table3Row] = []
    empty_pairs = np.empty((0, 2), dtype=np.int64)
    for name in names:
        graph = load_dataset(name, scale=config.scale)
        row = Table3Row(dataset=name)
        for method in SIZE_METHODS:
            row.measurements[method] = measure_method(
                method, graph, empty_pairs, config, measure_queries=False
            )
        rows.append(row)
    return rows


def render(rows: List[Table3Row]) -> str:
    headers = ["Dataset"] + SIZE_METHODS
    body = []
    for row in rows:
        cells = [row.dataset]
        for method in SIZE_METHODS:
            meas = row.measurements[method]
            cells.append(format_bytes(meas.size_bytes) if meas.finished else DNF)
        body.append(cells)
    return format_table(headers, body)


def main() -> None:
    config = ExperimentConfig()
    print(
        f"Table 3: labelling sizes; k={config.num_landmarks} landmarks, "
        f"scale={config.scale}, budget={config.construction_budget_s}s"
    )
    print(render(run(config)))


if __name__ == "__main__":
    main()
