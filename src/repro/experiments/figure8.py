"""Figure 8 — HL labelling sizes under 10-50 landmarks vs FD with 20.

Expected shape (paper): HL's size grows ~linearly with the number of
landmarks, yet even HL-50 stays at or below FD-20's size on almost every
dataset (FD stores an entry for *every* vertex per landmark; HL prunes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.fd import FullyDynamicOracle
from repro.core.query import HighwayCoverOracle
from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.harness import ExperimentConfig
from repro.utils.formatting import format_bytes, format_table

LANDMARK_SWEEP = [10, 20, 30, 40, 50]


@dataclass
class Figure8Row:
    dataset: str
    hl_size_bytes: Dict[int, int] = field(default_factory=dict)
    fd_size_bytes: int = 0


def run(config: Optional[ExperimentConfig] = None) -> List[Figure8Row]:
    config = config or ExperimentConfig()
    names = config.datasets or list(DATASETS)
    rows: List[Figure8Row] = []
    for name in names:
        graph = load_dataset(name, scale=config.scale)
        row = Figure8Row(dataset=name)
        for k in LANDMARK_SWEEP:
            oracle = HighwayCoverOracle(num_landmarks=k).build(graph)
            row.hl_size_bytes[k] = oracle.size_bytes()
        fd = FullyDynamicOracle(num_landmarks=config.num_landmarks).build(graph)
        row.fd_size_bytes = fd.size_bytes()
        rows.append(row)
    return rows


def render(rows: List[Figure8Row]) -> str:
    headers = ["Dataset"] + [f"HL-{k}" for k in LANDMARK_SWEEP] + ["FD-20"]
    body = []
    for row in rows:
        cells = [row.dataset]
        cells += [format_bytes(row.hl_size_bytes[k]) for k in LANDMARK_SWEEP]
        cells.append(format_bytes(row.fd_size_bytes))
        body.append(cells)
    return format_table(headers, body)


def main() -> None:
    config = ExperimentConfig()
    print(f"Figure 8: labelling sizes, HL 10-50 landmarks vs FD-20 (scale={config.scale})")
    print(render(run(config)))


if __name__ == "__main__":
    main()
