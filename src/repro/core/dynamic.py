"""Dynamic edge updates for the highway cover labelling (extension).

The paper's closest competitor (FD) is "fully dynamic"; HL itself is
presented as static. This module extends HL with *edge-insertion and
edge-deletion* maintenance, exploiting two structural facts:

1. Landmark-locality. The entries contributed by landmark ``r`` depend
   only on the shortest-path DAG rooted at ``r``. An edge ``(u, v)``
   can participate in that DAG **only if** ``|d(r, u) − d(r, v)| >= 1``
   in the old graph — an edge between equal BFS levels lies on no
   shortest path from ``r``. So an insertion can alter the DAG only if
   the endpoints sat on different levels, and a deletion can alter it
   only if the removed edge connected adjacent levels (for an existing
   edge, ``|d(r, u) − d(r, v)| <= 1``, so both cases collapse to the
   same test: ``d(r, u) != d(r, v)``).
2. Exact landmark distances are already decodable from the labels plus
   the highway (the landmark-to-vertex query of
   :class:`~repro.core.query.HighwayCoverOracle`), so the affected set is
   computable without touching the graph.

The repair reruns Algorithm 1's pruned BFS *only for affected
landmarks* — all of them advanced together in one pass of the stacked
engine (:func:`~repro.core.construction_engine.stacked_pruned_bfs`),
reusing the oracle's configured ``chunk_size`` — and splices the new
runs into the landmark-major label store
(:class:`~repro.core.labels.LandmarkMajorLabelStore`) in O(affected
entries): the unaffected ``k - |affected|`` landmarks are never read,
copied, or scanned. The result is asserted (by the test suite) to be
byte-identical to a fresh build on the updated graph, so all of the
paper's theorems keep holding after every update.

For deletions the same argument applies: if no shortest path from ``r``
used the removed edge, every shortest path from ``r`` survives, hence
``r``'s distances, DAG, and label run are all unchanged; otherwise the
rerun pruned BFS on the new graph recomputes them exactly (including
distance growth and disconnection).

Durability: attach a :class:`~repro.core.wal.WriteAheadLog`
(:meth:`~DynamicHighwayCoverOracle.attach_wal`, or let
``repro.api.open_oracle(..., wal=path)`` do it) and every update is
logged **before** the labels mutate — after a crash,
``open_oracle(graph, index=snapshot, wal=path)`` replays the logged
churn through this same repair and serves exact distances again. A
successful :meth:`~DynamicHighwayCoverOracle.save` truncates the
attached log (the snapshot now covers every logged update; the write
itself is atomic and fsynced).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.api.protocol import Capability
from repro.core.construction_engine import DEFAULT_CHUNK_SIZE, stacked_pruned_bfs
from repro.core.query import HighwayCoverOracle
from repro.graphs.graph import Graph


class DynamicHighwayCoverOracle(HighwayCoverOracle):
    """HL with incremental edge-insertion and edge-deletion maintenance.

    The label store defaults to the landmark-major backend
    (``store="landmark"``), the update-optimal layout repairs splice
    into; point queries still work directly against it, and bulk
    consumers (the batch engine, serialization) snapshot the frozen
    vertex-major view on demand.

    Example:
        >>> from repro.graphs.generators import barabasi_albert_graph
        >>> g = barabasi_albert_graph(200, 3, seed=1)
        >>> oracle = DynamicHighwayCoverOracle(num_landmarks=8).build(g)
        >>> affected = oracle.insert_edge(0, 150)
        >>> d = oracle.query(0, 150)  # == 1.0 now
    """

    name = "HL-dyn"
    default_store = "landmark"
    CAPABILITIES = HighwayCoverOracle.CAPABILITIES | {Capability.DYNAMIC}

    #: Attached write-ahead log, or ``None`` (no durability logging).
    wal = None

    def attach_wal(self, wal) -> None:
        """Log every subsequent update to ``wal`` before applying it.

        The log should already be replayed into this oracle
        (:func:`repro.core.wal.replay_into`) — attaching first and
        replaying after would re-log the replayed records.
        """
        self.wal = wal

    def _wal_append(self, op: str, u: int, v: int) -> None:
        """Make the update durable before any in-RAM state changes.

        Runs after validation (a rejected update must not be logged)
        and before the repair — the write-ahead contract: once the
        label store mutates, the record is already on stable storage
        (under the log's fsync policy).
        """
        if self.wal is not None:
            self.wal.append(op, u, v)

    def insert_edge(self, u: int, v: int) -> List[int]:
        """Insert an undirected edge and repair labels incrementally.

        Args:
            u, v: endpoints; the edge must not already exist.

        Returns:
            The list of landmark vertex ids whose pruned BFS was rerun
            (useful for instrumentation; empty when the edge was a
            same-level chord affecting no landmark).
        """
        graph, _, _ = self._require_built()
        graph.validate_vertex(u)
        graph.validate_vertex(v)
        if u == v:
            raise ValueError("self loops are not allowed")
        if graph.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already exists")

        affected = self._affected_landmarks(u, v)
        self._wal_append("insert_edge", u, v)
        new_graph = graph.with_edges_added([(u, v)])
        return self._apply_update(new_graph, affected)

    def delete_edge(self, u: int, v: int) -> List[int]:
        """Delete an undirected edge and repair labels incrementally.

        Distances from an affected landmark may *grow* (or become
        infinite), but the rerun pruned BFS recomputes them exactly on
        the new graph; unaffected landmarks had no shortest path through
        the edge, so their runs are provably unchanged (module
        docstring). The repair reuses the oracle's configured stacked
        engine settings, like :meth:`insert_edge`.

        Returns:
            The list of landmark vertex ids whose pruned BFS was rerun,
            mirroring :meth:`insert_edge`.
        """
        graph, _, _ = self._require_built()
        if not graph.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) does not exist")
        affected = self._affected_landmarks(u, v)
        self._wal_append("delete_edge", u, v)
        new_graph = graph.with_edges_removed([(u, v)])
        return self._apply_update(new_graph, affected)

    def save(self, path, version: int = 2) -> int:
        """Persist the index; an attached WAL is truncated afterwards.

        ``save_oracle`` is atomic and fsynced, so when it returns the
        snapshot durably contains every logged update and the log's
        records are redundant. A crash *between* the save and the
        truncation is harmless: replay is idempotent against a snapshot
        that already contains the logged updates (module docstring of
        :mod:`repro.core.wal`).
        """
        written = super().save(path, version=version)
        if self.wal is not None:
            self.wal.truncate()
        return written

    # -- Internals -----------------------------------------------------------

    def _apply_update(self, new_graph: Graph, affected: List[int]) -> List[int]:
        if affected:
            self._repair(new_graph, affected)
        self.graph = new_graph
        self._batch_engine = None  # engine snapshots graph + labels
        return affected

    def _distances_from_landmarks(self, vertex: int) -> np.ndarray:
        """Exact ``d(r, x)`` for *every* landmark ``r`` in one shot.

        One broadcast of ``L(x)`` against the highway matrix (the
        vectorized form of the landmark-to-vertex query), so the
        affected-set test reads ``L(x)`` once instead of once per
        landmark.
        """
        highway = self.highway
        if self._landmark_mask[vertex]:
            return highway.matrix[highway.index_of[int(vertex)]]
        idx, dist = self.labelling.label_arrays(vertex)
        if len(idx) == 0:
            return np.full(highway.num_landmarks, np.inf)
        return (highway.matrix[:, idx] + dist.astype(np.int64)).min(axis=1)

    def _affected_landmarks(self, u: int, v: int) -> List[int]:
        """Landmarks whose shortest-path DAG the edge update can change."""
        du = self._distances_from_landmarks(u)
        dv = self._distances_from_landmarks(v)
        # du != dv includes the inf vs finite (re/disconnection) case.
        return [int(r) for r in self.highway.landmarks[du != dv]]

    def _repair(self, new_graph: Graph, affected: List[int]) -> None:
        """Rerun the pruned BFSs of all affected landmarks in one stacked
        pass and splice the new runs into the landmark-major store —
        O(affected entries); unaffected landmarks are never touched."""
        store = self.labelling.as_landmark_major()
        highway = self.highway
        landmark_ids = highway.landmarks
        mask = self._landmark_mask
        affected_set = {int(r) for r in affected}
        # Roots in landmark-index order, so slots align with the passes.
        indices = [
            index for index, r in enumerate(landmark_ids) if int(r) in affected_set
        ]
        # Honour the oracle's configured memory bound, as build() does.
        chunk = self.chunk_size or DEFAULT_CHUNK_SIZE
        for start in range(0, len(indices), chunk):
            batch = indices[start : start + chunk]
            per_vertices, per_distances, rows = stacked_pruned_bfs(
                new_graph, landmark_ids[batch], mask, landmark_ids
            )
            for slot, index in enumerate(batch):
                store.set_landmark_result(
                    index, per_vertices[slot], per_distances[slot]
                )
                highway.set_row(int(landmark_ids[index]), rows[slot])
        # Honour the configured backend: an explicit store="vertex" oracle
        # keeps its query-optimal layout at the cost of one transpose per
        # update (the landmark-major default splices with no transpose).
        self.labelling = (
            store if self.store == "landmark" else store.as_vertex_major()
        )
