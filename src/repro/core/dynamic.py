"""Dynamic edge insertions for the highway cover labelling (extension).

The paper's closest competitor (FD) is "fully dynamic"; HL itself is
presented as static. This module extends HL with *edge-insertion*
maintenance, exploiting two structural facts:

1. Landmark-locality. The entries contributed by landmark ``r`` depend
   only on the shortest-path DAG rooted at ``r``. Inserting edge
   ``(u, v)`` can alter that DAG **only if** ``|d(r, u) − d(r, v)| >= 1``
   in the old graph — an edge between equal BFS levels lies on no
   shortest path from ``r``, before or after the insertion.
2. Exact landmark distances are already decodable from the labels plus
   the highway (the landmark-to-vertex query of
   :class:`~repro.core.query.HighwayCoverOracle`), so the affected set is
   computable without touching the graph.

The repair therefore reruns Algorithm 1's pruned BFS *only for affected
landmarks* — all of them advanced together in one pass of the stacked
engine (:func:`~repro.core.construction_engine.stacked_pruned_bfs`) —
and splices the new per-landmark entries into the label store
— typically a small fraction of a full rebuild for local updates. The
result is asserted (by the test suite) to be byte-identical to a fresh
build on the updated graph, so all of the paper's theorems keep holding
after every insertion.

Edge deletions can increase distances and invalidate pruning decisions
non-locally; following FD's original paper (which handles deletions with
periodic rebuilds), :meth:`DynamicHighwayCoverOracle.delete_edge`
performs a full rebuild.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.construction_engine import stacked_pruned_bfs
from repro.core.labels import HighwayCoverLabelling, LabelAccumulator
from repro.core.query import HighwayCoverOracle
from repro.errors import NotBuiltError
from repro.graphs.graph import Graph


class DynamicHighwayCoverOracle(HighwayCoverOracle):
    """HL with incremental edge-insertion maintenance.

    Example:
        >>> from repro.graphs.generators import barabasi_albert_graph
        >>> g = barabasi_albert_graph(200, 3, seed=1)
        >>> oracle = DynamicHighwayCoverOracle(num_landmarks=8).build(g)
        >>> affected = oracle.insert_edge(0, 150)
        >>> d = oracle.query(0, 150)  # == 1.0 now
    """

    name = "HL-dyn"

    def insert_edge(self, u: int, v: int) -> List[int]:
        """Insert an undirected edge and repair labels incrementally.

        Args:
            u, v: endpoints; the edge must not already exist.

        Returns:
            The list of landmark vertex ids whose pruned BFS was rerun
            (useful for instrumentation; empty when the edge was a
            same-level chord affecting no landmark).
        """
        graph, labelling, highway = self._require_built()
        graph.validate_vertex(u)
        graph.validate_vertex(v)
        if u == v:
            raise ValueError("self loops are not allowed")
        if graph.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already exists")

        affected = self._affected_landmarks(u, v)
        new_graph = graph.with_edges_added([(u, v)])
        if affected:
            self._repair(new_graph, affected)
        self.graph = new_graph
        self._batch_engine = None  # engine snapshots graph + labels
        return affected

    def delete_edge(self, u: int, v: int) -> None:
        """Delete an edge; distances may grow, so rebuild from scratch."""
        graph, _, _ = self._require_built()
        if not graph.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) does not exist")
        new_graph = graph.with_edges_removed([(u, v)])
        # Preserve the original landmark set across the rebuild.
        self._explicit_landmarks = [int(r) for r in self.highway.landmarks]
        self.build(new_graph)

    # -- Internals -----------------------------------------------------------

    def _distance_to_landmark(self, r_vertex: int, vertex: int) -> float:
        """Exact ``d(r, x)`` in the *current* graph (labels + highway)."""
        if self._landmark_mask[vertex]:
            return self.highway.distance(r_vertex, vertex)
        return self._landmark_to_vertex(r_vertex, vertex)

    def _affected_landmarks(self, u: int, v: int) -> List[int]:
        """Landmarks whose shortest-path DAG the new edge can change."""
        affected = []
        for r in self.highway.landmarks:
            r = int(r)
            du = self._distance_to_landmark(r, u)
            dv = self._distance_to_landmark(r, v)
            if du != dv:  # includes the inf vs finite (reconnection) case
                affected.append(r)
        return affected

    def _repair(self, new_graph: Graph, affected: List[int]) -> None:
        """Rerun the pruned BFSs of all affected landmarks in one stacked
        pass and splice the results into the label store."""
        labelling = self.labelling
        highway = self.highway
        landmark_ids = highway.landmarks
        mask = self._landmark_mask
        affected_set = {int(r) for r in affected}
        # Roots in landmark-index order, so slots align with the passes.
        roots = np.asarray(
            [int(r) for r in landmark_ids if int(r) in affected_set], dtype=np.int64
        )
        per_vertices, per_distances, rows = stacked_pruned_bfs(
            new_graph, roots, mask, landmark_ids
        )

        accumulator = LabelAccumulator(new_graph.num_vertices, len(landmark_ids))
        slot = 0
        for index, r in enumerate(landmark_ids):
            if int(r) in affected_set:
                vertices, distances = per_vertices[slot], per_distances[slot]
                highway.set_row(int(r), rows[slot])
                slot += 1
            else:
                vertices, distances = _entries_of_landmark(labelling, index)
            accumulator.add_landmark_result(index, vertices, distances)
        self.labelling = accumulator.freeze()


def _entries_of_landmark(
    labelling: HighwayCoverLabelling, landmark_index: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract one landmark's (vertices, distances) from the CSR store."""
    positions = np.flatnonzero(labelling.landmark_indices == landmark_index)
    if positions.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32)
    vertices = np.searchsorted(
        labelling.offsets, positions, side="right"
    ).astype(np.int64) - 1
    return vertices, labelling.distances[positions].astype(np.int32)
