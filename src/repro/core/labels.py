"""The highway cover label store.

Labels map each non-landmark vertex ``v`` to a small set of distance
entries ``(landmark_index, distance)``. After construction the store is
frozen into a CSR-of-labels: two flat numpy arrays plus an offset array,
which is both compact (Table 3's byte accounting reads straight off it)
and fast to slice at query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class VertexLabel:
    """The label ``L(v)`` of one vertex: parallel landmark/distance arrays."""

    landmark_indices: np.ndarray  # dense landmark indices, strictly increasing
    distances: np.ndarray

    def __len__(self) -> int:
        return len(self.landmark_indices)

    def entries(self) -> Iterator[Tuple[int, int]]:
        for r, d in zip(self.landmark_indices, self.distances):
            yield int(r), int(d)


class HighwayCoverLabelling:
    """Frozen per-vertex labels over a fixed landmark set.

    Build with :class:`LabelAccumulator`; query with :meth:`label` /
    :meth:`label_arrays`. ``size()`` is the paper's labelling size
    ``Σ_v |L(v)|`` (number of entries, used for ALS in Table 2);
    byte sizes for Table 3 live in :mod:`repro.core.compression`.
    """

    def __init__(
        self,
        num_vertices: int,
        num_landmarks: int,
        offsets: np.ndarray,
        landmark_indices: np.ndarray,
        distances: np.ndarray,
    ) -> None:
        if offsets.shape != (num_vertices + 1,):
            raise ReproError("label offsets must have n + 1 entries")
        if len(landmark_indices) != len(distances):
            raise ReproError("landmark and distance arrays must align")
        self.num_vertices = num_vertices
        self.num_landmarks = num_landmarks
        self.offsets = offsets
        self.landmark_indices = landmark_indices
        self.distances = distances

    def label(self, v: int) -> VertexLabel:
        """The label ``L(v)`` (empty for landmarks)."""
        lo, hi = self.offsets[v], self.offsets[v + 1]
        return VertexLabel(self.landmark_indices[lo:hi], self.distances[lo:hi])

    def label_arrays(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Raw ``(landmark_indices, distances)`` views for ``L(v)``."""
        lo, hi = self.offsets[v], self.offsets[v + 1]
        return self.landmark_indices[lo:hi], self.distances[lo:hi]

    def label_size(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def size(self) -> int:
        """Total number of distance entries, ``size(L) = Σ_v |L(v)|``."""
        return int(len(self.landmark_indices))

    def average_label_size(self) -> float:
        """ALS as reported in Table 2 (entries per vertex)."""
        if self.num_vertices == 0:
            return 0.0
        return self.size() / self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HighwayCoverLabelling):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.num_landmarks == other.num_landmarks
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.landmark_indices, other.landmark_indices)
            and np.array_equal(self.distances, other.distances)
        )

    def __hash__(self) -> int:  # labels are frozen; id-based hash is fine
        return id(self)


class LabelAccumulator:
    """Mutable builder that collects per-landmark BFS output.

    Algorithm 1 produces, for each landmark index ``r``, the list of
    vertices it labels and their distances. The accumulator stores one
    (vertices, distances) pair per landmark and transposes everything into
    the per-vertex CSR on :meth:`freeze`. Because each landmark's pruned
    BFS is independent (Lemma 3.11), this transpose is also what makes the
    parallel builder trivially correct: results can arrive in any order.
    """

    def __init__(self, num_vertices: int, num_landmarks: int) -> None:
        self.num_vertices = num_vertices
        self.num_landmarks = num_landmarks
        self._per_landmark: List[Tuple[np.ndarray, np.ndarray]] = [
            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32))
        ] * num_landmarks
        self._filled = [False] * num_landmarks

    def add_landmark_result(
        self, landmark_index: int, vertices: np.ndarray, distances: np.ndarray
    ) -> None:
        """Install the pruned-BFS output of one landmark (any order)."""
        if self._filled[landmark_index]:
            raise ReproError(f"landmark index {landmark_index} filled twice")
        if len(vertices) != len(distances):
            raise ReproError("vertices/distances length mismatch")
        self._per_landmark[landmark_index] = (
            np.asarray(vertices, dtype=np.int64),
            np.asarray(distances, dtype=np.int32),
        )
        self._filled[landmark_index] = True

    def freeze(self) -> HighwayCoverLabelling:
        """Transpose per-landmark results into the per-vertex CSR store.

        Entries within each vertex label come out sorted by landmark index
        (guaranteed by stable counting sort over landmark-major input).
        """
        if not all(self._filled):
            missing = [i for i, f in enumerate(self._filled) if not f]
            raise ReproError(f"missing landmark results: {missing}")
        total = sum(len(v) for v, _ in self._per_landmark)
        counts = np.zeros(self.num_vertices + 1, dtype=np.int64)
        for vertices, _ in self._per_landmark:
            if len(vertices):
                np.add.at(counts, vertices + 1, 1)
        offsets = np.cumsum(counts)
        landmark_indices = np.empty(total, dtype=np.int32)
        distances = np.empty(total, dtype=np.int32)
        cursor = offsets[:-1].copy()
        for r, (vertices, dists) in enumerate(self._per_landmark):
            if not len(vertices):
                continue
            slots = cursor[vertices]
            landmark_indices[slots] = r
            distances[slots] = dists
            cursor[vertices] += 1
        return HighwayCoverLabelling(
            num_vertices=self.num_vertices,
            num_landmarks=self.num_landmarks,
            offsets=offsets,
            landmark_indices=landmark_indices,
            distances=distances,
        )
