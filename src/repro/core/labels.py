"""The pluggable highway cover label store.

Labels map each non-landmark vertex ``v`` to a small set of distance
entries ``(landmark_index, distance)``. The same logical labelling
``L`` admits two physical layouts with opposite strengths, so the store
is a protocol (:class:`LabelStore`) with two backends:

* :class:`HighwayCoverLabelling` — the frozen **vertex-major** CSR:
  two flat numpy arrays plus an offset array. Query-optimal: ``L(v)``
  is a contiguous slice, Table 3's byte accounting reads straight off
  the arrays, and the whole store serializes as-is.
* :class:`LandmarkMajorLabelStore` — the mutable **landmark-major**
  store: one ``(vertices, distances)`` run per landmark, sorted by
  vertex id. Update-optimal: replacing one landmark's pruned-BFS output
  (what dynamic repair does) splices a single run in O(affected
  entries) instead of rebuilding the whole CSR.

Conversion between the two is a vectorized transpose (one stable
counting sort over the flat entry arrays — no Python loop over
landmarks), and the landmark-major store caches its frozen view so
read-heavy phases between mutations pay the transpose once.

Both backends compare equal when they hold the same logical labelling;
equality is defined on the canonical vertex-major form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class VertexLabel:
    """The label ``L(v)`` of one vertex: parallel landmark/distance arrays."""

    landmark_indices: np.ndarray  # dense landmark indices, strictly increasing
    distances: np.ndarray

    def __len__(self) -> int:
        return len(self.landmark_indices)

    def entries(self) -> Iterator[Tuple[int, int]]:
        """Yield the ``(landmark_index, distance)`` pairs of this label."""
        for r, d in zip(self.landmark_indices, self.distances):
            yield int(r), int(d)


class LabelStore(ABC):
    """Protocol every label-store backend implements.

    The read API is layout-agnostic: per-vertex access (``label_arrays``)
    serves the query side, per-landmark access (``entries_of_landmark``)
    serves construction and dynamic repair, and ``as_vertex_major`` /
    ``as_landmark_major`` convert between backends (returning ``self``
    when already in the requested layout).
    """

    num_vertices: int
    num_landmarks: int

    # -- Per-vertex access (query side) -------------------------------------

    @abstractmethod
    def label_arrays(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(landmark_indices, distances)`` of ``L(v)``, landmark-ascending."""

    def label(self, v: int) -> VertexLabel:
        """The label ``L(v)`` (empty for landmarks)."""
        idx, dist = self.label_arrays(v)
        return VertexLabel(idx, dist)

    def label_size(self, v: int) -> int:
        """``|L(v)|`` — the number of entries in one vertex's label."""
        return len(self.label_arrays(v)[0])

    # -- Per-landmark access (construction / repair side) -------------------

    @abstractmethod
    def entries_of_landmark(self, landmark_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """One landmark's ``(vertices, distances)`` run, vertex-ascending."""

    # -- Whole-store accounting ---------------------------------------------

    @abstractmethod
    def size(self) -> int:
        """Total number of distance entries, ``size(L) = Σ_v |L(v)|``."""

    def average_label_size(self) -> float:
        """ALS as reported in Table 2 (entries per vertex)."""
        if self.num_vertices == 0:
            return 0.0
        return self.size() / self.num_vertices

    # -- Layout conversion ----------------------------------------------------

    @abstractmethod
    def as_vertex_major(self) -> "HighwayCoverLabelling":
        """This labelling as a frozen vertex-major CSR (self if already)."""

    @abstractmethod
    def as_landmark_major(self) -> "LandmarkMajorLabelStore":
        """This labelling as a mutable landmark-major store (self if already)."""

    # -- Equality (canonical form) --------------------------------------------

    def __eq__(self, other: object) -> bool:
        if other is self:
            # Identity shortcut: weakref-keyed caches compare keys through
            # ``==`` on every lookup, and the array comparison below is an
            # O(total labels) cost on the point-query hot path otherwise.
            return True
        if not isinstance(other, LabelStore):
            return NotImplemented
        a, b = self.as_vertex_major(), other.as_vertex_major()
        return (
            a.num_vertices == b.num_vertices
            and a.num_landmarks == b.num_landmarks
            and np.array_equal(a.offsets, b.offsets)
            and np.array_equal(a.landmark_indices, b.landmark_indices)
            and np.array_equal(a.distances, b.distances)
        )

    def __hash__(self) -> int:  # stores compare by content; id hash is fine
        return id(self)


class HighwayCoverLabelling(LabelStore):
    """Frozen vertex-major labels over a fixed landmark set.

    Build with :class:`LabelAccumulator`; query with :meth:`label` /
    :meth:`label_arrays`. ``size()`` is the paper's labelling size
    ``Σ_v |L(v)|`` (number of entries, used for ALS in Table 2);
    byte sizes for Table 3 live in :mod:`repro.core.compression`.
    """

    def __init__(
        self,
        num_vertices: int,
        num_landmarks: int,
        offsets: np.ndarray,
        landmark_indices: np.ndarray,
        distances: np.ndarray,
    ) -> None:
        if offsets.shape != (num_vertices + 1,):
            raise ReproError("label offsets must have n + 1 entries")
        if len(landmark_indices) != len(distances):
            raise ReproError("landmark and distance arrays must align")
        self.num_vertices = num_vertices
        self.num_landmarks = num_landmarks
        self.offsets = offsets
        self.landmark_indices = landmark_indices
        self.distances = distances

    def label_arrays(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Raw ``(landmark_indices, distances)`` views for ``L(v)``."""
        lo, hi = self.offsets[v], self.offsets[v + 1]
        return self.landmark_indices[lo:hi], self.distances[lo:hi]

    def label_size(self, v: int) -> int:
        """``|L(v)|`` straight from the offsets (no array slicing)."""
        return int(self.offsets[v + 1] - self.offsets[v])

    def size(self) -> int:
        """Total entry count — the length of the flat label arrays."""
        return int(len(self.landmark_indices))

    def entries_of_landmark(self, landmark_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """One landmark's run, by scanning the flat arrays (O(size(L))).

        Extracting *every* landmark this way is quadratic; use
        :meth:`as_landmark_major` (one vectorized transpose) instead.
        """
        positions = np.flatnonzero(self.landmark_indices == landmark_index)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32)
        vertices = np.searchsorted(
            self.offsets, positions, side="right"
        ).astype(np.int64) - 1
        return vertices, self.distances[positions].astype(np.int32)

    def as_vertex_major(self) -> "HighwayCoverLabelling":
        """Already vertex-major: returns ``self`` (no copy)."""
        return self

    def as_landmark_major(self) -> "LandmarkMajorLabelStore":
        """Transpose into per-landmark runs — one stable sort, no k-loop."""
        entry_vertices = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.offsets)
        )
        # CSR order is vertex-ascending, so a stable sort by landmark
        # yields runs that are already vertex-ascending within each landmark.
        order = np.argsort(self.landmark_indices, kind="stable")
        counts = np.bincount(
            np.asarray(self.landmark_indices, dtype=np.int64),
            minlength=self.num_landmarks,
        )
        splits = np.cumsum(counts)[:-1]
        runs_vertices = np.split(entry_vertices[order], splits)
        runs_distances = np.split(
            np.asarray(self.distances, dtype=np.int32)[order], splits
        )
        store = LandmarkMajorLabelStore(
            self.num_vertices, self.num_landmarks, runs_vertices, runs_distances
        )
        store._frozen = self  # seed the cache: no transpose until first mutation
        return store


class LandmarkMajorLabelStore(LabelStore):
    """Mutable landmark-major labels: one sorted run per landmark.

    The layout mirrors what Algorithm 1 produces — for each landmark
    index ``r``, the vertices it labels and their distances — so dynamic
    repair can install a rerun landmark's output with
    :meth:`set_landmark_result` in O(len(run)) without touching the
    other ``k - 1`` landmarks. Runs are kept sorted by vertex id, which
    makes per-vertex access a binary search per landmark and makes the
    vertex-major transpose a stable counting sort.

    Args:
        num_vertices: ``n``.
        num_landmarks: ``k``.
        runs_vertices / runs_distances: optional initial runs (one pair
            per landmark, vertex-ascending); empty runs when omitted.
    """

    def __init__(
        self,
        num_vertices: int,
        num_landmarks: int,
        runs_vertices: Optional[Sequence[np.ndarray]] = None,
        runs_distances: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        self.num_vertices = num_vertices
        self.num_landmarks = num_landmarks
        if (runs_vertices is None) != (runs_distances is None):
            raise ReproError("runs_vertices and runs_distances come together")
        if runs_vertices is None:
            runs_vertices = [
                np.empty(0, dtype=np.int64) for _ in range(num_landmarks)
            ]
            runs_distances = [
                np.empty(0, dtype=np.int32) for _ in range(num_landmarks)
            ]
        if len(runs_vertices) != num_landmarks or len(runs_distances) != num_landmarks:
            raise ReproError("need one (vertices, distances) run per landmark")
        for vertices, distances in zip(runs_vertices, runs_distances):
            if len(vertices) != len(distances):
                raise ReproError("vertices/distances length mismatch")
        self._runs_vertices: List[np.ndarray] = list(runs_vertices)
        self._runs_distances: List[np.ndarray] = list(runs_distances)
        self._total = sum(len(v) for v in self._runs_vertices)
        self._frozen: Optional[HighwayCoverLabelling] = None

    # -- Mutation (the whole point of this backend) -------------------------

    def set_landmark_result(
        self, landmark_index: int, vertices: np.ndarray, distances: np.ndarray
    ) -> None:
        """Replace one landmark's run with fresh pruned-BFS output.

        O(len(run) log len(run)) for the canonicalizing sort; the other
        landmarks' runs are untouched. Invalidates the cached frozen view.
        """
        if not 0 <= landmark_index < self.num_landmarks:
            raise ReproError(f"landmark index {landmark_index} out of range")
        if len(vertices) != len(distances):
            raise ReproError("vertices/distances length mismatch")
        vertices = np.asarray(vertices, dtype=np.int64)
        distances = np.asarray(distances, dtype=np.int32)
        order = np.argsort(vertices, kind="stable")
        self._total += len(vertices) - len(self._runs_vertices[landmark_index])
        self._runs_vertices[landmark_index] = vertices[order]
        self._runs_distances[landmark_index] = distances[order]
        self._frozen = None

    # -- Reads ----------------------------------------------------------------

    def label_arrays(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``L(v)`` by binary-searching each landmark's sorted run.

        O(k log n) per call — fine for point queries; bulk consumers
        (batch engine, serialization) snapshot :meth:`as_vertex_major`.
        """
        idx: List[int] = []
        dist: List[int] = []
        for r in range(self.num_landmarks):
            run = self._runs_vertices[r]
            pos = int(np.searchsorted(run, v))
            if pos < len(run) and int(run[pos]) == v:
                idx.append(r)
                dist.append(int(self._runs_distances[r][pos]))
        return (
            np.asarray(idx, dtype=np.int32),
            np.asarray(dist, dtype=np.int32),
        )

    def entries_of_landmark(self, landmark_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """One landmark's ``(vertices, distances)`` run, vertex-ascending.

        Returns read-only views: callers must go through
        :meth:`set_landmark_result` so the size total and the cached
        frozen view stay in sync.
        """
        vertices = self._runs_vertices[landmark_index].view()
        distances = self._runs_distances[landmark_index].view()
        vertices.setflags(write=False)
        distances.setflags(write=False)
        return vertices, distances

    def size(self) -> int:
        """Total entry count, maintained incrementally across splices."""
        return int(self._total)

    # -- Layout conversion ----------------------------------------------------

    def as_vertex_major(self) -> HighwayCoverLabelling:
        """Transpose into the frozen CSR (cached until the next mutation).

        One concatenation plus one stable sort by vertex over the flat
        entry arrays; because runs are concatenated in landmark order,
        stability leaves each vertex's entries landmark-ascending —
        byte-identical to :class:`LabelAccumulator`'s historical output.
        """
        if self._frozen is None:
            if self._total:
                all_vertices = np.concatenate(self._runs_vertices)
                all_landmarks = np.repeat(
                    np.arange(self.num_landmarks, dtype=np.int32),
                    [len(v) for v in self._runs_vertices],
                )
                all_distances = np.concatenate(self._runs_distances)
                counts = np.bincount(all_vertices, minlength=self.num_vertices)
                offsets = np.zeros(self.num_vertices + 1, dtype=np.int64)
                np.cumsum(counts, out=offsets[1:])
                order = np.argsort(all_vertices, kind="stable")
                landmark_indices = all_landmarks[order]
                distances = all_distances[order].astype(np.int32)
            else:
                offsets = np.zeros(self.num_vertices + 1, dtype=np.int64)
                landmark_indices = np.empty(0, dtype=np.int32)
                distances = np.empty(0, dtype=np.int32)
            self._frozen = HighwayCoverLabelling(
                num_vertices=self.num_vertices,
                num_landmarks=self.num_landmarks,
                offsets=offsets,
                landmark_indices=landmark_indices,
                distances=distances,
            )
        return self._frozen

    def as_landmark_major(self) -> "LandmarkMajorLabelStore":
        """Already landmark-major: returns ``self`` (no copy)."""
        return self


class LabelAccumulator:
    """Mutable builder that collects per-landmark BFS output.

    Algorithm 1 produces, for each landmark index ``r``, the list of
    vertices it labels and their distances — exactly the landmark-major
    layout — so the accumulator is a thin fill-once guard over a
    :class:`LandmarkMajorLabelStore`. Because each landmark's pruned BFS
    is independent (Lemma 3.11), results can arrive in any order, which
    is what makes the parallel builder trivially correct.
    """

    def __init__(self, num_vertices: int, num_landmarks: int) -> None:
        self.num_vertices = num_vertices
        self.num_landmarks = num_landmarks
        self._store = LandmarkMajorLabelStore(num_vertices, num_landmarks)
        self._filled = [False] * num_landmarks

    def add_landmark_result(
        self, landmark_index: int, vertices: np.ndarray, distances: np.ndarray
    ) -> None:
        """Install the pruned-BFS output of one landmark (any order)."""
        if self._filled[landmark_index]:
            raise ReproError(f"landmark index {landmark_index} filled twice")
        self._store.set_landmark_result(landmark_index, vertices, distances)
        self._filled[landmark_index] = True

    def _require_complete(self) -> None:
        if not all(self._filled):
            missing = [i for i, f in enumerate(self._filled) if not f]
            raise ReproError(f"missing landmark results: {missing}")

    def freeze(self) -> HighwayCoverLabelling:
        """All landmarks' results as the frozen vertex-major CSR.

        Entries within each vertex label come out sorted by landmark
        index (guaranteed by the stable transpose sort).
        """
        self._require_complete()
        return self._store.as_vertex_major()

    def freeze_landmark_major(self) -> LandmarkMajorLabelStore:
        """All landmarks' results as the mutable landmark-major store."""
        self._require_complete()
        return self._store

    def freeze_as(self, store: str) -> LabelStore:
        """Freeze into the named backend (``"vertex"`` or ``"landmark"``)."""
        if store == "vertex":
            return self.freeze()
        if store == "landmark":
            return self.freeze_landmark_major()
        raise ValueError(f"unknown label store backend {store!r}")
