"""The vectorized batch query engine.

The paper's headline query workload is bulk: 100,000 random pairs per
dataset (Tables 2-3, Figure 9). Answering such a batch with a Python loop
over ``oracle.query`` pays the full interpreter overhead — label slicing,
bound computation, and an independent bidirectional search — once per
pair. This module restructures the whole batch into a handful of numpy
passes:

1. **Flat label gather.** The per-vertex labels already live in one CSR
   structure (:class:`~repro.core.labels.HighwayCoverLabelling`); the
   engine scatters the labels of exactly the vertices named by the batch
   into a dense ``(vertices, k)`` distance-to-landmark matrix (``inf``
   where a landmark is absent, ``0`` at a landmark's own column). One
   chunked broadcast against the highway matrix then yields every upper
   bound ``d⊤`` of Equation 4 — including the common-landmark term of
   Lemma 5.1, which appears on the highway diagonal — with no per-pair
   Python work.
2. **Short circuits.** ``s == t`` pairs, pairs with a landmark endpoint
   (whose bound is provably exact — Section 4's vertex classes), and
   pairs whose bound is already 1 never touch the online search.
3. **Grouped bounded search.** The surviving pairs are canonicalized,
   deduplicated, and grouped by source vertex; every group's bounded BFS
   over the sparsified graph ``G[V \\ R]`` advances in lock step through
   one stacked wave
   (:func:`~repro.search.bounded.bounded_grouped_multi_target_distances`)
   instead of ``|group|`` independent bidirectional searches. Pairs whose
   bound is too loose for a unidirectional wave fall back to per-pair
   bidirectional search.

Every step returns exactly what the scalar path returns — the test suite
cross-validates ``query_many`` against looped ``oracle.query`` and plain
BFS ground truth — so the engine is a pure performance substitution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.highway import Highway
from repro.core.kernels import KernelBackend, get_workspace, resolve_kernel
from repro.core.labels import LabelStore
from repro.errors import VertexError
from repro.graphs.graph import Graph
from repro.search.bounded import (
    bounded_bidirectional_distance,
    bounded_grouped_multi_target_distances,
)

#: Upper limit on the size (in float64 elements) of the per-chunk
#: ``(pairs, k, k)`` broadcast used for the bound computation. 2^22
#: elements = 32 MiB per temporary at k=20, comfortably cache-friendly.
_CHUNK_ELEMENTS = 1 << 22


def as_pair_array(pairs: np.ndarray, num_vertices: int) -> np.ndarray:
    """Validate and normalize a query batch to an int64 ``(k, 2)`` array.

    Rejects wrong shapes, non-integer dtypes (a float array would silently
    truncate vertex ids), and out-of-range vertex ids. An empty batch of
    any dtype is accepted and normalized.
    """
    arr = np.asarray(pairs)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("pairs must have shape (k, 2)")
    if len(arr) == 0:
        return np.empty((0, 2), dtype=np.int64)
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(f"pairs must be an integer array, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    lo, hi = int(arr.min()), int(arr.max())
    if lo < 0:
        raise VertexError(lo, num_vertices)
    if hi >= num_vertices:
        raise VertexError(hi, num_vertices)
    return arr


class BatchQueryEngine:
    """Bulk exact-distance queries over a built highway cover labelling.

    Construct once per built oracle (``oracle.batch_engine()`` caches an
    instance) and reuse across batches; the engine itself is stateless
    between calls.

    Args:
        graph: the indexed graph ``G``.
        labelling: the label store ``L`` (any backend; the engine
            snapshots its frozen vertex-major view, whose flat CSR
            arrays the label gather slices).
        highway: the highway ``H = (R, δH)``.
        max_stacked_expansions: pairs whose bound needs at most this many
            wave expansions (``bound <= max_stacked_expansions + 2``, with
            the last level answered by neighborhood inversion) use the
            stacked grouped BFS; deeper pairs — where a unidirectional
            wave grows past what bidirectional meet-in-the-middle costs —
            fall back to per-pair bounded bidirectional search.
        kernel: kernel backend name for the online searches (``None`` =
            process default; see :mod:`repro.core.kernels`). Stored as a
            name and resolved per batch so the engine stays picklable.
    """

    def __init__(
        self,
        graph: Graph,
        labelling: LabelStore,
        highway: Highway,
        max_stacked_expansions: int = 3,
        kernel: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.labelling = labelling.as_vertex_major()
        self.highway = highway
        self.max_stacked_expansions = max_stacked_expansions
        self.kernel = kernel
        self.landmark_mask = highway.landmark_mask(graph.num_vertices)
        # Entries per label; a zero marks a vertex no landmark can reach
        # (the disconnected short-circuit in query_many keys off this).
        self._label_counts = np.diff(self.labelling.offsets)
        # Dense landmark index per vertex (-1 for non-landmarks): lets the
        # label gather place a 0 in each landmark's own column, which makes
        # the one broadcast formula exact for landmark endpoints too.
        self._landmark_index = np.full(graph.num_vertices, -1, dtype=np.int64)
        self._landmark_index[highway.landmarks] = np.arange(highway.num_landmarks)

    @classmethod
    def from_oracle(cls, oracle) -> "BatchQueryEngine":
        graph, labelling, highway = oracle._require_built()
        return cls(graph, labelling, highway, kernel=getattr(oracle, "kernel", None))

    # -- Offline phase: vectorized upper bounds ------------------------------

    def upper_bounds(self, pairs: np.ndarray) -> np.ndarray:
        """``d⊤`` for every pair — the batch analogue of ``oracle.upper_bound``."""
        pairs = as_pair_array(pairs, self.graph.num_vertices)
        return self._upper_bounds_validated(pairs)

    def _upper_bounds_validated(self, pairs: np.ndarray) -> np.ndarray:
        k = len(pairs)
        if k == 0:
            return np.empty(0, dtype=float)
        verts, inverse = np.unique(pairs.ravel(), return_inverse=True)
        rows = inverse.reshape(pairs.shape)
        dense = self._label_matrix(verts)
        matrix = self.highway.matrix
        num_landmarks = self.highway.num_landmarks
        # Equation 4, d⊤ = min_{i,j} d_i + δH(ri, rj) + d_j, factored as
        # min_j relay[s, j] + d_j with relay[s, j] = min_i d_i + δH(ri, rj):
        # the highway leg is folded once per *vertex* instead of once per
        # pair, turning the per-pair work from k·k landmark cells into k.
        relay = np.empty_like(dense)
        num_verts = len(verts)
        chunk = max(1, _CHUNK_ELEMENTS // (num_landmarks * num_landmarks))
        for start in range(0, num_verts, chunk):
            sl = slice(start, min(start + chunk, num_verts))
            relay[sl] = (dense[sl][:, :, None] + matrix[None, :, :]).min(axis=1)
        bounds = (relay[rows[:, 0]] + dense[rows[:, 1]]).min(axis=1)
        bounds[pairs[:, 0] == pairs[:, 1]] = 0.0
        return bounds

    def _label_matrix(self, verts: np.ndarray) -> np.ndarray:
        """Scatter ``L(v)`` for each requested vertex into a dense row.

        Row ``i`` holds the label distances of ``verts[i]`` indexed by
        landmark (``inf`` where absent); a landmark's own column is 0 so
        the bound broadcast reduces to the exact landmark-to-vertex /
        highway formulas for landmark endpoints.
        """
        labelling = self.labelling
        starts = labelling.offsets[verts]
        ends = labelling.offsets[verts + 1]
        counts = ends - starts
        dense = np.full((len(verts), self.highway.num_landmarks), np.inf)
        total = int(counts.sum())
        if total:
            cumulative = np.cumsum(counts)
            gather = np.repeat(ends - cumulative, counts) + np.arange(
                total, dtype=np.int64
            )
            entry_rows = np.repeat(np.arange(len(verts)), counts)
            dense[entry_rows, labelling.landmark_indices[gather]] = (
                labelling.distances[gather]
            )
        own = self._landmark_index[verts]
        is_landmark = own >= 0
        dense[np.flatnonzero(is_landmark), own[is_landmark]] = 0.0
        return dense

    # -- Online phase: grouped bounded search --------------------------------

    def query_many(
        self, pairs: np.ndarray, return_coverage: bool = False
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Exact distances for every pair (batch analogue of ``oracle.query``).

        Returns ``(distances, covered_or_None)`` where ``covered`` marks
        pairs whose offline bound was already exact (Figure 9's statistic).
        """
        pairs = as_pair_array(pairs, self.graph.num_vertices)
        bounds = self._upper_bounds_validated(pairs)
        distances = bounds.copy()

        same = pairs[:, 0] == pairs[:, 1]
        mask = self.landmark_mask
        landmark_pair = (mask[pairs[:, 0]] | mask[pairs[:, 1]]) & ~same
        # Distinct adjacent-or-better pairs: a bound of 1 is already the
        # minimum possible distance between distinct vertices.
        trivial = (bounds == 1.0) & ~same & ~landmark_pair
        # Provably disconnected pairs: an infinite bound with at least one
        # non-empty label means no landmark pair connects the endpoints —
        # different components, so the search cannot improve on inf. Only
        # pairs where *both* labels are empty (both vertices in
        # landmark-free components, where the sparsified graph is the true
        # graph) still need the unbounded search.
        counts = self._label_counts
        both_empty = (counts[pairs[:, 0]] == 0) & (counts[pairs[:, 1]] == 0)
        disconnected = np.isinf(bounds) & ~both_empty & ~same & ~landmark_pair
        remaining = ~(same | landmark_pair | trivial | disconnected)

        if remaining.any():
            self._search_remaining(pairs, bounds, distances, remaining)

        covered: Optional[np.ndarray] = None
        if return_coverage:
            covered = distances == bounds
            covered[same] = True
        return distances, covered

    def _search_remaining(
        self,
        pairs: np.ndarray,
        bounds: np.ndarray,
        distances: np.ndarray,
        remaining: np.ndarray,
    ) -> None:
        """Answer non-short-circuited pairs through the online search.

        Pairs are canonicalized and deduplicated (distances are symmetric,
        so reversed and repeated pairs collapse), then split by bound
        depth: tight bounds go to the stacked grouped BFS, whose wave
        volume grows exponentially with ``bound - 2``; loose bounds go to
        per-pair bidirectional search, which meets in the middle and only
        pays for half-depth waves from each side.
        """
        idx = np.flatnonzero(remaining)
        s, t = pairs[idx, 0], pairs[idx, 1]
        src = np.minimum(s, t)
        dst = np.maximum(s, t)
        keys = src * np.int64(self.graph.num_vertices) + dst
        _, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
        u_src, u_dst, u_bound = src[first], dst[first], bounds[idx[first]]
        results = np.empty(len(u_src), dtype=float)

        backend = resolve_kernel(self.kernel)
        workspace = get_workspace(self.graph.num_vertices)
        shallow = u_bound <= self.max_stacked_expansions + 2
        if shallow.any():
            sel = np.flatnonzero(shallow)
            results[sel] = self._stacked_shallow(
                u_src[sel], u_dst[sel], u_bound[sel], backend, workspace
            )
        if not shallow.all():
            sel = np.flatnonzero(~shallow)
            for i in sel:
                results[i] = bounded_bidirectional_distance(
                    self.graph,
                    int(u_src[i]),
                    int(u_dst[i]),
                    u_bound[i],
                    excluded=self.landmark_mask,
                    kernel=backend,
                    workspace=workspace,
                )
        distances[idx] = results[inverse]

    def _stacked_shallow(
        self,
        u_src: np.ndarray,
        u_dst: np.ndarray,
        u_bound: np.ndarray,
        backend: KernelBackend,
        workspace,
    ) -> np.ndarray:
        """Group sorted unique pairs by source and run the stacked BFS."""
        # The pairs arrive sorted by (src, dst), so equal sources are
        # contiguous; one stacked BFS answers every source group at once.
        new_group = np.r_[False, u_src[1:] != u_src[:-1]]
        sources = u_src[np.r_[True, new_group[1:]]]
        target_group = np.cumsum(new_group)
        return bounded_grouped_multi_target_distances(
            self.graph,
            sources,
            u_dst,
            target_group,
            u_bound,
            excluded=self.landmark_mask,
            kernel=backend,
            workspace=workspace,
        )

    def coverage_ratio(self, pairs: np.ndarray) -> float:
        """Fraction of pairs answerable from the labels alone (Figure 9)."""
        pairs = as_pair_array(pairs, self.graph.num_vertices)
        if len(pairs) == 0:
            return 0.0
        _, covered = self.query_many(pairs, return_coverage=True)
        assert covered is not None
        return float(covered.mean())
