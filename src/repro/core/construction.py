"""Algorithm 1: constructing the highway cover labelling.

One *pruned BFS* per landmark ``r``. The BFS maintains two per-level
queues exactly as in the paper:

* ``Q_label`` — vertices reached through landmark-free shortest paths;
  each gets the entry ``(r, depth)`` added to its label.
* ``Q_prune`` — landmarks, and vertices whose every shortest path from
  ``r`` passes through another landmark; they receive no entry, but the
  BFS keeps expanding through them so every vertex is still visited once
  at its true BFS level.

The label/prune split implements Lemma 3.7: ``(r, d(r, v))`` enters
``L(v)`` iff some shortest ``r``–``v`` path contains no other landmark.
Processing ``Q_label``'s children before ``Q_prune``'s within each level
is what makes the "iff" hold — a vertex reachable at the same depth both
ways is labelled.

Both queues are numpy frontiers, so a level costs a handful of vectorized
gathers rather than a Python loop over vertices.

A by-product of visiting every vertex at its true level is that each
pruned BFS also yields the exact distances from ``r`` to every other
landmark — the highway row ``δH(r, ·)`` — so the highway is filled during
construction, as noted below Algorithm 1 in the paper.

:func:`build_highway_cover_labelling` dispatches between two engines
with byte-identical output: the paper-literal looped builder in this
module (``engine="looped"``, one pruned BFS per landmark) and the
stacked bit-parallel engine in :mod:`repro.core.construction_engine`
(``engine="stacked"``, the default — advances up to 64 landmarks per
pass and is several times faster at large k).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.highway import Highway
from repro.core.labels import LabelAccumulator, LabelStore
from repro.errors import LandmarkError
from repro.graphs.csr import frontier_neighbors
from repro.graphs.graph import Graph
from repro.utils.timing import TimeBudget


def pruned_bfs_from_landmark(
    graph: Graph,
    landmark: int,
    landmark_mask: np.ndarray,
    landmark_ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run one pruned BFS (the body of Algorithm 1's outer loop).

    Args:
        graph: the input graph ``G``.
        landmark: the root landmark vertex id ``r``.
        landmark_mask: boolean mask over vertices marking all of ``R``.
        landmark_ids: vertex ids of all landmarks in landmark-index order
            (used to read off the highway row).

    Returns:
        ``(labelled_vertices, labelled_distances, highway_row)`` where the
        first two arrays list the vertices receiving ``(r, d)`` entries,
        and ``highway_row[j] = d_G(r, landmark_ids[j])`` (``inf`` when
        unreachable).
    """
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    visited[landmark] = True
    dist_to_landmarks = np.full(n, -1, dtype=np.int64)  # only read at landmark ids
    dist_to_landmarks[landmark] = 0

    label_frontier = np.asarray([landmark], dtype=np.int64)
    prune_frontier = np.empty(0, dtype=np.int64)
    out_vertices = []
    out_distances = []
    depth = 0
    while label_frontier.size or prune_frontier.size:
        depth += 1
        # Children of Q_label claim vertices first (Lines 8-16).
        if label_frontier.size:
            children = frontier_neighbors(graph.csr, label_frontier)
            children = children[~visited[children]]
            children = np.unique(children)
        else:
            children = np.empty(0, dtype=np.int64)
        if children.size:
            visited[children] = True
            child_is_landmark = landmark_mask[children]
            newly_labelled = children[~child_is_landmark]
            pruned_landmarks = children[child_is_landmark]
            if newly_labelled.size:
                out_vertices.append(newly_labelled)
                out_distances.append(np.full(newly_labelled.size, depth, dtype=np.int32))
            if pruned_landmarks.size:
                dist_to_landmarks[pruned_landmarks] = depth
        else:
            newly_labelled = np.empty(0, dtype=np.int64)
            pruned_landmarks = np.empty(0, dtype=np.int64)
        # Children of Q_prune: visited but never labelled (Lines 19-21).
        if prune_frontier.size:
            shadow = frontier_neighbors(graph.csr, prune_frontier)
            shadow = shadow[~visited[shadow]]
            shadow = np.unique(shadow)
            if shadow.size:
                visited[shadow] = True
                dist_to_landmarks[shadow[landmark_mask[shadow]]] = depth
        else:
            shadow = np.empty(0, dtype=np.int64)
        label_frontier = newly_labelled.astype(np.int64)
        prune_frontier = np.concatenate([pruned_landmarks, shadow]).astype(np.int64)

    if out_vertices:
        labelled = np.concatenate(out_vertices)
        distances = np.concatenate(out_distances)
    else:
        labelled = np.empty(0, dtype=np.int64)
        distances = np.empty(0, dtype=np.int32)
    row = dist_to_landmarks[landmark_ids].astype(float)
    row[row < 0] = np.inf
    return labelled, distances, row


def build_highway_cover_labelling(
    graph: Graph,
    landmarks: Sequence[int],
    budget_s: Optional[float] = None,
    engine: str = "stacked",
    chunk_size: Optional[int] = None,
    store: str = "vertex",
) -> Tuple[LabelStore, Highway]:
    """Algorithm 1 over all landmarks (the method the paper calls HL).

    Args:
        graph: input graph (assumed undirected/unweighted; connectivity is
            not required — unreachable vertices simply get no entry).
        landmarks: landmark vertex ids; their order fixes landmark
            *indices* but, by Lemma 3.11, has no effect on the labels.
        budget_s: optional wall-clock budget; exceeding it raises
            :class:`~repro.errors.ConstructionBudgetExceeded` (DNF).
        engine: ``"stacked"`` (default) advances all landmarks together
            bit-parallel (HL-C, see
            :mod:`repro.core.construction_engine`); ``"looped"`` runs
            the paper-literal one-BFS-per-landmark loop below. Both
            produce byte-identical output.
        chunk_size: stacked engine only — landmarks in flight per pass
            (bounds memory; ignored by the looped engine).
        store: label-store backend to emit — ``"vertex"`` (frozen CSR)
            or ``"landmark"`` (mutable landmark-major runs); the logical
            labelling is identical (see :mod:`repro.core.labels`).

    Returns:
        ``(labelling, highway)`` with the highway matrix fully populated.
    """
    if engine == "stacked":
        from repro.core.construction_engine import (
            build_highway_cover_labelling_stacked,
        )

        return build_highway_cover_labelling_stacked(
            graph, landmarks, budget_s=budget_s, chunk_size=chunk_size, store=store
        )
    if engine != "looped":
        raise ValueError(f"unknown construction engine {engine!r}")
    landmark_ids = np.asarray([int(v) for v in landmarks], dtype=np.int64)
    if landmark_ids.size == 0:
        raise LandmarkError("need at least one landmark")
    for v in landmark_ids:
        graph.validate_vertex(int(v))
    highway = Highway(landmark_ids)
    mask = highway.landmark_mask(graph.num_vertices)
    accumulator = LabelAccumulator(graph.num_vertices, len(landmark_ids))
    budget = TimeBudget(budget_s, method="HL")
    for index, landmark in enumerate(landmark_ids):
        budget.check()
        vertices, distances, row = pruned_bfs_from_landmark(
            graph, int(landmark), mask, landmark_ids
        )
        accumulator.add_landmark_result(index, vertices, distances)
        highway.set_row(int(landmark), row)
    return accumulator.freeze_as(store), highway
