"""Executable forms of the paper's theorems, used by tests and Figure 1(c).

* :func:`reference_minimal_entries` — a brute-force oracle for Lemma 3.7:
  the exact set of (landmark, vertex) entries a HWC-minimal labelling must
  contain, computed from full BFS distance arrays.
* :func:`is_hwc_minimal` — Theorem 3.12 check: a labelling is minimal iff
  it equals the reference entry set.
* :func:`is_highway_cover` — Definition 3.2 check: every r-constrained
  distance is recoverable from the labels plus the highway.

These are O(k * n) to O(k^2 * n) with full BFS sweeps — fine for the test
graphs, deliberately independent of Algorithm 1's code path.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import numpy as np

from repro.core.highway import Highway
from repro.core.labels import LabelStore
from repro.graphs.graph import Graph
from repro.search.bfs import UNREACHED, bfs_distances


def _landmark_distance_table(graph: Graph, highway: Highway) -> np.ndarray:
    """Full (k, n) matrix of exact BFS distances from every landmark."""
    rows = [bfs_distances(graph, int(r)) for r in highway.landmarks]
    return np.stack(rows).astype(np.int64)


def reference_minimal_entries(
    graph: Graph, highway: Highway
) -> Set[Tuple[int, int]]:
    """The entry set required by Lemma 3.7, via brute force.

    ``(r_index, v)`` is in the result iff ``v`` is reachable from landmark
    ``r``, is not itself a landmark, and **some** shortest ``r``–``v``
    path avoids all other landmarks. The condition is evaluated by a
    label-queue-free criterion: run the "no other landmark on the path"
    test as a dynamic program over BFS levels — a vertex is *cleanly
    reachable* from ``r`` iff it has a cleanly reachable predecessor on a
    shortest path and is not a landmark.
    """
    table = _landmark_distance_table(graph, highway)
    mask = highway.landmark_mask(graph.num_vertices)
    required: Set[Tuple[int, int]] = set()
    for r_index in range(highway.num_landmarks):
        dist = table[r_index]
        reachable = dist != UNREACHED
        order = np.argsort(dist[reachable], kind="stable")
        vertices_by_level = np.flatnonzero(reachable)[order]
        clean = np.zeros(graph.num_vertices, dtype=bool)
        clean[int(highway.landmarks[r_index])] = True
        for v in vertices_by_level:
            v = int(v)
            if dist[v] == 0:
                continue
            has_clean_parent = any(
                dist[int(u)] == dist[v] - 1 and clean[int(u)]
                for u in graph.neighbors(v)
            )
            if has_clean_parent and not mask[v]:
                clean[v] = True
                required.add((r_index, v))
    return required


def labelling_entry_set(labelling: LabelStore) -> Set[Tuple[int, int]]:
    """All (landmark_index, vertex) pairs present in a labelling."""
    entries: Set[Tuple[int, int]] = set()
    for v in range(labelling.num_vertices):
        idx, _ = labelling.label_arrays(v)
        for r in idx:
            entries.add((int(r), v))
    return entries


def is_hwc_minimal(
    graph: Graph, labelling: LabelStore, highway: Highway
) -> bool:
    """Theorem 3.12: minimal iff the entry set matches the Lemma 3.7 oracle."""
    return labelling_entry_set(labelling) == reference_minimal_entries(graph, highway)


def is_highway_cover(
    graph: Graph, labelling: LabelStore, highway: Highway
) -> bool:
    """Definition 3.2 check (exactness of r-constrained distances).

    For every landmark ``r`` and every pair of non-landmark vertices the
    highway cover property is equivalent to: the label-decoded distance
    ``min over (ri, di) in L(v) of di + δH(ri, r)`` equals the true
    ``d(r, v)`` for every vertex ``v`` reachable from ``r``. (If the
    decoded landmark distances are exact on both sides, every
    r-constrained s-t distance decomposes exactly.)
    """
    table = _landmark_distance_table(graph, highway)
    matrix = highway.matrix
    for r_index in range(highway.num_landmarks):
        true_dist = table[r_index]
        for v in range(graph.num_vertices):
            if bool(highway.landmark_mask(graph.num_vertices)[v]):
                continue
            idx, dist = labelling.label_arrays(v)
            if true_dist[v] == UNREACHED:
                continue
            if len(idx) == 0:
                return False
            decoded = float((matrix[r_index, idx] + dist).min())
            if decoded != float(true_dist[v]):
                return False
    return True


def labelling_sizes_by_order(
    graph: Graph, landmark_orders
) -> Dict[tuple, int]:
    """Labelling size per landmark ordering — Lemma 3.11's experiment.

    For HL every ordering must give the same size (and identical labels);
    the PLL counterpart in :mod:`repro.baselines.pll` shows the contrast
    (Example 3.10 / Figure 4).
    """
    from repro.core.construction import build_highway_cover_labelling

    sizes: Dict[tuple, int] = {}
    for order in landmark_orders:
        labelling, _ = build_highway_cover_labelling(graph, list(order))
        sizes[tuple(order)] = labelling.size()
    return sizes
