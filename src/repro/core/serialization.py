"""Persisting a built HL index to disk (extension).

The paper's workflow is build-once/query-often: a billion-scale
construction that takes hours must not be repeated per process. This
module serializes the complete oracle state — landmark set, highway
matrix and the CSR-of-labels — into a single compact binary file, using
the HL(8)-style narrow encodings when they fit.

Format (little-endian):

    magic   4s   "RPHL"
    version u32
    flags   u32      bit 0: labels use 8-bit landmark ids
    n       u64      vertices
    k       u32      landmarks
    entries u64      total label entries
    landmarks   k * i64
    highway     k*k * u16       (0xFFFF = unreachable)
    offsets     (n+1) * i64
    label_ids   entries * (u8 | u32)
    label_dist  entries * u8

The graph itself is *not* stored (it has its own cache format in
:mod:`repro.graphs.io`); :func:`load_oracle` takes the graph as input
and validates that the stored landmark set fits it.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.highway import Highway
from repro.core.labels import HighwayCoverLabelling
from repro.core.query import HighwayCoverOracle
from repro.errors import NotBuiltError, ReproError
from repro.graphs.graph import Graph

_MAGIC = b"RPHL"
_VERSION = 1
_FLAG_NARROW_IDS = 1
_UNREACHABLE_U16 = 0xFFFF

PathLike = Union[str, Path]


def save_oracle(oracle: HighwayCoverOracle, path: PathLike) -> int:
    """Write a built oracle's index to ``path``; returns bytes written."""
    if oracle.labelling is None or oracle.highway is None:
        raise NotBuiltError("cannot save an unbuilt oracle")
    labelling, highway = oracle.labelling, oracle.highway
    narrow = highway.num_landmarks <= 256
    flags = _FLAG_NARROW_IDS if narrow else 0

    matrix = highway.matrix.copy()
    matrix[np.isinf(matrix)] = _UNREACHABLE_U16
    if (matrix[~np.isinf(highway.matrix)] > 65534).any():
        raise ReproError("highway distance exceeds u16 range")

    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(
            struct.pack(
                "<IIQIQ",
                _VERSION,
                flags,
                labelling.num_vertices,
                highway.num_landmarks,
                labelling.size(),
            )
        )
        handle.write(highway.landmarks.astype("<i8").tobytes())
        handle.write(matrix.astype("<u2").tobytes())
        handle.write(labelling.offsets.astype("<i8").tobytes())
        id_dtype = "<u1" if narrow else "<u4"
        handle.write(labelling.landmark_indices.astype(id_dtype).tobytes())
        handle.write(labelling.distances.astype("<u1").tobytes())
    return path.stat().st_size


def load_oracle(graph: Graph, path: PathLike) -> HighwayCoverOracle:
    """Reconstruct a queryable oracle from ``path`` over ``graph``.

    Raises:
        ReproError: on bad magic/version, or if the stored index does not
            match the graph's vertex count.
    """
    path = Path(path)
    with path.open("rb") as handle:
        if handle.read(4) != _MAGIC:
            raise ReproError(f"{path}: not a repro HL index file")
        version, flags, n, k, entries = struct.unpack("<IIQIQ", handle.read(28))
        if version != _VERSION:
            raise ReproError(f"{path}: unsupported index version {version}")
        if n != graph.num_vertices:
            raise ReproError(
                f"{path}: index built for n={n}, graph has n={graph.num_vertices}"
            )
        landmarks = np.frombuffer(handle.read(8 * k), dtype="<i8").astype(np.int64)
        matrix = (
            np.frombuffer(handle.read(2 * k * k), dtype="<u2")
            .astype(float)
            .reshape(k, k)
        )
        matrix[matrix == _UNREACHABLE_U16] = np.inf
        offsets = np.frombuffer(handle.read(8 * (n + 1)), dtype="<i8").astype(np.int64)
        narrow = bool(flags & _FLAG_NARROW_IDS)
        id_bytes = entries * (1 if narrow else 4)
        ids = np.frombuffer(
            handle.read(id_bytes), dtype="<u1" if narrow else "<u4"
        ).astype(np.int32)
        dists = np.frombuffer(handle.read(entries), dtype="<u1").astype(np.int32)

    labelling = HighwayCoverLabelling(
        num_vertices=int(n),
        num_landmarks=int(k),
        offsets=offsets,
        landmark_indices=ids,
        distances=dists,
    )
    highway = Highway(landmarks, matrix)
    oracle = HighwayCoverOracle(
        num_landmarks=int(k), landmarks=[int(r) for r in landmarks]
    )
    oracle.graph = graph
    oracle.labelling = labelling
    oracle.highway = highway
    oracle._landmark_mask = highway.landmark_mask(graph.num_vertices)
    return oracle
