"""Persisting a built HL index to disk (extension).

The paper's workflow is build-once/query-often: a billion-scale
construction that takes hours must not be repeated per process. This
module serializes the complete oracle state — landmark set, highway
matrix and the label store — into a single binary file in one of two
versions, both little-endian and both readable by :func:`load_oracle`:

**v1** (legacy, packed):

    magic   4s   "RPHL"
    version u32  = 1
    flags   u32      bit 0: labels use 8-bit landmark ids
    n       u64      vertices
    k       u32      landmarks
    entries u64      total label entries
    landmarks   k * i64
    highway     k*k * u16       (0xFFFF = unreachable)
    offsets     (n+1) * i64
    label_ids   entries * (u8 | u32)
    label_dist  entries * u8

**v2** (default, aligned): the same logical fields, but the 32-byte
header is padded to 64 bytes and every array section starts on a
64-byte boundary (zero padding in between), in the same order as v1:

    header      64 bytes (v1 header layout + zero padding)
    landmarks   k * i64             @ 64
    highway     k*k * u16           @ align64(...)
    offsets     (n+1) * i64         @ align64(...)
    label_ids   entries * (u8|u32)  @ align64(...)
    label_dist  entries * u8        @ align64(...)

Alignment is what makes the v2 snapshot *mappable*:
``load_oracle(..., mmap=True)`` wires the three big label arrays
(offsets / ids / distances) straight onto the file with
:class:`numpy.memmap` — no copy into process RAM, near-instant startup,
and one shared page-cache copy across every serving process on the
machine. Only the small ``O(k)``/``O(k²)`` landmark and highway
sections are materialized (the highway needs its ``0xFFFF → inf``
decode). v1 files remain loadable (always copying).

The graph itself is *not* stored (it has its own cache format in
:mod:`repro.graphs.io`); :func:`load_oracle` takes the graph as input
and validates that the stored landmark set fits it. The public entry
points sit a layer up: ``oracle.save(path)`` writes, and
:func:`repro.api.open_oracle` (``index=``, ``mmap=``, ``dynamic=``)
restores — including promotion to the dynamic oracle variant. Every length and
sentinel in the header is validated before use, so truncated or
corrupt files fail with a clear :class:`~repro.errors.ReproError`
instead of a ``struct``/numpy exception.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import BinaryIO, Optional, Union

import numpy as np

from repro.core.highway import Highway
from repro.core.labels import HighwayCoverLabelling
from repro.core.query import HighwayCoverOracle
from repro.errors import NotBuiltError, ReproError
from repro.graphs.graph import Graph

_MAGIC = b"RPHL"
_V1 = 1
_V2 = 2
_SUPPORTED_VERSIONS = (_V1, _V2)
DEFAULT_VERSION = _V2
_FLAG_NARROW_IDS = 1
_KNOWN_FLAGS = _FLAG_NARROW_IDS
_UNREACHABLE_U16 = 0xFFFF
_HEADER_STRUCT = "<IIQIQ"  # version, flags, n, k, entries (after the magic)
_V1_HEADER_BYTES = 4 + struct.calcsize(_HEADER_STRUCT)  # 32
_V2_HEADER_BYTES = 64
_ALIGNMENT = 64

PathLike = Union[str, Path]


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _section_offsets(version: int, n: int, k: int, entries: int, narrow: bool):
    """Byte offsets of (landmarks, highway, offsets, ids, dists, end)."""
    id_width = 1 if narrow else 4
    sizes = (8 * k, 2 * k * k, 8 * (n + 1), id_width * entries, entries)
    if version == _V1:
        cursor = _V1_HEADER_BYTES
        starts = []
        for size in sizes:
            starts.append(cursor)
            cursor += size
        return (*starts, cursor)
    cursor = _V2_HEADER_BYTES
    starts = []
    for size in sizes:
        cursor = _align(cursor)
        starts.append(cursor)
        cursor += size
    return (*starts, cursor)


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (best effort off-POSIX).

    After ``os.replace`` the *file* is durable but the *name* lives in
    the directory; a crash before the directory block reaches disk can
    resurrect the old entry. Platforms that cannot open directories
    (Windows) skip this — ``os.replace`` is still atomic there.
    """
    flags = getattr(os, "O_DIRECTORY", None)
    if flags is None:  # pragma: no cover - non-POSIX
        return
    try:
        fd = os.open(directory, os.O_RDONLY | flags)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_oracle(
    oracle: HighwayCoverOracle, path: PathLike, version: int = DEFAULT_VERSION
) -> int:
    """Write a built oracle's index to ``path``; returns bytes written.

    The write is **atomic and durable**: the snapshot is assembled in a
    same-directory temporary file, flushed and fsynced, then renamed
    over ``path`` with ``os.replace`` (and the directory entry fsynced).
    A crash at any point leaves either the old file or the complete new
    one at ``path`` — never a truncated snapshot at a mappable name.
    When this function returns, the snapshot is on stable storage (the
    point at which a write-ahead log covering the same updates may be
    truncated).

    Args:
        oracle: a built oracle (any label-store backend; the snapshot is
            always the canonical vertex-major CSR).
        path: output file.
        version: snapshot format — 2 (default, aligned/mappable) or 1
            (legacy packed layout).
    """
    if oracle.labelling is None or oracle.highway is None:
        raise NotBuiltError("cannot save an unbuilt oracle")
    if version not in _SUPPORTED_VERSIONS:
        raise ReproError(f"unsupported index version {version}")
    labelling = oracle.labelling.as_vertex_major()
    highway = oracle.highway
    narrow = highway.num_landmarks <= 256
    flags = _FLAG_NARROW_IDS if narrow else 0

    matrix = highway.matrix.copy()
    matrix[np.isinf(matrix)] = _UNREACHABLE_U16
    if (matrix[~np.isinf(highway.matrix)] > 65534).any():
        raise ReproError("highway distance exceeds u16 range")
    if labelling.size() and int(labelling.distances.max()) > 255:
        raise ReproError("label distance exceeds u8 range")

    n = labelling.num_vertices
    k = highway.num_landmarks
    entries = labelling.size()
    sections = _section_offsets(version, n, k, entries, narrow)

    path = Path(path)
    # Same directory as the target so os.replace is a rename, never a
    # cross-device copy; the ".tmp" suffix keeps spool scans and fsck
    # from ever mistaking an in-progress write for a snapshot.
    tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
    try:
        with tmp.open("wb") as handle:
            handle.write(_MAGIC)
            handle.write(
                struct.pack(_HEADER_STRUCT, version, flags, n, k, entries)
            )
            id_dtype = "<u1" if narrow else "<u4"
            payload = (
                highway.landmarks.astype("<i8").tobytes(),
                matrix.astype("<u2").tobytes(),
                labelling.offsets.astype("<i8").tobytes(),
                labelling.landmark_indices.astype(id_dtype).tobytes(),
                labelling.distances.astype("<u1").tobytes(),
            )
            for start, blob in zip(sections, payload):
                pad = start - handle.tell()
                if pad:
                    handle.write(b"\x00" * pad)
                handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
    return path.stat().st_size


def _read_exact(handle: BinaryIO, count: int, path: Path, what: str) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise ReproError(
            f"{path}: truncated index file — expected {count} bytes for "
            f"{what}, got {len(data)}"
        )
    return data


def load_oracle(
    graph: Graph, path: PathLike, mmap: bool = False
) -> HighwayCoverOracle:
    """Reconstruct a queryable oracle from ``path`` over ``graph``.

    Args:
        graph: the graph the index was built for (validated by vertex
            count).
        path: a v1 or v2 snapshot written by :func:`save_oracle`.
        mmap: map the label arrays zero-copy with :class:`numpy.memmap`
            instead of reading them into RAM. Requires a v2 (aligned)
            snapshot; loads are near-instant and the pages are shared
            across processes serving the same file.

    Raises:
        ReproError: on bad magic/version/flags, on a truncated or
            size-inconsistent file, if the label offsets do not cover
            exactly the stored entry count, or if the stored index does
            not match the graph's vertex count.
    """
    path = Path(path)
    with path.open("rb") as handle:
        if _read_exact(handle, 4, path, "magic") != _MAGIC:
            raise ReproError(f"{path}: not a repro HL index file")
        header = _read_exact(
            handle, struct.calcsize(_HEADER_STRUCT), path, "header"
        )
        version, flags, n, k, entries = struct.unpack(_HEADER_STRUCT, header)
        if version not in _SUPPORTED_VERSIONS:
            raise ReproError(f"{path}: unsupported index version {version}")
        if flags & ~_KNOWN_FLAGS:
            raise ReproError(f"{path}: unknown flag bits 0x{flags:x}")
        narrow = bool(flags & _FLAG_NARROW_IDS)
        if narrow and k > 256:
            raise ReproError(
                f"{path}: corrupt header — 8-bit landmark ids with k={k}"
            )
        if n != graph.num_vertices:
            raise ReproError(
                f"{path}: index built for n={n}, graph has n={graph.num_vertices}"
            )
        if mmap and version == _V1:
            raise ReproError(
                f"{path}: mmap loading requires an aligned v2 snapshot; "
                f"re-save with save_oracle(..., version=2)"
            )
        sections = _section_offsets(version, n, k, entries, narrow)
        actual_size = path.stat().st_size
        if actual_size != sections[-1]:
            raise ReproError(
                f"{path}: truncated or oversized index file — expected "
                f"{sections[-1]} bytes, found {actual_size}"
            )
        sec_landmarks, sec_highway, sec_offsets, sec_ids, sec_dists, _ = sections

        def read_section(start: int, count: int, dtype: str, what: str) -> np.ndarray:
            """Read one array section into RAM, validating its length."""
            handle.seek(start)
            return np.frombuffer(
                _read_exact(handle, count * np.dtype(dtype).itemsize, path, what),
                dtype=dtype,
            )

        landmarks = read_section(sec_landmarks, k, "<i8", "landmarks").astype(
            np.int64
        )
        matrix = (
            read_section(sec_highway, k * k, "<u2", "highway")
            .astype(float)
            .reshape(k, k)
        )
        matrix[matrix == _UNREACHABLE_U16] = np.inf
        id_dtype = "<u1" if narrow else "<u4"
        if mmap:
            offsets = _map_section(path, sec_offsets, n + 1, "<i8")
            ids = _map_section(path, sec_ids, entries, id_dtype)
            dists = _map_section(path, sec_dists, entries, "<u1")
        else:
            offsets = read_section(sec_offsets, n + 1, "<i8", "offsets").astype(
                np.int64
            )
            ids = read_section(sec_ids, entries, id_dtype, "label ids").astype(
                np.int32
            )
            dists = read_section(
                sec_dists, entries, "<u1", "label distances"
            ).astype(np.int32)

    if int(offsets[0]) != 0 or int(offsets[-1]) != entries:
        raise ReproError(
            f"{path}: corrupt label offsets — offsets[0]={int(offsets[0])}, "
            f"offsets[-1]={int(offsets[-1])}, expected 0 and {entries}"
        )
    if n and not bool((np.diff(offsets) >= 0).all()):
        raise ReproError(f"{path}: corrupt label offsets — not non-decreasing")

    labelling = HighwayCoverLabelling(
        num_vertices=int(n),
        num_landmarks=int(k),
        offsets=offsets,
        landmark_indices=ids,
        distances=dists,
    )
    highway = Highway(landmarks, matrix)
    oracle = HighwayCoverOracle(
        num_landmarks=int(k), landmarks=[int(r) for r in landmarks]
    )
    oracle.graph = graph
    oracle.labelling = labelling
    oracle.highway = highway
    oracle._landmark_mask = highway.landmark_mask(graph.num_vertices)
    return oracle


def _map_section(path: Path, start: int, count: int, dtype: str) -> np.ndarray:
    """A read-only, zero-copy view of one on-disk array section."""
    if count == 0:
        return np.empty(0, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode="r", offset=start, shape=(count,))


class SnapshotSpool:
    """A directory of versioned snapshot files for multi-process serving.

    The sharded serving tier (:class:`~repro.serving.ShardedDistanceService`)
    keeps every worker process mapped onto one immutable v2 snapshot.
    A dynamic update therefore never mutates the mapped file — the
    writer publishes a *new* generation instead and workers re-map:

    1. the writer repairs its in-RAM index and calls :meth:`publish`,
       which writes ``gen-<seq>.hl`` into the spool directory;
    2. the new path is broadcast to the workers, each of which calls
       :func:`load_oracle` on it (``mmap=True``) — the worker-side
       re-map hook;
    3. once every worker has acknowledged, the writer calls
       :meth:`retire` on the previous generation, deleting the file
       nobody maps any more.

    Reopening an existing directory **resumes** the sequence after the
    highest ``gen-*.hl`` already present — a generation number is never
    reused, so a restarted writer can never overwrite a file an old
    worker may still map (generations are immutable for their whole
    lifetime). In-progress ``*.tmp`` writes from a crashed publisher are
    ignored by the scan (and swept by :meth:`close`); the atomic publish
    guarantees every ``gen-*.hl`` at its final name is complete.

    The spool owns its directory only when it created it
    (``directory=None``); :meth:`close` then removes everything.

    Args:
        directory: where generations are written. ``None`` creates a
            private temporary directory that :meth:`close` deletes.
        prefix: filename prefix for generation files.
    """

    def __init__(
        self, directory: Optional[PathLike] = None, prefix: str = "gen"
    ) -> None:
        import tempfile

        self._owned = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-spool-")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self._seq = self._next_sequence()
        self._live: set = set()

    def _next_sequence(self) -> int:
        """One past the highest existing generation number (0 if none)."""
        highest = -1
        for path in self.generations():
            try:
                highest = max(
                    highest, int(path.stem[len(self.prefix) + 1 :])
                )
            except ValueError:  # pragma: no cover - foreign file
                continue
        return highest + 1

    def generations(self) -> list:
        """Existing generation files, oldest first (``*.tmp`` excluded)."""
        return sorted(self.directory.glob(f"{self.prefix}-*.hl"))

    def latest(self) -> Optional[Path]:
        """The newest generation file, or ``None`` for an empty spool."""
        existing = self.generations()
        return existing[-1] if existing else None

    def live_generations(self) -> list:
        """Generations published by this spool and not yet retired."""
        return sorted(self._live)

    @staticmethod
    def graph_sidecar_for(path: PathLike) -> Path:
        """The graph-sidecar path paired with a generation file."""
        path = Path(path)
        return path.with_suffix(".graph")

    def publish(
        self, oracle, version: int = DEFAULT_VERSION, graph: bool = False
    ) -> Path:
        """Write the oracle's index as the next generation; returns its path.

        Always a fresh file — existing generations are immutable, so
        worker processes keep valid mappings of the old file while the
        new one is written; the write itself is atomic and fsynced
        (:func:`save_oracle`), so a crashed publish can never leave a
        truncated file at a mappable ``gen-*.hl`` name. When this
        returns, the generation is durably on disk — the point at which
        a write-ahead log covering the same updates may be truncated.

        Args:
            oracle: the built oracle to snapshot.
            version: snapshot format version.
            graph: also write a ``gen-*.graph`` sidecar holding the
                oracle's current graph (the compact binary CSR format),
                so a crash-recovery open can reconstruct the exact
                graph this generation's labels were built against
                without replaying history from the base graph.
        """
        path = self.directory / f"{self.prefix}-{self._seq:06d}.hl"
        self._seq += 1
        if graph:
            self._write_graph_sidecar(oracle.graph, self.graph_sidecar_for(path))
        save_oracle(oracle, path, version=version)
        self._live.add(path)
        return path

    def publish_via(self, write_fn) -> Path:
        """Allocate the next generation name and let ``write_fn`` fill it.

        The escape hatch for writers that produce a snapshot without an
        in-RAM oracle — the out-of-core builder
        (:func:`repro.core.ooc.build_snapshot_out_of_core`) streams
        label sections straight to disk and publishes the result as a
        spool generation through this hook.  ``write_fn(path)`` must
        create ``path`` atomically (temp file + rename), exactly like
        :func:`save_oracle`; the sequence number is consumed either
        way, so a failed write never reuses a generation name.

        Returns the generation path, registered as live.
        """
        path = self.directory / f"{self.prefix}-{self._seq:06d}.hl"
        self._seq += 1
        write_fn(path)
        if not path.is_file():
            raise ReproError(
                f"publish_via writer did not produce {path}"
            )
        self._live.add(path)
        return path

    def _write_graph_sidecar(self, graph, sidecar: Path) -> None:
        """Atomically write the graph next to its generation file."""
        from repro.graphs.io import write_binary

        tmp = sidecar.parent / f"{sidecar.name}.{os.getpid()}.tmp"
        try:
            write_binary(graph, tmp)
            with tmp.open("rb") as handle:
                os.fsync(handle.fileno())
            os.replace(tmp, sidecar)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        _fsync_directory(sidecar.parent)

    def retire(self, path: PathLike) -> None:
        """Delete a generation no process maps any more (missing is fine).

        Removes the graph sidecar, if any, alongside. Unlinking is safe
        even while a straggler still maps the old file — the mapping
        keeps the inode alive until it is dropped — but a *new* open of
        the retired path will fail, which is why callers retire only
        after every worker acknowledged the next generation.
        """
        path = Path(path)
        path.unlink(missing_ok=True)
        self.graph_sidecar_for(path).unlink(missing_ok=True)
        self._live.discard(path)

    def close(self, force: bool = False) -> None:
        """Remove the spool directory if this spool created it; idempotent.

        Deleting a generation a worker still maps does not corrupt that
        worker (the inode survives), but it silently destroys state a
        restart would need — so an owned spool **refuses** to close
        while generations it published are still live (published and
        never retired), unless ``force=True`` asserts that every
        process mapping them has already exited (the sharded service
        closes its workers first and then forces).

        Raises:
            ReproError: owned spool with live generations and
                ``force=False`` — retire them (or close the processes
                mapping them and pass ``force=True``) first.
        """
        if not self._owned:
            self._live.clear()
            return
        if self._live and not force:
            names = ", ".join(p.name for p in sorted(self._live))
            raise ReproError(
                f"spool {self.directory} still has live generations "
                f"({names}); retire them first, or close(force=True) "
                f"after every mapping process has exited"
            )
        import shutil

        shutil.rmtree(self.directory, ignore_errors=True)
        self._live.clear()
