"""The querying framework (Section 4): the method the paper calls **HL**.

:class:`HighwayCoverOracle` ties together the offline component (highway
cover labelling, Algorithm 1) and the online component (distance-bounded
bidirectional search, Algorithm 2). By Theorem 4.6 the combination returns
exact distances for every vertex pair.

Vertex-class handling (all proven exact):

* ``s == t`` — zero.
* both landmarks — highway lookup ``δH(s, t)``.
* one landmark ``r``, one vertex ``v`` — take the landmark on a shortest
  ``r``–``v`` path that is closest to ``v``; by Lemma 3.7 the pruned BFS
  labelled ``v`` from that landmark, hence
  ``d(r, v) = min over (rj, d) in L(v) of δH(r, rj) + d`` exactly.
* two non-landmarks — ``d⊤`` upper bound (Eq. 4 / Lemma 5.1), then
  Algorithm 2 on the sparsified graph ``G[V \\ R]``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.api.protocol import Capability
from repro.core.bounds import upper_bound_distance
from repro.core.compression import LabelCodec, encoded_size_bytes
from repro.core.construction import build_highway_cover_labelling
from repro.core.highway import Highway
from repro.core.kernels import (
    KernelBackend,
    get_label_state,
    get_workspace,
    resolve_kernel,
)
from repro.core.labels import LabelStore
from repro.core.parallel import build_highway_cover_labelling_parallel
from repro.errors import NotBuiltError
from repro.graphs.graph import Graph
from repro.landmarks.selection import select_landmarks


class HighwayCoverOracle:
    """Exact distance oracle backed by highway cover labelling.

    This is the library's flagship object — **HL** in the paper, **HL-P**
    with ``parallel=True``, **HL(8)** with ``codec="u8"``.

    Args:
        num_landmarks: size of the landmark set ``R`` (the paper uses 20
            for Tables 2-3 and sweeps 10-50 in Figures 7-9).
        landmark_strategy: how to pick landmarks; the paper uses
            ``"degree"`` (top degrees). See :mod:`repro.landmarks`.
        parallel: construct labels with the landmark-parallel builder
            (Section 5.1, HL-P). Labels are identical by Lemma 3.11.
        codec: label storage codec for byte accounting: ``"u32"``
            reproduces the baselines' 32+8-bit entries, ``"u8"`` is the
            paper's HL(8) compression (8+8 bits).
        budget_s: optional construction budget (DNF reporting).
        workers: worker count for ``parallel=True``.
        engine: sequential construction engine — ``"stacked"``
            (default, the bit-parallel HL-C engine) or ``"looped"``
            (one pruned BFS per landmark). Byte-identical output.
        chunk_size: landmarks advanced per stacked pass (bounds
            construction memory; also the per-worker unit for
            ``parallel=True``).
        store: label-store backend — ``"vertex"`` (frozen CSR,
            query-optimal; the base oracle's default) or ``"landmark"``
            (mutable landmark-major runs, update-optimal; the dynamic
            oracle's default). ``None`` picks the class default. See
            :mod:`repro.core.labels`.
        kernel: query kernel backend name (``"numpy"``, ``"numba"``,
            ``"cext"``, ``"pyloop"``). ``None`` defers to the process
            default (``REPRO_KERNEL`` or auto-detection); see
            :mod:`repro.core.kernels`. All backends are byte-identical —
            this is purely a performance switch.

    Example:
        >>> from repro.graphs import barabasi_albert_graph
        >>> g = barabasi_albert_graph(300, 3, seed=7)
        >>> oracle = HighwayCoverOracle(num_landmarks=10).build(g)
        >>> d = oracle.query(3, 250)
    """

    name = "HL"
    default_store = "vertex"
    #: Advertised capability layers (see :mod:`repro.api.protocol`):
    #: vectorized batching, on-disk snapshots, witness-path recovery.
    CAPABILITIES = frozenset(
        {Capability.BATCH, Capability.SNAPSHOT, Capability.PATHS}
    )

    def capabilities(self) -> frozenset:
        """The :class:`~repro.api.Capability` layers this oracle honours."""
        return self.CAPABILITIES

    def __init__(
        self,
        num_landmarks: int = 20,
        landmark_strategy: str = "degree",
        parallel: bool = False,
        codec: str = "u32",
        budget_s: Optional[float] = None,
        workers: Optional[int] = None,
        landmarks: Optional[Sequence[int]] = None,
        engine: str = "stacked",
        chunk_size: Optional[int] = None,
        store: Optional[str] = None,
        kernel: Optional[str] = None,
    ) -> None:
        self.num_landmarks = num_landmarks
        self.landmark_strategy = landmark_strategy
        self.parallel = parallel
        self.codec = LabelCodec(codec)
        self.budget_s = budget_s
        self.workers = workers
        self.engine = engine
        self.chunk_size = chunk_size
        self.store = store if store is not None else self.default_store
        if self.store not in ("vertex", "landmark"):
            raise ValueError(f"unknown label store backend {self.store!r}")
        if kernel is not None:
            resolve_kernel(kernel)  # fail fast on unknown/unavailable names
        self.kernel = kernel
        self._explicit_landmarks = list(landmarks) if landmarks is not None else None
        self.graph: Optional[Graph] = None
        self.labelling: Optional[LabelStore] = None
        self.highway: Optional[Highway] = None
        self._landmark_mask: Optional[np.ndarray] = None
        self._batch_engine = None
        self.construction_seconds: float = 0.0

    # -- Offline phase -------------------------------------------------------

    def build(self, graph: Graph) -> "HighwayCoverOracle":
        """Select landmarks and run Algorithm 1 (or HL-P)."""
        from repro.utils.timing import Stopwatch

        if self._explicit_landmarks is not None:
            landmark_ids = [int(v) for v in self._explicit_landmarks]
        else:
            landmark_ids = select_landmarks(
                graph, self.num_landmarks, strategy=self.landmark_strategy
            )
        with Stopwatch() as sw:
            if self.parallel:
                labelling, highway = build_highway_cover_labelling_parallel(
                    graph,
                    landmark_ids,
                    budget_s=self.budget_s,
                    workers=self.workers,
                    chunk_size=self.chunk_size,
                    store=self.store,
                )
            else:
                labelling, highway = build_highway_cover_labelling(
                    graph,
                    landmark_ids,
                    budget_s=self.budget_s,
                    engine=self.engine,
                    chunk_size=self.chunk_size,
                    store=self.store,
                )
        self.construction_seconds = sw.elapsed
        self.graph = graph
        self.labelling = labelling
        self.highway = highway
        self._landmark_mask = highway.landmark_mask(graph.num_vertices)
        self._batch_engine = None
        self.codec.validate(labelling, highway)
        return self

    # -- Online phase ----------------------------------------------------------

    def query(self, s: int, t: int) -> float:
        """Exact shortest-path distance ``dG(s, t)`` (Theorem 4.6)."""
        graph, labelling, highway = self._require_built()
        graph.validate_vertex(s)
        graph.validate_vertex(t)
        if s == t:
            return 0.0
        s_is_landmark = bool(self._landmark_mask[s])
        t_is_landmark = bool(self._landmark_mask[t])
        if s_is_landmark and t_is_landmark:
            return highway.distance(s, t)
        if s_is_landmark:
            return self._landmark_to_vertex(s, t)
        if t_is_landmark:
            return self._landmark_to_vertex(t, s)
        return self._nonlandmark_pair(s, t)[1]

    def query_many(self, pairs, return_coverage: bool = False):
        """Exact distances for an ``(k, 2)`` array of pairs, vectorized.

        Semantically identical to looping :meth:`query` over the rows —
        asserted bitwise by the test suite — but answered by the batch
        engine: one vectorized bound computation over the flattened label
        arrays, short circuits for trivially-exact pairs, and one grouped
        multi-target bounded BFS per distinct source vertex.

        Args:
            pairs: integer array of shape ``(k, 2)``.
            return_coverage: also return the boolean "covered" mask
                (bound == exact), the statistic Figure 9 plots.

        Returns:
            float distance array of length ``k`` (``inf`` for unreachable
            pairs); with ``return_coverage=True``, a ``(distances,
            covered)`` tuple.
        """
        distances, covered = self.batch_engine().query_many(
            pairs, return_coverage=return_coverage
        )
        if return_coverage:
            return distances, covered
        return distances

    def batch_engine(self):
        """The cached :class:`~repro.core.batch_engine.BatchQueryEngine`."""
        self._require_built()
        if self._batch_engine is None:
            from repro.core.batch_engine import BatchQueryEngine

            self._batch_engine = BatchQueryEngine.from_oracle(self)
        return self._batch_engine

    def upper_bound(self, s: int, t: int) -> float:
        """The offline-only estimate ``d⊤(s, t)`` (admissible upper bound)."""
        _, labelling, highway = self._require_built()
        if s == t:
            return 0.0
        if self._landmark_mask[s] and self._landmark_mask[t]:
            return highway.distance(s, t)
        if self._landmark_mask[s]:
            return self._landmark_to_vertex(s, t)
        if self._landmark_mask[t]:
            return self._landmark_to_vertex(t, s)
        return upper_bound_distance(labelling, highway, s, t, kernel=self.kernel)

    def is_covered(self, s: int, t: int) -> bool:
        """True iff the labels alone answer the pair exactly.

        "Covered" pairs (Figure 9) are those whose upper bound is realized
        by a shortest path through a landmark; we detect them as pairs
        where the bounded search cannot improve on the bound. The bound is
        computed once and compared against the search result directly —
        trivially-covered classes (same vertex, landmark pairs,
        disconnected pairs) never search at all.
        """
        graph, _, _ = self._require_built()
        graph.validate_vertex(s)
        graph.validate_vertex(t)
        if s == t:
            return True
        if self._landmark_mask[s] or self._landmark_mask[t]:
            # Landmark-class answers *are* label lookups: bound == query.
            return True
        bound, dist = self._nonlandmark_pair(s, t)
        return dist == bound

    def _nonlandmark_pair(self, s: int, t: int) -> tuple:
        """``(d⊤, dG)`` for two distinct non-landmark vertices.

        The single place Equation 4 meets Algorithm 2. Short-circuits
        before any search:

        * one label empty, the other not — the empty side's vertex sits in
          a landmark-free component, the other side can reach a landmark,
          so the two are disconnected: ``(inf, inf)`` with no search;
        * both labels non-empty but ``d⊤ = inf`` — every landmark pair
          fails to connect them, which (labels being shortest-path exact)
          means different components: ``(inf, inf)`` with no search;
        * both labels empty — both vertices live in landmark-free
          components where the sparsified graph *is* the true graph, so
          one unbounded sparsified search decides the pair.
        """
        graph, labelling, highway = self._require_built()
        backend = self.kernel_backend
        state = get_label_state(labelling, highway)
        empty_s = state.count(s) == 0
        empty_t = state.count(t) == 0
        if empty_s != empty_t:
            return float("inf"), float("inf")
        if empty_s:  # and empty_t
            dist = backend.bounded_distance(
                graph.csr,
                int(s),
                int(t),
                float("inf"),
                self._landmark_mask,
                get_workspace(graph.num_vertices),
            )
            return float("inf"), dist
        bound = backend.upper_bound(state, s, t)
        if np.isinf(bound):
            return bound, float("inf")
        if bound == 1.0:
            # A bound of 1 between distinct vertices is already optimal.
            return 1.0, 1.0
        dist = backend.bounded_distance(
            graph.csr,
            int(s),
            int(t),
            bound,
            self._landmark_mask,
            get_workspace(graph.num_vertices),
        )
        return bound, dist

    @property
    def kernel_backend(self) -> KernelBackend:
        """The resolved :class:`~repro.core.kernels.KernelBackend`.

        Resolved per access from :attr:`kernel` (a registry singleton
        lookup), never stored — backends hold unpicklable handles and the
        oracle must stay picklable for the multiprocessing tiers.
        """
        return resolve_kernel(self.kernel)

    def set_kernel(self, kernel) -> None:
        """Switch the query kernel backend (name, backend, or ``None``).

        Validates eagerly — unknown names raise
        :class:`~repro.errors.KernelError`, unavailable backends
        :class:`~repro.errors.KernelUnavailableError` — and invalidates
        the cached batch engine so it picks up the new backend.
        """
        backend = resolve_kernel(kernel)
        self.kernel = backend.name if kernel is not None else None
        self._batch_engine = None

    def _landmark_to_vertex(self, landmark: int, vertex: int) -> float:
        """Exact ``d(r, v)`` from ``L(v)`` + highway (docstring proof above)."""
        _, labelling, highway = self._require_built()
        state = get_label_state(labelling, highway)
        if state.count(vertex) == 0:
            return float("inf")
        r_index = int(highway.index_of[int(landmark)])
        return self.kernel_backend.decode(state, r_index, int(vertex))

    # -- Capability layers: snapshots and witness paths --------------------------

    def save(self, path, version: int = 2) -> int:
        """Persist the built index to ``path`` (``Capability.SNAPSHOT``).

        Restore with ``repro.api.open_oracle(graph, index=path)`` — with
        ``mmap=True`` for zero-copy loading of a v2 snapshot. Returns
        bytes written.
        """
        from repro.core.serialization import save_oracle

        return save_oracle(self, path, version=version)

    def shortest_path(self, s: int, t: int) -> Optional[List[int]]:
        """A witness shortest path for ``query(s, t)`` (``Capability.PATHS``).

        Returns the vertex list from ``s`` to ``t`` (``len - 1`` equals
        the exact distance), or ``None`` when disconnected.
        """
        from repro.core.paths import shortest_path

        return shortest_path(self, s, t)

    # -- Reporting ---------------------------------------------------------------

    def size_bytes(self) -> int:
        """Labelling size in bytes under the configured codec (Table 3)."""
        _, labelling, highway = self._require_built()
        return encoded_size_bytes(labelling, highway, self.codec)

    def average_label_size(self) -> float:
        """ALS — average number of entries per label (Table 2)."""
        _, labelling, _ = self._require_built()
        return labelling.average_label_size()

    def _require_built(self):
        if self.graph is None or self.labelling is None or self.highway is None:
            raise NotBuiltError("call build(graph) before querying")
        return self.graph, self.labelling, self.highway

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "-P" if self.parallel else ""
        return f"HighwayCoverOracle(HL{suffix}, k={self.num_landmarks})"
