"""The highway structure ``H = (R, δH)`` (Definition 3.1).

A highway is a landmark set ``R`` together with the exact pairwise
distances between landmarks. Algorithm 1 obtains these distances for free
(every pruned BFS visits all landmarks at their true BFS level), so the
highway is assembled during labelling construction.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import LandmarkError

_INF_U16 = np.iinfo(np.uint16).max


class Highway:
    """Landmark set plus the dense landmark-to-landmark distance matrix.

    Landmarks keep two identities: their vertex id in the graph and their
    dense *landmark index* ``0..k-1`` used by labels and the matrix.

    Args:
        landmarks: vertex ids of the landmarks, in landmark-index order.
        distances: optional ``(k, k)`` matrix of exact pairwise distances;
            if omitted, the matrix starts unknown (all ``inf`` except the
            diagonal) and is filled by the construction.
    """

    def __init__(
        self, landmarks: Sequence[int], distances: np.ndarray = None
    ) -> None:
        landmark_list = [int(v) for v in landmarks]
        if not landmark_list:
            raise LandmarkError("highway needs at least one landmark")
        if len(set(landmark_list)) != len(landmark_list):
            raise LandmarkError("landmark set contains duplicates")
        if any(v < 0 for v in landmark_list):
            raise LandmarkError("landmark ids must be non-negative")
        self.landmarks = np.asarray(landmark_list, dtype=np.int64)
        k = len(landmark_list)
        self.index_of: Dict[int, int] = {v: i for i, v in enumerate(landmark_list)}
        if distances is None:
            self._matrix = np.full((k, k), np.inf)
            np.fill_diagonal(self._matrix, 0.0)
        else:
            matrix = np.asarray(distances, dtype=float)
            if matrix.shape != (k, k):
                raise LandmarkError(
                    f"distance matrix must be ({k}, {k}), got {matrix.shape}"
                )
            if not np.allclose(matrix, matrix.T, equal_nan=True):
                raise LandmarkError("highway distance matrix must be symmetric")
            if (np.diag(matrix) != 0).any():
                raise LandmarkError("highway diagonal must be zero")
            self._matrix = matrix

    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    @property
    def matrix(self) -> np.ndarray:
        """The ``(k, k)`` distance matrix ``δH`` (read as float, inf = unknown)."""
        return self._matrix

    def is_landmark(self, vertex: int) -> bool:
        return int(vertex) in self.index_of

    def landmark_mask(self, num_vertices: int) -> np.ndarray:
        """Boolean mask of length ``num_vertices`` marking landmarks."""
        mask = np.zeros(num_vertices, dtype=bool)
        valid = self.landmarks[self.landmarks < num_vertices]
        if len(valid) != len(self.landmarks):
            raise LandmarkError("landmark id exceeds graph size")
        mask[self.landmarks] = True
        return mask

    def distance(self, r1: int, r2: int) -> float:
        """``δH(r1, r2)`` for two landmark *vertex ids*."""
        try:
            i, j = self.index_of[int(r1)], self.index_of[int(r2)]
        except KeyError as exc:
            raise LandmarkError(f"{exc.args[0]} is not a landmark") from exc
        return float(self._matrix[i, j])

    def set_row(self, landmark_vertex: int, row: np.ndarray) -> None:
        """Install one landmark's distances to every landmark (symmetric)."""
        i = self.index_of[int(landmark_vertex)]
        if row.shape != (self.num_landmarks,):
            raise LandmarkError("highway row has wrong length")
        self._matrix[i, :] = row
        self._matrix[:, i] = row

    def size_bytes(self, bytes_per_entry: int = 1) -> int:
        """Highway storage cost; k^2 distance cells (distances < 256)."""
        return self.num_landmarks * self.num_landmarks * bytes_per_entry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Highway(k={self.num_landmarks})"
