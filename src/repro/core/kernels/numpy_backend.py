"""The ``numpy`` reference backend: the library's original vectorized loops.

This is the code that previously lived inline in ``core/bounds.py`` and
``search/bounded.py``, moved behind the :class:`KernelBackend` interface
verbatim (modulo the reusable ``side`` workspace replacing the per-call
allocation). It runs everywhere numpy does and is the conformance
reference every compiled backend is asserted byte-identical against.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.kernels.interface import KernelBackend, LabelState, Workspace
from repro.graphs.csr import frontier_neighbors


class NumpyKernel(KernelBackend):
    """Vectorized numpy implementation (the reference semantics)."""

    name = "numpy"
    compiled = False
    releases_gil = False

    def decode(self, state: LabelState, r_index: int, vertex: int) -> float:
        idx, dist = state.slices(vertex)
        row = state.matrix[r_index]
        return float((row[idx] + dist).min())

    def upper_bound(self, state: LabelState, s: int, t: int) -> float:
        ls_idx, ls_dist = state.slices(s)
        lt_idx, lt_dist = state.slices(t)
        best = _common_landmark_bound(ls_idx, ls_dist, lt_idx, lt_dist)
        # Cross terms through the highway (Equation 4). Lemma 5.1
        # guarantees pairs sharing a landmark never improve on the
        # common-landmark term, but distinct-landmark pairs still can, so
        # evaluate the full cross product — it is a (|L(s)| x |L(t)|)
        # dense expression.
        matrix = state.matrix
        cross = (
            ls_dist[:, None] + matrix[np.ix_(ls_idx, lt_idx)] + lt_dist[None, :]
        )
        return min(best, float(cross.min()))

    def bounded_distance(
        self,
        csr,
        source: int,
        target: int,
        bound: float,
        excluded: Optional[np.ndarray],
        workspace: Workspace,
    ) -> float:
        side = workspace.side
        # Touched-vertex log: the workspace contract is "side all-zero
        # between calls", and resetting only what this search marked is
        # O(visited), not O(n).
        touched = [
            np.asarray([source], dtype=np.int64),
            np.asarray([target], dtype=np.int64),
        ]
        side[source], side[target] = 1, 2
        try:
            frontier_s, frontier_t = touched[0], touched[1]
            visited_s, visited_t = 1, 1  # |Ps|, |Pt| in Algorithm 2
            depth_s = depth_t = 0
            while frontier_s.size and frontier_t.size:
                if visited_s <= visited_t:
                    frontier_s, met, grown = _expand(
                        csr, frontier_s, side, 1, 2, excluded
                    )
                    depth_s += 1
                    visited_s += grown
                    if grown:
                        touched.append(frontier_s)
                else:
                    frontier_t, met, grown = _expand(
                        csr, frontier_t, side, 2, 1, excluded
                    )
                    depth_t += 1
                    visited_t += grown
                    if grown:
                        touched.append(frontier_t)
                if met:
                    # ds + 1 + dt with the increment already applied above.
                    return float(depth_s + depth_t)
                if depth_s + depth_t >= bound:
                    return float(bound)
            # One side exhausted: s and t are disconnected in G[V \ R];
            # the bound (possibly inf) is the only remaining candidate.
            return float(bound) if not math.isinf(bound) else float("inf")
        finally:
            for marked in touched:
                side[marked] = 0

    def multi_target(
        self,
        csr,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        target_group: np.ndarray,
        bounds: np.ndarray,
        excluded: Optional[np.ndarray],
        workspace: Workspace,
        cells_budget: int = 1 << 26,
    ) -> np.ndarray:
        out = np.asarray(bounds, dtype=float).copy()
        num_groups = len(sources)
        chunk = max(1, cells_budget // max(1, n))
        for chunk_start in range(0, num_groups, chunk):
            chunk_end = min(chunk_start + chunk, num_groups)
            in_chunk = (target_group >= chunk_start) & (target_group < chunk_end)
            sel = np.flatnonzero(in_chunk)
            if sel.size:
                out[sel] = _stacked_search_chunk(
                    csr,
                    n,
                    sources[chunk_start:chunk_end],
                    targets[sel],
                    target_group[sel] - chunk_start,
                    out[sel],
                    excluded,
                )
        return out


def _common_landmark_bound(
    ls_idx: np.ndarray, ls_dist: np.ndarray, lt_idx: np.ndarray, lt_dist: np.ndarray
) -> float:
    """min over landmarks in both labels of ``δL(r,s) + δL(r,t)`` (Lemma 5.1)."""
    common, s_pos, t_pos = np.intersect1d(
        ls_idx, lt_idx, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        return float("inf")
    return float((ls_dist[s_pos] + lt_dist[t_pos]).min())


def _expand(csr, frontier, side, own, other, excluded):
    """Advance one wave by a level.

    Returns ``(new_frontier, met_other_side, vertices_added)``.
    """
    neighbors = frontier_neighbors(csr, frontier)
    if excluded is not None and neighbors.size:
        neighbors = neighbors[~excluded[neighbors]]
    if neighbors.size == 0:
        return np.empty(0, dtype=np.int64), False, 0
    if (side[neighbors] == other).any():
        return frontier, True, 0
    fresh = neighbors[side[neighbors] == 0]
    if fresh.size == 0:
        return np.empty(0, dtype=np.int64), False, 0
    new_frontier = np.unique(fresh).astype(np.int64)
    side[new_frontier] = own
    return new_frontier, False, int(new_frontier.size)


def _stacked_search_chunk(
    csr,
    n: int,
    sources: np.ndarray,
    t_vertex: np.ndarray,
    t_group: np.ndarray,
    t_bound: np.ndarray,
    excluded: Optional[np.ndarray],
) -> np.ndarray:
    """Advance one chunk of groups in lock step; see the caller for terms.

    Two pruning rules keep the stacked wave small:

    * **Last-level inversion.** A target whose bound is ``level + 2`` can
      only improve by being reached at ``level + 1`` — and that happens
      iff the (unvisited) target has a neighbor in the current wave. So
      instead of expanding the wave one more (exponentially large) level,
      the target's own O(degree) neighborhood is checked against the
      visited bitmap. Since BFS waves grow with depth, this removes the
      single most expensive level of every group's search.
    * **Group retirement.** After the check, a group keeps expanding only
      while some unsettled target's bound exceeds ``level + 2``; retired
      groups' frontier entries are dropped wholesale.
    """
    indptr, indices = csr.indptr, csr.indices
    num_groups = len(sources)
    result = t_bound.copy()
    settled = np.zeros(t_vertex.size, dtype=bool)

    # Sorted flat target keys enable hit detection by binary search.
    t_key = t_group * n + t_vertex
    t_order = np.argsort(t_key)
    sorted_keys = t_key[t_order]

    visited = np.zeros(num_groups * n, dtype=bool)
    flags = np.zeros(num_groups * n, dtype=bool)
    frontier_keys = np.arange(num_groups, dtype=np.int64) * n + sources
    visited[frontier_keys] = True
    level = 0
    while frontier_keys.size:
        # Last-level inversion: settle bound == level + 2 targets by
        # scanning their own neighborhoods (an unvisited target with a
        # visited neighbor is at distance exactly level + 1, because a
        # neighbor visited earlier would have claimed it already).
        check = np.flatnonzero(
            ~settled & (t_bound > level + 1) & (t_bound <= level + 2)
        )
        if check.size:
            check = check[~visited[t_group[check] * n + t_vertex[check]]]
        if check.size:
            reached = _targets_with_visited_neighbor(
                indptr, indices, t_vertex[check], t_group[check] * n, visited
            )
            result[check[reached]] = float(level + 1)
        settled[~settled & (t_bound <= level + 2)] = True

        # A group profits from the wave only while some unsettled
        # target's bound exceeds level + 2 (closer bounds are handled by
        # the check above); drop retired groups' frontier entries.
        if not (~settled).any():
            break
        group_active = np.zeros(num_groups, dtype=bool)
        group_active[t_group[~settled]] = True
        frontier_group = frontier_keys // n
        keep = group_active[frontier_group]
        if not keep.all():
            frontier_keys = frontier_keys[keep]
            frontier_group = frontier_group[keep]
            if frontier_keys.size == 0:
                break
        level += 1

        # Vectorized neighbor gather across every group's frontier.
        frontier_vertex = frontier_keys - frontier_group * n
        starts = indptr[frontier_vertex]
        ends = indptr[frontier_vertex + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        cumulative = np.cumsum(counts)
        gather = np.repeat(ends - cumulative, counts) + np.arange(
            total, dtype=np.int64
        )
        neighbor_vertex = indices[gather].astype(np.int64)
        neighbor_group = np.repeat(frontier_group, counts)
        if excluded is not None:
            alive = ~excluded[neighbor_vertex]
            neighbor_vertex = neighbor_vertex[alive]
            neighbor_group = neighbor_group[alive]
        neighbor_keys = neighbor_group * n + neighbor_vertex
        neighbor_keys = neighbor_keys[~visited[neighbor_keys]]
        if neighbor_keys.size == 0:
            break
        # Scatter-dedupe into the flags bitmap (cheaper than sorting).
        flags[neighbor_keys] = True
        frontier_keys = np.flatnonzero(flags)
        flags[frontier_keys] = False
        visited[frontier_keys] = True

        # Which (group, target) queries were just reached?
        pos = np.searchsorted(sorted_keys, frontier_keys)
        pos[pos == sorted_keys.size] = 0
        hit = sorted_keys[pos] == frontier_keys
        hit_targets = t_order[pos[hit]]
        if hit_targets.size:
            result[hit_targets] = np.minimum(result[hit_targets], float(level))
            settled[hit_targets] = True
    return result


def _targets_with_visited_neighbor(
    indptr: np.ndarray,
    indices: np.ndarray,
    vertices: np.ndarray,
    key_base: np.ndarray,
    visited: np.ndarray,
) -> np.ndarray:
    """Positions in ``vertices`` having >= 1 visited neighbor (per group).

    ``key_base[i] = group_i * n`` offsets vertex ids into the flat
    per-group ``visited`` bitmap. Excluded vertices never enter
    ``visited``, so no separate exclusion filter is needed.
    """
    starts = indptr[vertices]
    ends = indptr[vertices + 1]
    counts = ends - starts
    total = int(counts.sum())
    reached = np.zeros(len(vertices), dtype=bool)
    if total == 0:
        return np.flatnonzero(reached)
    cumulative = np.cumsum(counts)
    gather = np.repeat(ends - cumulative, counts) + np.arange(total, dtype=np.int64)
    neighbor_keys = np.repeat(key_base, counts) + indices[gather]
    owner = np.repeat(np.arange(len(vertices)), counts)
    reached[owner[visited[neighbor_keys]]] = True
    return np.flatnonzero(reached)
