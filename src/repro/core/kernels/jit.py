"""The JIT backends: ``numba`` (compiled) and ``pyloop`` (its twin).

Both run the scalar algorithms of :mod:`repro.core.kernels.loops` — the
``numba`` backend through ``numba.njit(nogil=True)`` dispatchers, the
``pyloop`` backend as plain interpreted Python. ``pyloop`` is hidden
from auto-detection (it is far slower than the numpy reference); it
exists so the exact code numba compiles stays testable byte-for-byte on
machines without numba installed.

numba is optional everywhere: when the import fails, :data:`HAVE_NUMBA`
is False, auto-detection skips the backend, and an explicit
``kernel="numba"`` raises
:class:`~repro.errors.KernelUnavailableError`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.kernels import loops
from repro.core.kernels.interface import KernelBackend, LabelState, Workspace
from repro.errors import KernelUnavailableError

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

#: Stand-in passed to the loop kernels when no vertices are excluded
#: (keeps the argument type stable for numba's dispatcher).
_NO_MASK = np.zeros(1, dtype=bool)


class _LoopKernelBase(KernelBackend):
    """Shared glue turning the scalar loop functions into a backend.

    Subclasses populate ``_decode`` / ``_upper_bound`` / ``_bounded`` /
    ``_multi_target`` with either the plain functions or their njit'ed
    dispatchers.
    """

    def decode(self, state: LabelState, r_index: int, vertex: int) -> float:
        ids, dists = state.slices(vertex)
        return float(self._decode(state.matrix[r_index], ids, dists))

    def upper_bound(self, state: LabelState, s: int, t: int) -> float:
        s_ids, s_dists = state.slices(s)
        t_ids, t_dists = state.slices(t)
        return float(
            self._upper_bound(s_ids, s_dists, t_ids, t_dists, state.matrix)
        )

    def bounded_distance(
        self,
        csr,
        source: int,
        target: int,
        bound: float,
        excluded: Optional[np.ndarray],
        workspace: Workspace,
    ) -> float:
        return float(
            self._bounded(
                csr.indptr,
                csr.indices,
                int(source),
                int(target),
                float(bound),
                _NO_MASK if excluded is None else excluded,
                excluded is not None,
                workspace.side,
                workspace.queue_a,
                workspace.queue_b,
            )
        )

    def multi_target(
        self,
        csr,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        target_group: np.ndarray,
        bounds: np.ndarray,
        excluded: Optional[np.ndarray],
        workspace: Workspace,
        cells_budget: int = 1 << 26,
    ) -> np.ndarray:
        # Sort targets by (group, vertex): the kernel settles a visit by
        # binary search within its group's contiguous slice.
        order = np.lexsort((targets, target_group))
        t_vertex = np.ascontiguousarray(targets[order], dtype=np.int64)
        t_bound = np.ascontiguousarray(bounds[order], dtype=np.float64)
        num_groups = len(sources)
        gstart = np.searchsorted(
            target_group[order], np.arange(num_groups + 1, dtype=np.int64)
        ).astype(np.int64)
        out_sorted = t_bound.copy()
        self._multi_target(
            csr.indptr,
            csr.indices,
            int(n),
            np.ascontiguousarray(sources, dtype=np.int64),
            gstart,
            t_vertex,
            t_bound,
            out_sorted,
            _NO_MASK if excluded is None else excluded,
            excluded is not None,
            workspace.levels,
            workspace.queue_a,
        )
        out = np.empty(len(targets), dtype=float)
        out[order] = out_sorted
        return out


class PyLoopKernel(_LoopKernelBase):
    """The scalar algorithms interpreted — the numba backend minus numba."""

    name = "pyloop"
    compiled = False
    releases_gil = False

    _decode = staticmethod(loops.decode_row)
    _upper_bound = staticmethod(loops.upper_bound_cross)
    _bounded = staticmethod(loops.bounded_bfs)
    _multi_target = staticmethod(loops.multi_target_bfs)


class NumbaKernel(_LoopKernelBase):  # pragma: no cover - needs numba installed
    """The scalar algorithms under ``numba.njit(nogil=True)``.

    Dispatchers are created at construction (compilation itself happens
    on the first call of each signature). ``nogil=True`` makes every
    search kernel drop the GIL while running.
    """

    name = "numba"
    compiled = True
    releases_gil = True

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise KernelUnavailableError(
                "numba kernel backend requested but numba is not installed"
            )
        jit = numba.njit(cache=False, nogil=True)
        self._decode = jit(loops.decode_row)
        self._upper_bound = jit(loops.upper_bound_cross)
        self._bounded = jit(loops.bounded_bfs)
        self._multi_target = jit(loops.multi_target_bfs)
