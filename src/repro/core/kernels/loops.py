"""Scalar loop kernels: the algorithms the JIT backends compile.

Plain-Python, numba-``njit``-able functions mirroring the C kernels of
:mod:`repro.core.kernels.cext` line for line. They serve two backends:

* ``pyloop`` runs them as-is (slow — it exists so the *algorithm* the
  JIT compiles is testable byte-for-byte on machines without numba);
* ``numba`` wraps each in ``numba.njit(nogil=True, cache=False)``.

All functions operate on canonical arrays (int64 ids/offsets, float64
distances/matrix, int64 ``indptr``, int32 ``indices``) and scalar Python
numbers, use no numpy API beyond indexing, and touch workspace buffers
(``side``, queues, ``levels``) under the reset-what-you-marked contract
of :class:`repro.core.kernels.interface.Workspace`.
"""

from __future__ import annotations

import numpy as np

INF = float(np.inf)


def decode_row(row, ids, dists):
    """min over label entries of ``row[id] + dist`` (landmark-to-vertex)."""
    best = INF
    for i in range(ids.shape[0]):
        value = row[ids[i]] + dists[i]
        if value < best:
            best = value
    return best


def upper_bound_cross(s_ids, s_dists, t_ids, t_dists, matrix):
    """Equation 4's full cross-product minimum.

    The common-landmark term of Lemma 5.1 needs no separate pass: a
    shared landmark ``r`` contributes ``d_s + δH(r, r) + d_t`` with a
    zero diagonal, which *is* the two-hop term.
    """
    best = INF
    for i in range(s_ids.shape[0]):
        ds = s_dists[i]
        row = matrix[s_ids[i]]
        for j in range(t_ids.shape[0]):
            value = ds + row[t_ids[j]] + t_dists[j]
            if value < best:
                best = value
    return best


def bounded_bfs(
    indptr,
    indices,
    source,
    target,
    bound,
    excluded,
    has_excluded,
    side,
    queue_s,
    queue_t,
):
    """Algorithm 2: bounded bidirectional BFS over ``G[V \\ R]``.

    Exactly the reference semantics of the numpy backend: alternate by
    total visited counts, stop on meet (``depth_s + depth_t`` after the
    increment) or when the depths reach ``bound``; an exhausted side
    leaves the bound (possibly inf) as the answer. ``side`` entries are
    reset via the queues before returning — both queues hold every
    vertex this search marked.
    """
    side[source] = 1
    side[target] = 2
    queue_s[0] = source
    queue_t[0] = target
    s_lo, s_hi, s_tail = 0, 1, 1
    t_lo, t_hi, t_tail = 0, 1, 1
    visited_s, visited_t = 1, 1
    depth_s, depth_t = 0, 0
    result = bound
    done = False

    while not done and s_hi > s_lo and t_hi > t_lo:
        expand_s = visited_s <= visited_t
        if expand_s:
            queue, lo, hi = queue_s, s_lo, s_hi
            own, other = 1, 2
        else:
            queue, lo, hi = queue_t, t_lo, t_hi
            own, other = 2, 1
        tail = hi
        met = False
        i = lo
        while i < hi and not met:
            v = queue[i]
            for e in range(indptr[v], indptr[v + 1]):
                w = indices[e]
                if has_excluded and excluded[w]:
                    continue
                mark = side[w]
                if mark == other:
                    met = True
                    break
                if mark == 0:
                    side[w] = own
                    queue[tail] = w
                    tail += 1
            i += 1
        if expand_s:
            depth_s += 1
            visited_s += tail - hi
            s_lo, s_hi, s_tail = hi, tail, tail
        else:
            depth_t += 1
            visited_t += tail - hi
            t_lo, t_hi, t_tail = hi, tail, tail
        if met:
            result = float(depth_s + depth_t)
            done = True
        elif depth_s + depth_t >= bound:
            result = bound
            done = True

    for i in range(s_tail):
        side[queue_s[i]] = 0
    for i in range(t_tail):
        side[queue_t[i]] = 0
    return result


def multi_target_bfs(
    indptr,
    indices,
    n,
    sources,
    gstart,
    t_vertex,
    t_bound,
    out,
    excluded,
    has_excluded,
    levels,
    queue,
):
    """Grouped bounded BFS: one level-synchronous wave per source group.

    ``t_vertex`` is sorted within each group's ``gstart`` slice, so a
    freshly visited vertex settles its query by binary search. The wave
    stops at the group's deepest useful level (``max(bound) - 1``; an
    infinite bound caps at ``n``), when the frontier dies, or when every
    target of the group has been seen. Unreached targets keep their
    bound — exactly ``min(d_sparse, bound)``, since a target missed
    within the level cap has ``d_sparse >= bound``.
    """
    for g in range(sources.shape[0]):
        t0, t1 = gstart[g], gstart[g + 1]
        if t1 == t0:
            continue
        gmax = 0.0
        for p in range(t0, t1):
            cap = float(n) if t_bound[p] == INF else t_bound[p] - 1.0
            if cap > gmax:
                gmax = cap
        if gmax < 1.0:
            continue
        if gmax > float(n):
            gmax = float(n)
        max_level = int(gmax)

        src = sources[g]
        levels[src] = 0
        queue[0] = src
        lo, hi, tail = 0, 1, 1
        found = 0
        total = t1 - t0
        level = 1
        while level <= max_level and hi > lo and found < total:
            for i in range(lo, hi):
                v = queue[i]
                for e in range(indptr[v], indptr[v + 1]):
                    w = indices[e]
                    if has_excluded and excluded[w]:
                        continue
                    if levels[w] != -1:
                        continue
                    levels[w] = level
                    queue[tail] = w
                    tail += 1
                    # Binary search w in the group's sorted target slice.
                    a, b = t0, t1
                    while a < b:
                        mid = (a + b) // 2
                        if t_vertex[mid] < w:
                            a = mid + 1
                        else:
                            b = mid
                    if a < t1 and t_vertex[a] == w:
                        found += 1
                        if float(level) < out[a]:
                            out[a] = float(level)
            lo, hi = hi, tail
            level += 1

        for i in range(tail):
            levels[queue[i]] = -1
    return out
