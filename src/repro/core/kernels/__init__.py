"""Swappable kernels for the three query hot loops.

The online query path of the paper's HL method spends essentially all
its time in three loops: the highway-row distance decode
(landmark-to-vertex queries), the label-intersection upper bound
(Equation 4), and the bounded-BFS frontier expansion (Algorithm 2, plus
its stacked multi-target form in the batch engine). This package hosts
those loops as interchangeable backends behind one interface
(:class:`~repro.core.kernels.interface.KernelBackend`):

========  ========  ============  =======================================
name      compiled  releases GIL  availability
========  ========  ============  =======================================
numpy     no        no            always (the reference semantics)
numba     yes       yes           when ``import numba`` succeeds
cext      yes       yes           when a C compiler (cc/gcc/clang) exists
pyloop    no        no            always (testing twin of ``numba``;
                                  hidden from auto-detection)
========  ========  ============  =======================================

Selection, in priority order:

1. an explicit ``kernel=`` argument (``make_oracle(..., kernel="numba")``,
   ``HighwayCoverOracle(kernel=...)``, or any of the search wrappers) —
   unknown names raise :class:`~repro.errors.KernelError`, unavailable
   backends raise :class:`~repro.errors.KernelUnavailableError`;
2. the ``REPRO_KERNEL`` environment variable (same strictness — setting
   it *is* an explicit request);
3. auto-detection: ``numba`` if importable, else ``cext`` if a compiler
   is present, else ``numpy``. Auto-detection never raises; a backend
   that fails to initialize is skipped silently.

Every backend is asserted byte-identical to ``numpy`` by the conformance
gauntlet (``tests/test_kernels.py``) — swapping kernels is a pure
performance decision.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from repro.core.kernels.interface import (
    KernelBackend,
    LabelState,
    Workspace,
    get_label_state,
    get_workspace,
)
from repro.errors import KernelError, KernelUnavailableError

__all__ = [
    "KernelBackend",
    "LabelState",
    "Workspace",
    "available_kernels",
    "get_kernel",
    "get_label_state",
    "get_workspace",
    "resolve_kernel",
]

#: Environment variable naming the default backend (an explicit request).
ENV_VAR = "REPRO_KERNEL"

#: Auto-detection preference order (``pyloop`` deliberately absent).
AUTO_ORDER = ("numba", "cext", "numpy")

#: Registered backend names, in documentation order.
KERNEL_NAMES = ("numpy", "numba", "cext", "pyloop")

_instances: Dict[str, KernelBackend] = {}
_auto_default: Optional[KernelBackend] = None


def _construct(name: str) -> KernelBackend:
    if name == "numpy":
        from repro.core.kernels.numpy_backend import NumpyKernel

        return NumpyKernel()
    if name == "pyloop":
        from repro.core.kernels.jit import PyLoopKernel

        return PyLoopKernel()
    if name == "numba":
        from repro.core.kernels.jit import NumbaKernel

        return NumbaKernel()
    if name == "cext":
        from repro.core.kernels.cext import CExtKernel

        return CExtKernel()
    raise KernelError(
        f"unknown kernel backend {name!r}; known: {sorted(KERNEL_NAMES)}"
    )


def get_kernel(name: Optional[str] = None) -> KernelBackend:
    """The backend named ``name`` (a cached singleton per process).

    ``None`` consults ``REPRO_KERNEL``, then auto-detects. Explicit
    names (argument or environment) raise :class:`KernelError` when
    unknown and :class:`KernelUnavailableError` when the backend cannot
    initialize here; auto-detection silently falls back along
    ``numba -> cext -> numpy``.
    """
    if name is None:
        env = os.environ.get(ENV_VAR)
        if env:
            name = env
        else:
            return _auto_detect()
    key = name.strip().lower()
    if key not in KERNEL_NAMES:
        raise KernelError(
            f"unknown kernel backend {name!r}; known: {sorted(KERNEL_NAMES)}"
        )
    backend = _instances.get(key)
    if backend is None:
        backend = _instances[key] = _construct(key)
    return backend


def _auto_detect() -> KernelBackend:
    global _auto_default
    if _auto_default is None:
        for candidate in AUTO_ORDER:
            try:
                _auto_default = get_kernel(candidate)
                break
            except KernelUnavailableError:
                continue
        assert _auto_default is not None  # numpy always constructs
    return _auto_default


def resolve_kernel(
    kernel: Union[KernelBackend, str, None],
) -> KernelBackend:
    """Coerce a ``kernel=`` argument (backend, name, or None) to a backend."""
    if isinstance(kernel, KernelBackend):
        return kernel
    return get_kernel(kernel)


def available_kernels() -> List[str]:
    """Names of the backends that can initialize in this environment."""
    names = []
    for name in KERNEL_NAMES:
        try:
            get_kernel(name)
        except KernelError:
            continue
        names.append(name)
    return names
