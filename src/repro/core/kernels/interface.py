"""Shared contracts of the kernel layer: backend ABC, state, workspace.

Three things every backend agrees on:

* :class:`KernelBackend` — the four hot-loop operations (highway-row
  decode, label-intersection upper bound, bounded bidirectional BFS,
  grouped multi-target BFS) plus metadata (``compiled``,
  ``releases_gil``) the docs and tests introspect.
* :class:`LabelState` — the canonical, backend-agnostic form of a built
  labelling: int64 offsets/ids, float64 distances, C-contiguous float64
  highway matrix. Built once per frozen labelling and cached in a
  ``WeakKeyDictionary`` keyed on the frozen vertex-major view — every
  label-store mutation (the dynamic repair splice) invalidates that view,
  so a stale state can never be consulted.
* :class:`Workspace` — reusable per-thread scratch buffers for the
  search kernels (the ``side`` bitmap, two BFS queues, a level array),
  allocated once through the patchable :func:`scratch_alloc` hook so the
  test suite can count O(n) allocations and assert that steady-state
  point queries make none.

Workspace invariants between calls: ``side`` is all-zero and ``levels``
is all ``-1``; every kernel resets exactly the entries it touched before
returning (including on the early-exit paths).
"""

from __future__ import annotations

import threading
import weakref
from typing import Optional

import numpy as np

__all__ = [
    "KernelBackend",
    "LabelState",
    "Workspace",
    "get_label_state",
    "get_workspace",
    "scratch_alloc",
]


def scratch_alloc(n: int, dtype) -> np.ndarray:
    """Allocate one zeroed O(n) scratch buffer.

    Every O(n) allocation the kernel layer makes on the point-query path
    funnels through this hook, so tests can monkeypatch it with a
    counting shim and assert the steady state allocates nothing.
    """
    return np.zeros(n, dtype=dtype)


class Workspace:
    """Reusable scratch buffers for the search kernels, sized to one graph.

    Attributes:
        n: number of vertices the buffers are sized for.
        side: ``int8[n]`` visit bitmap of the bidirectional search
            (0 = unvisited, 1 = source wave, 2 = target wave); all-zero
            between calls.
        queue_a, queue_b: ``int64[n]`` BFS queues (a vertex enters a
            queue at most once per search, so ``n`` slots always fit).
        levels: ``int32[n]`` BFS level per vertex for the multi-target
            kernel; all ``-1`` between calls.
    """

    __slots__ = (
        "n", "side", "queue_a", "queue_b", "levels",
        "side_addr", "queue_a_addr", "queue_b_addr", "levels_addr",
    )

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self.side = scratch_alloc(self.n, np.int8)
        self.queue_a = scratch_alloc(self.n, np.int64)
        self.queue_b = scratch_alloc(self.n, np.int64)
        self.levels = scratch_alloc(self.n, np.int32)
        self.levels.fill(-1)
        # Raw base addresses, precomputed once: ``ndarray.ctypes`` builds a
        # fresh accessor object per use, which native backends would
        # otherwise pay on every point query. Safe to cache — the buffers
        # live exactly as long as the workspace and are never reallocated.
        self.side_addr = self.side.ctypes.data
        self.queue_a_addr = self.queue_a.ctypes.data
        self.queue_b_addr = self.queue_b.ctypes.data
        self.levels_addr = self.levels.ctypes.data


_tls = threading.local()


def get_workspace(n: int) -> Workspace:
    """The calling thread's :class:`Workspace` for an ``n``-vertex graph.

    One workspace per (thread, graph size) — repeated point queries on
    the same graph reuse the same buffers, which is what turns the
    per-query O(n) ``side`` allocation into a one-time cost.
    """
    spaces = getattr(_tls, "spaces", None)
    if spaces is None:
        spaces = _tls.spaces = {}
    ws = spaces.get(n)
    if ws is None:
        ws = spaces[n] = Workspace(n)
    return ws


class LabelState:
    """A built labelling + highway in the canonical kernel layout.

    Attributes:
        offsets: ``int64[n + 1]`` CSR row pointers into the label arrays.
        ids: ``int64[total]`` landmark *indices* per label entry.
        dists: ``float64[total]`` label distances (float64 keeps every
            backend's arithmetic bit-identical; graph distances are small
            integers, exactly representable).
        matrix: ``float64[k, k]`` C-contiguous highway matrix ``δH``.
    """

    __slots__ = (
        "offsets", "ids", "dists", "matrix", "_matrix_source",
        "ids_addr", "dists_addr", "matrix_addr",
    )

    def __init__(self, labelling, highway) -> None:
        self.offsets = np.ascontiguousarray(labelling.offsets, dtype=np.int64)
        self.ids = np.ascontiguousarray(
            labelling.landmark_indices, dtype=np.int64
        )
        self.dists = np.ascontiguousarray(labelling.distances, dtype=np.float64)
        self.matrix = np.ascontiguousarray(highway.matrix, dtype=np.float64)
        self._matrix_source = highway.matrix
        # Raw base addresses for native backends (see Workspace): the
        # arrays above are owned by this state object, so the addresses
        # stay valid for its whole lifetime.
        self.ids_addr = self.ids.ctypes.data
        self.dists_addr = self.dists.ctypes.data
        self.matrix_addr = self.matrix.ctypes.data

    def count(self, vertex: int) -> int:
        """Number of label entries of ``vertex`` (0 = landmark-unreachable)."""
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def slices(self, vertex: int):
        """``(ids, dists)`` views of ``vertex``'s label entries."""
        lo = int(self.offsets[vertex])
        hi = int(self.offsets[vertex + 1])
        return self.ids[lo:hi], self.dists[lo:hi]


#: Frozen vertex-major labelling -> LabelState. Keyed by identity (the
#: label stores hash by id): a dynamic repair splices the landmark-major
#: store and drops its cached frozen view, so the next query freezes a
#: *new* object and builds a fresh state — in-place highway mutations
#: always ride along with a label splice (see ``core/dynamic.py``).
_STATE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def get_label_state(labelling, highway) -> LabelState:
    """The (cached) canonical :class:`LabelState` for a built oracle."""
    frozen = labelling.as_vertex_major()
    state = _STATE_CACHE.get(frozen)
    if state is None or state._matrix_source is not highway.matrix:
        state = LabelState(frozen, highway)
        _STATE_CACHE[frozen] = state
    return state


class KernelBackend:
    """One implementation of the three query hot loops.

    Subclasses implement the four operations below over the canonical
    :class:`LabelState` / CSR arrays. Callers (the oracle, the batch
    engine, the public search wrappers) own all validation and
    short-circuit semantics; kernels only ever see well-formed inputs:
    distinct non-excluded endpoints, positive bounds, canonical dtypes.

    Attributes:
        name: registry name (``"numpy"``, ``"numba"``, ``"cext"``,
            ``"pyloop"``).
        compiled: True when the hot loops run as machine code.
        releases_gil: True when the search kernels drop the GIL while
            running (ctypes foreign calls; ``numba.njit(nogil=True)``),
            which is what lets thread-per-shard serving scale past one
            core.
    """

    name: str = "abstract"
    compiled: bool = False
    releases_gil: bool = False

    def decode(self, state: LabelState, r_index: int, vertex: int) -> float:
        """``min over (rj, d) in L(vertex) of δH(r, rj) + d`` — the exact
        landmark-to-vertex distance (Lemma 3.7). ``vertex`` has at least
        one label entry."""
        raise NotImplementedError

    def upper_bound(self, state: LabelState, s: int, t: int) -> float:
        """Equation 4's ``d⊤(s, t)`` over the label cross product.

        Both endpoints have at least one label entry. The common-landmark
        term of Lemma 5.1 is subsumed by the cross product because the
        highway diagonal is zero.
        """
        raise NotImplementedError

    def bounded_distance(
        self,
        csr,
        source: int,
        target: int,
        bound: float,
        excluded: Optional[np.ndarray],
        workspace: Workspace,
    ) -> float:
        """Algorithm 2: ``min(d_{G[V\\R]}(s, t), bound)`` on the CSR graph.

        ``source != target``, neither excluded, ``bound > 1`` (or inf).
        """
        raise NotImplementedError

    def multi_target(
        self,
        csr,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        target_group: np.ndarray,
        bounds: np.ndarray,
        excluded: Optional[np.ndarray],
        workspace: Workspace,
        cells_budget: int = 1 << 26,
    ) -> np.ndarray:
        """Grouped bounded BFS: ``min(d_{G[V\\R]}(src_g, t), bound_t)``
        per ``(group, target)`` query, aligned with ``targets``.

        ``(group, target)`` pairs are distinct, no target equals its
        group's source, no endpoint is excluded. ``cells_budget`` caps
        the flat visited bitmap of the vectorized backend; compiled
        backends (O(n) scratch) ignore it.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
