"""The ``cext`` backend: C kernels compiled at first use, called via ctypes.

No build step and no dependencies beyond a system C compiler: the first
request for this backend writes the embedded source below to a cache
directory keyed by its SHA-256, compiles it with ``cc -O3 -fPIC
-shared``, atomically publishes the shared object (``os.replace``), and
loads it with :class:`ctypes.CDLL`. Later processes (and later runs) hit
the cache. Machines without a compiler simply don't offer this backend —
auto-detection falls through to ``numpy``, and an explicit
``kernel="cext"`` raises :class:`~repro.errors.KernelUnavailableError`
with the compiler diagnostic.

ctypes releases the GIL for the duration of every foreign call, so the
search kernels run truly concurrently under threaded serving — the GIL
guarantee the ROADMAP's thread-per-shard item needs.

The C functions mirror :mod:`repro.core.kernels.loops` statement for
statement; the conformance gauntlet asserts all backends byte-identical.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.kernels.interface import KernelBackend, LabelState, Workspace
from repro.errors import KernelUnavailableError

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

double rk_decode(const double *row, const int64_t *ids, const double *dists,
                 int64_t count) {
    double best = INFINITY;
    for (int64_t i = 0; i < count; i++) {
        double value = row[ids[i]] + dists[i];
        if (value < best) best = value;
    }
    return best;
}

double rk_upper_bound(const int64_t *s_ids, const double *s_dists, int64_t ns,
                      const int64_t *t_ids, const double *t_dists, int64_t nt,
                      const double *matrix, int64_t k) {
    /* Equation 4; the zero highway diagonal subsumes Lemma 5.1's
     * common-landmark term. */
    double best = INFINITY;
    for (int64_t i = 0; i < ns; i++) {
        const double ds = s_dists[i];
        const double *row = matrix + s_ids[i] * k;
        for (int64_t j = 0; j < nt; j++) {
            double value = ds + row[t_ids[j]] + t_dists[j];
            if (value < best) best = value;
        }
    }
    return best;
}

double rk_bounded_bfs(const int64_t *indptr, const int32_t *indices,
                      int64_t source, int64_t target, double bound,
                      const uint8_t *excluded,
                      int8_t *side, int64_t *queue_s, int64_t *queue_t) {
    int64_t s_lo = 0, s_hi = 1, s_tail = 1;
    int64_t t_lo = 0, t_hi = 1, t_tail = 1;
    int64_t visited_s = 1, visited_t = 1;
    int64_t depth_s = 0, depth_t = 0;
    double result = bound;
    int done = 0;

    side[source] = 1;
    side[target] = 2;
    queue_s[0] = source;
    queue_t[0] = target;

    while (!done && s_hi > s_lo && t_hi > t_lo) {
        int expand_s = visited_s <= visited_t;
        int64_t *queue = expand_s ? queue_s : queue_t;
        int64_t lo = expand_s ? s_lo : t_lo;
        int64_t hi = expand_s ? s_hi : t_hi;
        int8_t own = expand_s ? 1 : 2;
        int8_t other = expand_s ? 2 : 1;
        int64_t tail = hi;
        int met = 0;

        for (int64_t i = lo; i < hi && !met; i++) {
            int64_t v = queue[i];
            int64_t end = indptr[v + 1];
            for (int64_t e = indptr[v]; e < end; e++) {
                int64_t w = indices[e];
                if (excluded && excluded[w]) continue;
                int8_t mark = side[w];
                if (mark == other) { met = 1; break; }
                if (mark == 0) { side[w] = own; queue[tail++] = w; }
            }
        }
        if (expand_s) {
            depth_s += 1; visited_s += tail - hi;
            s_lo = hi; s_hi = tail; s_tail = tail;
        } else {
            depth_t += 1; visited_t += tail - hi;
            t_lo = hi; t_hi = tail; t_tail = tail;
        }
        if (met) {
            result = (double)(depth_s + depth_t);
            done = 1;
        } else if ((double)(depth_s + depth_t) >= bound) {
            result = bound;
            done = 1;
        }
    }
    for (int64_t i = 0; i < s_tail; i++) side[queue_s[i]] = 0;
    for (int64_t i = 0; i < t_tail; i++) side[queue_t[i]] = 0;
    return result;
}

void rk_multi_target(const int64_t *indptr, const int32_t *indices, int64_t n,
                     const int64_t *sources, int64_t num_groups,
                     const int64_t *gstart,
                     const int64_t *t_vertex, const double *t_bound,
                     double *out,
                     const uint8_t *excluded,
                     int32_t *levels, int64_t *queue) {
    for (int64_t g = 0; g < num_groups; g++) {
        int64_t t0 = gstart[g], t1 = gstart[g + 1];
        if (t1 == t0) continue;
        double gmax = 0.0;
        for (int64_t p = t0; p < t1; p++) {
            double cap = isinf(t_bound[p]) ? (double)n : t_bound[p] - 1.0;
            if (cap > gmax) gmax = cap;
        }
        if (gmax < 1.0) continue;
        if (gmax > (double)n) gmax = (double)n;
        int64_t max_level = (int64_t)gmax;

        int64_t src = sources[g];
        levels[src] = 0;
        queue[0] = src;
        int64_t lo = 0, hi = 1, tail = 1;
        int64_t found = 0, total = t1 - t0;
        for (int64_t level = 1;
             level <= max_level && hi > lo && found < total; level++) {
            for (int64_t i = lo; i < hi; i++) {
                int64_t v = queue[i];
                int64_t end = indptr[v + 1];
                for (int64_t e = indptr[v]; e < end; e++) {
                    int64_t w = indices[e];
                    if (excluded && excluded[w]) continue;
                    if (levels[w] != -1) continue;
                    levels[w] = (int32_t)level;
                    queue[tail++] = w;
                    int64_t a = t0, b = t1;
                    while (a < b) {
                        int64_t mid = (a + b) / 2;
                        if (t_vertex[mid] < w) a = mid + 1; else b = mid;
                    }
                    if (a < t1 && t_vertex[a] == w && (double)level < out[a]) {
                        out[a] = (double)level;
                    }
                    if (a < t1 && t_vertex[a] == w) found++;
                }
            }
            lo = hi; hi = tail;
        }
        for (int64_t i = 0; i < tail; i++) levels[queue[i]] = -1;
    }
}
"""

_COMPILERS = ("cc", "gcc", "clang")


def _cache_path() -> Path:
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    suffix = "dll" if sys.platform == "win32" else "so"
    return (
        Path(tempfile.gettempdir())
        / f"repro-kernels-{digest}"
        / f"librepro_kernels.{suffix}"
    )


def _find_compiler() -> Optional[str]:
    import shutil

    for name in _COMPILERS:
        path = shutil.which(name)
        if path is not None:
            return path
    return None


def _build_library(target: Path) -> None:
    """Compile the embedded source and atomically publish the .so."""
    compiler = _find_compiler()
    if compiler is None:
        raise KernelUnavailableError(
            "cext kernel backend needs a C compiler (cc/gcc/clang) on PATH"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    source = target.parent / "repro_kernels.c"
    source.write_text(_C_SOURCE)
    scratch = target.parent / f".build-{os.getpid()}{target.suffix}"
    try:
        proc = subprocess.run(
            [compiler, "-O3", "-fPIC", "-shared", "-o", str(scratch), str(source)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise KernelUnavailableError(
                f"cext kernel compilation failed ({compiler}): "
                f"{proc.stderr.strip() or proc.stdout.strip()}"
            )
        os.replace(scratch, target)  # atomic: concurrent builders race safely
    finally:
        if scratch.exists():  # a failed compile leaves no half-written .so
            scratch.unlink()


def _load_library() -> ctypes.CDLL:
    target = _cache_path()
    if not target.exists():
        _build_library(target)
    try:
        lib = ctypes.CDLL(str(target))
    except OSError as exc:  # stale/foreign cache entry: rebuild once
        _build_library(target)
        try:
            lib = ctypes.CDLL(str(target))
        except OSError:
            raise KernelUnavailableError(
                f"cext kernel library failed to load: {exc}"
            ) from exc

    c_double, c_i64, c_ptr = ctypes.c_double, ctypes.c_int64, ctypes.c_void_p
    lib.rk_decode.restype = c_double
    lib.rk_decode.argtypes = [c_ptr, c_ptr, c_ptr, c_i64]
    lib.rk_upper_bound.restype = c_double
    lib.rk_upper_bound.argtypes = [
        c_ptr, c_ptr, c_i64, c_ptr, c_ptr, c_i64, c_ptr, c_i64,
    ]
    lib.rk_bounded_bfs.restype = c_double
    lib.rk_bounded_bfs.argtypes = [
        c_ptr, c_ptr, c_i64, c_i64, c_double, c_ptr, c_ptr, c_ptr, c_ptr,
    ]
    lib.rk_multi_target.restype = None
    lib.rk_multi_target.argtypes = [
        c_ptr, c_ptr, c_i64, c_ptr, c_i64, c_ptr, c_ptr, c_ptr, c_ptr,
        c_ptr, c_ptr, c_ptr,
    ]
    return lib


def _ptr(array: Optional[np.ndarray]):
    return None if array is None else array.ctypes.data


class _GraphMemo:
    """One-entry identity memo for the per-graph ctypes addresses.

    ``ndarray.ctypes`` constructs a fresh accessor object per access;
    on the point-query hot path that glue costs more than the C call it
    feeds. The memo holds a strong reference to the last ``(csr,
    excluded)`` pair it saw, so the cached addresses can never outlive
    their arrays.
    """

    __slots__ = ("csr", "excluded", "indptr", "indices", "excl")

    def __init__(self) -> None:
        self.csr = None

    def addrs(self, csr, excluded: Optional[np.ndarray]):
        if csr is not self.csr or excluded is not self.excluded:
            self.indptr = csr.indptr.ctypes.data
            self.indices = csr.indices.ctypes.data
            self.excl = None if excluded is None else excluded.ctypes.data
            self.csr = csr
            self.excluded = excluded
        return self.indptr, self.indices, self.excl


class CExtKernel(KernelBackend):
    """Machine-code kernels via a runtime-compiled C library.

    Construction compiles (or reuses) the shared object; it raises
    :class:`~repro.errors.KernelUnavailableError` when no compiler is
    available, which the registry's auto-detection treats as "skip".
    """

    name = "cext"
    compiled = True
    #: ctypes drops the GIL around every foreign call.
    releases_gil = True

    def __init__(self) -> None:
        self._lib = _load_library()
        self._memo = _GraphMemo()

    def decode(self, state: LabelState, r_index: int, vertex: int) -> float:
        lo = int(state.offsets[vertex])
        hi = int(state.offsets[vertex + 1])
        k = state.matrix.shape[0]
        return self._lib.rk_decode(
            state.matrix_addr + r_index * k * 8,
            state.ids_addr + lo * 8,
            state.dists_addr + lo * 8,
            hi - lo,
        )

    def upper_bound(self, state: LabelState, s: int, t: int) -> float:
        offsets = state.offsets
        s_lo, s_hi = int(offsets[s]), int(offsets[s + 1])
        t_lo, t_hi = int(offsets[t]), int(offsets[t + 1])
        ids = state.ids_addr
        dists = state.dists_addr
        return self._lib.rk_upper_bound(
            ids + s_lo * 8,
            dists + s_lo * 8,
            s_hi - s_lo,
            ids + t_lo * 8,
            dists + t_lo * 8,
            t_hi - t_lo,
            state.matrix_addr,
            state.matrix.shape[0],
        )

    def bounded_distance(
        self,
        csr,
        source: int,
        target: int,
        bound: float,
        excluded: Optional[np.ndarray],
        workspace: Workspace,
    ) -> float:
        indptr, indices, excl = self._memo.addrs(csr, excluded)
        return self._lib.rk_bounded_bfs(
            indptr,
            indices,
            int(source),
            int(target),
            float(bound),
            excl,
            workspace.side_addr,
            workspace.queue_a_addr,
            workspace.queue_b_addr,
        )

    def multi_target(
        self,
        csr,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        target_group: np.ndarray,
        bounds: np.ndarray,
        excluded: Optional[np.ndarray],
        workspace: Workspace,
        cells_budget: int = 1 << 26,
    ) -> np.ndarray:
        # Sort targets by (group, vertex): the C kernel settles a visit
        # by binary search within its group's contiguous slice.
        order = np.lexsort((targets, target_group))
        t_vertex = np.ascontiguousarray(targets[order], dtype=np.int64)
        t_bound = np.ascontiguousarray(bounds[order].astype(float))
        sorted_groups = target_group[order]
        num_groups = len(sources)
        gstart = np.searchsorted(
            sorted_groups, np.arange(num_groups + 1, dtype=np.int64)
        ).astype(np.int64)
        out_sorted = t_bound.copy()
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        indptr, indices, excl = self._memo.addrs(csr, excluded)
        self._lib.rk_multi_target(
            indptr,
            indices,
            int(n),
            _ptr(sources),
            num_groups,
            _ptr(gstart),
            _ptr(t_vertex),
            _ptr(t_bound),
            _ptr(out_sorted),
            excl,
            workspace.levels_addr,
            workspace.queue_a_addr,
        )
        out = np.empty(len(targets), dtype=float)
        out[order] = out_sorted
        return out
