"""Write-ahead log for dynamic edge updates (the durability layer).

Between two snapshot publishes, every ``insert_edge`` / ``delete_edge``
applied to a :class:`~repro.core.dynamic.DynamicHighwayCoverOracle`
lives only in RAM — a crash would silently lose that churn. This module
closes the gap with the standard write-ahead protocol:

1. **Log before mutate.** The oracle appends the update record to the
   WAL (and, under the default ``fsync="always"`` policy, waits for it
   to reach stable storage) *before* touching its labels, so every
   acknowledged update survives a crash.
2. **Replay on open.** ``repro.api.open_oracle(..., wal=path)`` reopens
   the log, re-applies the recorded churn through the O(affected)
   dynamic repair (:func:`replay_into`), and attaches the log for
   future appends — restart = snapshot + replay.
3. **Truncate on publish.** Once a full snapshot of the repaired state
   is durably on disk (``save_oracle`` is atomic since the same PR —
   temp file, fsync, rename), the log's records are redundant and
   :meth:`WriteAheadLog.truncate` cuts it back to its header.

On-disk format (little-endian, append-only)::

    header   "RPWL" + u32 version (= 1)
    record   u32 payload length | u32 crc32(payload) | payload
    payload  u8 opcode (1 = insert_edge, 2 = delete_edge) | u64 u | u64 v

The length prefix makes a *torn tail* — a record cut short by a crash
mid-append — detectable and distinguishable from corruption: a clean
prefix followed by a partial record is expected crash debris (the
update was never acknowledged) and reopening the log truncates it away,
while a checksum mismatch or an impossible length *inside* the valid
region is real corruption and raises :class:`~repro.errors.WalError`
(``repro fsck`` reports both, see :mod:`repro.core.fsck`).

Replay is **idempotent**: a record whose edge is already present
(insert) or already absent (delete) in the oracle's graph is skipped.
That covers the one ambiguous crash window — after a snapshot publish
became durable but before the log was truncated — where the log's
leading records are already reflected in the snapshot.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, List, Optional, Tuple, Union

from repro.errors import WalError

__all__ = [
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "replay_into",
    "scan_wal",
    "FSYNC_POLICIES",
]

WAL_MAGIC = b"RPWL"
WAL_VERSION = 1
_HEADER_STRUCT = "<I"  # version, after the magic
HEADER_BYTES = 4 + struct.calcsize(_HEADER_STRUCT)  # 8
_PREFIX_STRUCT = "<II"  # payload length, crc32(payload)
_PREFIX_BYTES = struct.calcsize(_PREFIX_STRUCT)  # 8
_PAYLOAD_STRUCT = "<BQQ"  # opcode, u, v
_PAYLOAD_BYTES = struct.calcsize(_PAYLOAD_STRUCT)  # 17

_OP_INSERT = 1
_OP_DELETE = 2
_OPCODES = {"insert_edge": _OP_INSERT, "delete_edge": _OP_DELETE}
_OPNAMES = {code: name for name, code in _OPCODES.items()}

#: Supported durability policies for :class:`WriteAheadLog`:
#: ``"always"`` fsyncs after every append (an acknowledged update is
#: crash-durable — the default), ``"batch"`` flushes to the OS after
#: every append but fsyncs only on :meth:`~WriteAheadLog.sync` /
#: :meth:`~WriteAheadLog.truncate` / :meth:`~WriteAheadLog.close`
#: (a kernel crash can lose the tail, a process crash cannot), and
#: ``"never"`` leaves flushing to the OS entirely (testing / bulk
#: loads).
FSYNC_POLICIES = ("always", "batch", "never")

PathLike = Union[str, Path]


@dataclass(frozen=True)
class WalRecord:
    """One logged edge update: ``op`` is ``insert_edge`` or ``delete_edge``."""

    op: str
    u: int
    v: int


@dataclass(frozen=True)
class WalScan:
    """The result of scanning a log file (see :func:`scan_wal`).

    ``records`` is every complete, checksum-valid record in order;
    ``valid_bytes`` is the offset of the end of the last complete record
    (the truncation point for torn-tail repair); ``torn_bytes`` is the
    length of the partial record after it (0 for a clean log).
    """

    records: Tuple[WalRecord, ...]
    valid_bytes: int
    torn_bytes: int


def _encode(op: str, u: int, v: int) -> bytes:
    try:
        code = _OPCODES[op]
    except KeyError:
        raise WalError(f"unknown WAL operation {op!r}") from None
    if u < 0 or v < 0:
        raise WalError(f"negative vertex id in WAL record ({u}, {v})")
    payload = struct.pack(_PAYLOAD_STRUCT, code, u, v)
    prefix = struct.pack(_PREFIX_STRUCT, len(payload), zlib.crc32(payload))
    return prefix + payload


def _scan_stream(handle: BinaryIO, path: Path) -> WalScan:
    """Scan an opened log positioned at byte 0; see :func:`scan_wal`."""
    header = handle.read(HEADER_BYTES)
    if len(header) < HEADER_BYTES or header[:4] != WAL_MAGIC:
        raise WalError(f"{path}: not a repro WAL file (bad or short header)")
    (version,) = struct.unpack(_HEADER_STRUCT, header[4:])
    if version != WAL_VERSION:
        raise WalError(f"{path}: unsupported WAL version {version}")
    records: List[WalRecord] = []
    valid = HEADER_BYTES
    while True:
        prefix = handle.read(_PREFIX_BYTES)
        if not prefix:
            return WalScan(tuple(records), valid, 0)
        if len(prefix) < _PREFIX_BYTES:
            return WalScan(tuple(records), valid, len(prefix))
        length, crc = struct.unpack(_PREFIX_STRUCT, prefix)
        if length != _PAYLOAD_BYTES:
            # An impossible length cannot be crash debris from this
            # writer (prefixes are written atomically with their
            # payload buffer): the valid region itself is corrupt.
            raise WalError(
                f"{path}: corrupt WAL — impossible record length {length} "
                f"at byte {valid} (expected {_PAYLOAD_BYTES})"
            )
        payload = handle.read(length)
        if len(payload) < length:
            return WalScan(
                tuple(records), valid, _PREFIX_BYTES + len(payload)
            )
        if zlib.crc32(payload) != crc:
            raise WalError(
                f"{path}: corrupt WAL — checksum mismatch in record "
                f"{len(records)} at byte {valid}"
            )
        code, u, v = struct.unpack(_PAYLOAD_STRUCT, payload)
        if code not in _OPNAMES:
            raise WalError(
                f"{path}: corrupt WAL — unknown opcode {code} in record "
                f"{len(records)} at byte {valid}"
            )
        records.append(WalRecord(_OPNAMES[code], u, v))
        valid += _PREFIX_BYTES + length


def scan_wal(path: PathLike) -> WalScan:
    """Read and validate a WAL file without opening it for writing.

    Returns:
        A :class:`WalScan`: the complete records, the torn-tail length
        (0 when the file ends exactly on a record boundary), and the
        valid byte count.

    Raises:
        WalError: bad magic/version, a checksum mismatch, or an
            impossible record length inside the valid region — real
            corruption, as opposed to a torn tail (which is reported,
            not raised: it is the expected debris of a crash
            mid-append).
    """
    path = Path(path)
    with path.open("rb") as handle:
        return _scan_stream(handle, path)


class WriteAheadLog:
    """An append-only, checksummed log of edge updates.

    Opening an existing log validates it and truncates any torn tail
    (debris of a crash mid-append — that update was never acknowledged,
    so dropping it is correct); opening a missing path creates an empty
    log. Appends are crash-durable under the default policy.

    Args:
        path: log file location (created if missing).
        fsync: one of :data:`FSYNC_POLICIES` — ``"always"`` (default),
            ``"batch"``, or ``"never"``.

    Raises:
        WalError: an unknown policy, or an existing file that is not a
            valid WAL (corruption inside the valid region included).

    Example:
        >>> import tempfile, os
        >>> path = os.path.join(tempfile.mkdtemp(), "wal.log")
        >>> wal = WriteAheadLog(path)
        >>> wal.append("insert_edge", 3, 17)
        1
        >>> [r.op for r in wal.records()]
        ['insert_edge']
        >>> wal.truncate(); len(wal)
        0
        >>> wal.close()
    """

    def __init__(self, path: PathLike, fsync: str = "always") -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; use one of {FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._records: List[WalRecord] = []
        if self.path.exists() and self.path.stat().st_size > 0:
            scan = scan_wal(self.path)
            self._records = list(scan.records)
            self._handle = self.path.open("r+b")
            if scan.torn_bytes:
                # Torn-tail repair: the partial record was never
                # acknowledged, so cutting it restores the invariant
                # that the file is a clean sequence of records.
                self._handle.truncate(scan.valid_bytes)
                self._sync_file()
            self._handle.seek(scan.valid_bytes)
        else:
            self._handle = self.path.open("w+b")
            self._handle.write(WAL_MAGIC)
            self._handle.write(struct.pack(_HEADER_STRUCT, WAL_VERSION))
            self._handle.flush()
            self._sync_file()
        self._closed = False

    # -- Appending -----------------------------------------------------------

    def append(self, op: str, u: int, v: int) -> int:
        """Log one update; returns the record count after the append.

        Under ``fsync="always"`` the record is on stable storage when
        this returns — the caller may then mutate in-RAM state knowing
        the update is replayable.

        Args:
            op: ``"insert_edge"`` or ``"delete_edge"``.
            u, v: edge endpoints.

        Raises:
            WalError: unknown operation, negative endpoint, or a closed
                log.
        """
        self._require_open()
        self._handle.write(_encode(op, int(u), int(v)))
        self._handle.flush()
        if self.fsync == "always":
            self._sync_file()
        self._records.append(WalRecord(op, int(u), int(v)))
        return len(self._records)

    def sync(self) -> None:
        """Force every appended record to stable storage (any policy)."""
        self._require_open()
        self._handle.flush()
        self._sync_file()

    # -- Truncation (snapshot publish protocol) ------------------------------

    def truncate(self) -> None:
        """Cut the log back to its header — all records are now redundant.

        Call **only after** a snapshot of the state containing every
        logged update is durably on disk (:func:`save_oracle` and
        :meth:`SnapshotSpool.publish <repro.core.serialization.SnapshotSpool.publish>`
        are atomic and fsynced, so their return is that point). The
        truncation itself is fsynced before returning, closing the
        window where both the old log and the new snapshot describe the
        same updates — replay of that window is idempotent anyway.
        """
        self._require_open()
        self._handle.truncate(HEADER_BYTES)
        self._handle.seek(HEADER_BYTES)
        self._handle.flush()
        self._sync_file()
        self._records.clear()

    # -- Introspection -------------------------------------------------------

    def records(self) -> List[WalRecord]:
        """Every record currently in the log, oldest first (a copy)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # -- Lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush, fsync, and close the file; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.flush()
            self._sync_file()
        finally:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{len(self._records)} records"
        return f"WriteAheadLog({str(self.path)!r}, fsync={self.fsync!r}, {state})"

    # -- Internals -----------------------------------------------------------

    def _sync_file(self) -> None:
        if self.fsync == "never":
            return
        try:
            os.fsync(self._handle.fileno())
        except (OSError, io.UnsupportedOperation):  # pragma: no cover
            pass  # fsync-less filesystems: flushed is the best we can do

    def _require_open(self) -> None:
        if self._closed:
            raise WalError(f"{self.path}: WAL is closed")


def replay_into(oracle, records) -> int:
    """Re-apply logged updates to a restored oracle; returns applied count.

    Each record runs through the oracle's own ``insert_edge`` /
    ``delete_edge`` (the O(affected) dynamic repair), so the replayed
    state is byte-identical to having applied the updates live — the
    invariant the dynamic test suite pins. Records already reflected in
    the oracle's graph (an insert whose edge exists, a delete whose edge
    does not) are skipped, which makes replay idempotent across the
    publish-then-truncate crash window.

    The oracle must **not** have a WAL attached yet — replaying an
    attached log would re-append every record to itself; attach after
    replay (:func:`repro.api.open_oracle` orders this correctly).

    Raises:
        WalError: if the oracle re-logs during replay, or a record's
            endpoints do not fit the oracle's graph.
    """
    if getattr(oracle, "wal", None) is not None:
        raise WalError(
            "replay_into() requires a detached oracle; attach the WAL "
            "after replay, or it would re-log its own records"
        )
    applied = 0
    for record in records:
        has_edge = _edge_state(oracle, record)
        if record.op == "insert_edge" and has_edge:
            continue
        if record.op == "delete_edge" and not has_edge:
            continue
        getattr(oracle, record.op)(record.u, record.v)
        applied += 1
    return applied


def _edge_state(oracle, record: WalRecord) -> bool:
    graph = oracle.graph
    n = graph.num_vertices
    if not (0 <= record.u < n and 0 <= record.v < n):
        raise WalError(
            f"WAL record {record.op}({record.u}, {record.v}) does not fit "
            f"a graph with {n} vertices — wrong WAL for this graph?"
        )
    return bool(graph.has_edge(record.u, record.v))
