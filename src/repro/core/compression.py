"""Label compression and byte accounting (Section 5.2 of the paper).

The paper reports two encodings of the same labelling:

* **HL** — 32-bit landmark identifiers + 8-bit distances (5 bytes per
  entry), matching what FD and PLL use for their normal labels, so that
  Table 3's comparison is apples-to-apples.
* **HL(8)** — since the method never needs more than ~100 landmarks,
  landmark identifiers fit in 8 bits, giving 2 bytes per entry.

Both accountings include the per-vertex offset overhead (one 8-byte
offset per vertex for the CSR-of-labels) and the ``k^2`` highway matrix
(distances < 256, 1 byte per cell).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.highway import Highway
from repro.core.labels import HighwayCoverLabelling, LabelStore
from repro.errors import CompressionError

_OFFSET_BYTES_PER_VERTEX = 8


@dataclass(frozen=True)
class LabelCodec:
    """A label entry encoding: ``"u32"`` (32+8 bit) or ``"u8"`` (8+8 bit)."""

    kind: str

    _BYTES_PER_ENTRY = {"u32": 5, "u8": 2}
    _MAX_LANDMARKS = {"u32": 2**32, "u8": 256}

    def __post_init__(self) -> None:
        if self.kind not in self._BYTES_PER_ENTRY:
            raise CompressionError(
                f"unknown codec {self.kind!r}; expected 'u32' or 'u8'"
            )

    @property
    def bytes_per_entry(self) -> int:
        return self._BYTES_PER_ENTRY[self.kind]

    @property
    def max_landmarks(self) -> int:
        return self._MAX_LANDMARKS[self.kind]

    def validate(self, labelling: LabelStore, highway: Highway) -> None:
        """Check the labelling actually fits this codec.

        Raises:
            CompressionError: if landmark ids or distances overflow.
        """
        if highway.num_landmarks > self.max_landmarks:
            raise CompressionError(
                f"{highway.num_landmarks} landmarks exceed codec {self.kind!r} "
                f"capacity of {self.max_landmarks}"
            )
        labelling = labelling.as_vertex_major()
        if labelling.size() and int(labelling.distances.max()) > 255:
            raise CompressionError("distances exceed the 8-bit distance field")


def encoded_size_bytes(
    labelling: LabelStore, highway: Highway, codec: LabelCodec
) -> int:
    """Total bytes for labels + offsets + highway under ``codec`` (Table 3)."""
    codec.validate(labelling, highway)
    labelling = labelling.as_vertex_major()
    entry_bytes = labelling.size() * codec.bytes_per_entry
    offset_bytes = labelling.num_vertices * _OFFSET_BYTES_PER_VERTEX
    return entry_bytes + offset_bytes + highway.size_bytes(bytes_per_entry=1)


def encode_labels(
    labelling: LabelStore, codec: LabelCodec
) -> tuple:
    """Materialize the entry arrays at the codec's width (round-trippable).

    Returns ``(landmark_indices, distances)`` with the narrow dtypes; used
    by tests to prove the compression is lossless under the validated
    preconditions, and by :func:`decode_labels`.
    """
    labelling = labelling.as_vertex_major()
    codec_dtype = np.uint8 if codec.kind == "u8" else np.uint32
    if labelling.size():
        if labelling.landmark_indices.max(initial=0) >= codec.max_landmarks:
            raise CompressionError("landmark index overflows codec width")
        if labelling.distances.max(initial=0) > 255:
            raise CompressionError("distance overflows 8-bit field")
    return (
        labelling.landmark_indices.astype(codec_dtype),
        labelling.distances.astype(np.uint8),
    )


def decode_labels(
    num_vertices: int,
    num_landmarks: int,
    offsets: np.ndarray,
    encoded_landmarks: np.ndarray,
    encoded_distances: np.ndarray,
) -> HighwayCoverLabelling:
    """Rebuild a :class:`HighwayCoverLabelling` from codec-width arrays."""
    return HighwayCoverLabelling(
        num_vertices=num_vertices,
        num_landmarks=num_landmarks,
        offsets=offsets,
        landmark_indices=encoded_landmarks.astype(np.int32),
        distances=encoded_distances.astype(np.int32),
    )
