"""HL-P: landmark-parallel labelling construction (Section 5.1).

Because Algorithm 1's pruned BFSs are completely independent across
landmarks and the result is deterministic (Lemma 3.11), the labelling can
be built concurrently and merged in landmark order. The paper exploits
this with one thread per landmark; we go further and hand each worker a
*chunk* of landmarks driven by the stacked bit-parallel engine
(:mod:`repro.core.construction_engine`), so each worker amortizes its
per-level numpy passes over up to 64 landmarks instead of one. Two
backends:

* ``"thread"`` (default) — a thread pool. The numpy passes inside the
  stacked BFS release the GIL for the bulk of the work, so threads give
  a real speed-up without pickling the graph.
* ``"process"`` — a fork-based process pool sharing the CSR arrays via
  copy-on-write globals; pays fork overhead once, scales for large runs
  on platforms with ``fork``.

The output is asserted identical to the sequential builders by the test
suite (the executable form of Lemma 3.11).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.construction_engine import DEFAULT_CHUNK_SIZE, stacked_pruned_bfs
from repro.core.highway import Highway
from repro.core.labels import LabelAccumulator, LabelStore
from repro.errors import LandmarkError
from repro.graphs.graph import Graph
from repro.utils.timing import TimeBudget

# Module-level slot for the fork-shared graph (process backend only).
_SHARED: dict = {}


def _chunk_ranges(num_landmarks: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split the landmark index range into [start, stop) chunks."""
    return [
        (start, min(start + chunk_size, num_landmarks))
        for start in range(0, num_landmarks, chunk_size)
    ]


def _process_worker(chunk: Tuple[int, int]):
    start, stop = chunk
    graph = _SHARED["graph"]
    mask = _SHARED["mask"]
    landmark_ids = _SHARED["landmark_ids"]
    per_vertices, per_distances, rows = stacked_pruned_bfs(
        graph, landmark_ids[start:stop], mask, landmark_ids
    )
    return start, stop, per_vertices, per_distances, rows


def build_highway_cover_labelling_parallel(
    graph: Graph,
    landmarks: Sequence[int],
    budget_s: Optional[float] = None,
    workers: Optional[int] = None,
    backend: str = "thread",
    chunk_size: Optional[int] = None,
    store: str = "vertex",
) -> Tuple[LabelStore, Highway]:
    """Construct the labelling with concurrent stacked chunks (HL-P).

    Args:
        graph: input graph.
        landmarks: landmark vertex ids (their order only names indices).
        budget_s: optional wall-clock budget checked as results arrive.
        workers: concurrency; defaults to ``min(k, cpu_count)``.
        backend: ``"thread"`` or ``"process"`` (see module docstring).
        chunk_size: landmarks per worker unit. Defaults to spreading the
            landmark set evenly across the workers, capped at the
            stacked engine's word width
            (:data:`~repro.core.construction_engine.DEFAULT_CHUNK_SIZE`).
        store: label-store backend to emit (``"vertex"`` or
            ``"landmark"``, see :mod:`repro.core.labels`).

    Returns:
        ``(labelling, highway)`` — identical to the sequential builders'
        output (Lemma 3.11).
    """
    landmark_ids = np.asarray([int(v) for v in landmarks], dtype=np.int64)
    if landmark_ids.size == 0:
        raise LandmarkError("need at least one landmark")
    for v in landmark_ids:
        graph.validate_vertex(int(v))
    if backend not in ("thread", "process"):
        raise ValueError(f"unknown backend {backend!r}")

    k = len(landmark_ids)
    max_workers = workers or min(k, os.cpu_count() or 1)
    if chunk_size is None:
        chunk_size = min(DEFAULT_CHUNK_SIZE, -(-k // max_workers))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    chunks = _chunk_ranges(k, chunk_size)

    highway = Highway(landmark_ids)
    mask = highway.landmark_mask(graph.num_vertices)
    accumulator = LabelAccumulator(graph.num_vertices, k)
    budget = TimeBudget(budget_s, method="HL-P")

    def merge(result) -> None:
        start, stop, per_vertices, per_distances, rows = result
        budget.check()
        for slot, index in enumerate(range(start, stop)):
            accumulator.add_landmark_result(
                index, per_vertices[slot], per_distances[slot]
            )
            highway.set_row(int(landmark_ids[index]), rows[slot])

    if backend == "process" and hasattr(os, "fork"):
        _SHARED["graph"] = graph
        _SHARED["mask"] = mask
        _SHARED["landmark_ids"] = landmark_ids
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                for result in pool.map(_process_worker, chunks):
                    merge(result)
        finally:
            _SHARED.clear()
    else:
        def run(chunk: Tuple[int, int]):
            start, stop = chunk
            # Threads share the budget object, so enforcement stays
            # per-level even inside a long chunk; the process backend can
            # only check as chunk results arrive (merge()).
            return (start, stop) + stacked_pruned_bfs(
                graph, landmark_ids[start:stop], mask, landmark_ids, budget=budget
            )

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            for result in pool.map(run, chunks):
                merge(result)

    return accumulator.freeze_as(store), highway
