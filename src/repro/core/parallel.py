"""HL-P: landmark-parallel labelling construction (Section 5.1).

Because Algorithm 1's pruned BFSs are completely independent across
landmarks and the result is deterministic (Lemma 3.11), the labelling can
be built by running the per-landmark BFSs concurrently and merging the
results in landmark order. The paper exploits this with one thread per
landmark; we provide two backends:

* ``"thread"`` (default) — a thread pool. The numpy gathers inside the
  pruned BFS release the GIL for the bulk of the work, so threads give a
  real speed-up without pickling the graph.
* ``"process"`` — a fork-based process pool sharing the CSR arrays via
  copy-on-write globals; pays fork overhead once, scales for large runs
  on platforms with ``fork``.

The output is asserted identical to the sequential builder by the test
suite (the executable form of Lemma 3.11).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.construction import pruned_bfs_from_landmark
from repro.core.highway import Highway
from repro.core.labels import HighwayCoverLabelling, LabelAccumulator
from repro.errors import LandmarkError
from repro.graphs.graph import Graph
from repro.utils.timing import TimeBudget

# Module-level slot for the fork-shared graph (process backend only).
_SHARED: dict = {}


def _process_worker(args: Tuple[int, int]) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    index, landmark = args
    graph = _SHARED["graph"]
    mask = _SHARED["mask"]
    landmark_ids = _SHARED["landmark_ids"]
    vertices, distances, row = pruned_bfs_from_landmark(graph, landmark, mask, landmark_ids)
    return index, vertices, distances, row


def build_highway_cover_labelling_parallel(
    graph: Graph,
    landmarks: Sequence[int],
    budget_s: Optional[float] = None,
    workers: Optional[int] = None,
    backend: str = "thread",
) -> Tuple[HighwayCoverLabelling, Highway]:
    """Construct the labelling with concurrent per-landmark BFSs (HL-P).

    Args:
        graph: input graph.
        landmarks: landmark vertex ids (their order only names indices).
        budget_s: optional wall-clock budget checked as results arrive.
        workers: concurrency; defaults to ``min(k, cpu_count)``.
        backend: ``"thread"`` or ``"process"`` (see module docstring).

    Returns:
        ``(labelling, highway)`` — identical to the sequential builder's
        output (Lemma 3.11).
    """
    landmark_ids = np.asarray([int(v) for v in landmarks], dtype=np.int64)
    if landmark_ids.size == 0:
        raise LandmarkError("need at least one landmark")
    for v in landmark_ids:
        graph.validate_vertex(int(v))
    if backend not in ("thread", "process"):
        raise ValueError(f"unknown backend {backend!r}")

    highway = Highway(landmark_ids)
    mask = highway.landmark_mask(graph.num_vertices)
    accumulator = LabelAccumulator(graph.num_vertices, len(landmark_ids))
    budget = TimeBudget(budget_s, method="HL-P")
    max_workers = workers or min(len(landmark_ids), os.cpu_count() or 1)

    if backend == "process" and hasattr(os, "fork"):
        _SHARED["graph"] = graph
        _SHARED["mask"] = mask
        _SHARED["landmark_ids"] = landmark_ids
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                for index, vertices, distances, row in pool.map(
                    _process_worker, list(enumerate(landmark_ids))
                ):
                    budget.check()
                    accumulator.add_landmark_result(index, vertices, distances)
                    highway.set_row(int(landmark_ids[index]), row)
        finally:
            _SHARED.clear()
    else:
        def run(index_landmark):
            index, landmark = index_landmark
            return index, *pruned_bfs_from_landmark(
                graph, int(landmark), mask, landmark_ids
            )

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            for index, vertices, distances, row in pool.map(
                run, list(enumerate(landmark_ids))
            ):
                budget.check()
                accumulator.add_landmark_result(index, vertices, distances)
                highway.set_row(int(landmark_ids[index]), row)

    return accumulator.freeze(), highway
