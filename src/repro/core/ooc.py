"""Out-of-core HL construction: labels spill to disk, never to the heap.

:func:`~repro.core.construction_engine.build_highway_cover_labelling_stacked`
accumulates every label entry in RAM before the snapshot is written, so
its peak memory is ``O(n + total label entries)`` even though the BFS
state itself is chunk-bounded.  This module removes that last ``O``:
:func:`build_snapshot_out_of_core` runs the same stacked chunks
(byte-identical BFS semantics, see :mod:`repro.core.construction_engine`)
but **spills each chunk's label entries to disk** and later scatters
them *directly into the label sections of a v2 snapshot file* — the
labels are never fully resident, and neither is the graph when it comes
from a memmapped disk CSR (:mod:`repro.graphs.disk_csr`).

The two-phase write:

1. **Spill** — per landmark chunk, write each landmark's
   ``(vertex, distance)`` label entries to its own spill file (no
   sorting: a landmark labels a vertex at most once, so order within a
   file is free), and accumulate the ``O(n)`` per-vertex entry counts
   plus the ``O(k²)`` highway matrix — the only state kept in RAM.
2. **Scatter** — with the counts' prefix sum as the snapshot's offsets
   section, the header / landmarks / highway / offsets sections are
   written normally, the file is extended to its final size, and the
   ids/distances sections are memmapped writable.  Spill files replay
   in landmark order in bounded slices; because vertices are unique
   within a file, a per-vertex write cursor turns every slice into one
   vectorized scatter (``positions = cursor[vertices]; cursor += 1``),
   and the landmark-order replay leaves each vertex's label run sorted
   by landmark index — exactly the byte layout
   :func:`~repro.core.serialization.save_oracle` produces for the same
   build (asserted by ``tests/builder_harness.py`` and the gauntlet's
   byte-identity phase).

Publication is atomic (same-directory temp file + fsync + rename), so
the output can be dropped straight into a
:class:`~repro.core.serialization.SnapshotSpool` generation via
:meth:`~repro.core.serialization.SnapshotSpool.publish_via` and served
by :class:`~repro.serving.ShardedDistanceService` without ever loading
the index into the writer process.
"""

from __future__ import annotations

import os
import shutil
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import serialization as _ser
from repro.core.construction_engine import (
    DEFAULT_CHUNK_SIZE,
    stacked_pruned_bfs,
)
from repro.core.highway import Highway
from repro.errors import LandmarkError, ReproError
from repro.graphs.disk_csr import drop_resident_pages
from repro.graphs.graph import Graph
from repro.utils.memory import trim_heap
from repro.utils.timing import TimeBudget

PathLike = Union[str, Path]

#: Label entries scattered per slice during the snapshot replay.  The
#: replay allocates a handful of transient arrays per slice, so this
#: bounds scatter scratch to a few tens of MiB.
DEFAULT_SCATTER_SLICE = 1 << 19


@dataclass(frozen=True)
class OocBuildReport:
    """What one :func:`build_snapshot_out_of_core` run produced."""

    out_path: str
    num_vertices: int
    num_landmarks: int
    entries: int
    chunks: int
    bytes_written: int
    construction_seconds: float


def _iter_spill_slices(
    path: Path, slice_entries: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Replay one landmark's spill file in bounded (vertex, dist) slices."""
    entry_bytes = 8 + 4
    with path.open("rb") as handle:
        while True:
            blob = handle.read(slice_entries * entry_bytes)
            if not blob:
                break
            pairs = np.frombuffer(blob, dtype=[("v", "<i8"), ("d", "<i4")])
            yield (
                pairs["v"].astype(np.int64, copy=False),
                pairs["d"],
            )


def build_snapshot_out_of_core(
    graph: Graph,
    landmarks: Sequence[int],
    out_path: PathLike,
    *,
    chunk_size: Optional[int] = None,
    budget_s: Optional[float] = None,
    edge_block: Optional[int] = None,
    release_graph_pages: bool = False,
    scatter_slice: int = DEFAULT_SCATTER_SLICE,
    tmp_dir: Optional[PathLike] = None,
) -> OocBuildReport:
    """Build HL labels for ``landmarks`` straight into a v2 snapshot.

    The output file is byte-identical to building in memory with the
    stacked engine and calling ``save_oracle(oracle, out_path)`` with
    the same landmark order, but peak memory stays
    ``O(n + chunk labels)``: label entries live in per-chunk spill
    files between the BFS and the final scatter, and the big label
    sections are written through a memmap, never materialized.

    Args:
        graph: input graph — typically a memmapped disk CSR for true
            out-of-core operation, but any :class:`Graph` works.
        landmarks: landmark vertex ids; order fixes landmark indices.
        out_path: snapshot destination (atomic publish).
        chunk_size: landmarks advanced together per stacked pass.
        budget_s: optional wall-clock construction budget.
        edge_block: bound on directed edges gathered per BFS step (see
            :func:`~repro.graphs.csr.bitset_neighbor_or`).
        release_graph_pages: advise the kernel to drop the memmapped
            adjacency's resident pages after every BFS level, keeping a
            disk-CSR graph's RSS contribution near zero.
        scatter_slice: label entries scattered per replay slice.
        tmp_dir: where spill files live (default: alongside
            ``out_path``).

    Returns:
        An :class:`OocBuildReport`; load the result with
        :func:`~repro.core.serialization.load_oracle`.

    Raises:
        LandmarkError: empty landmark set or out-of-range ids.
        ReproError: a distance overflows the snapshot encoding.
    """
    from repro.utils.timing import Stopwatch

    out_path = Path(out_path)
    landmark_ids = np.asarray([int(v) for v in landmarks], dtype=np.int64)
    if landmark_ids.size == 0:
        raise LandmarkError("need at least one landmark")
    for v in landmark_ids:
        graph.validate_vertex(int(v))
    chunk = DEFAULT_CHUNK_SIZE if chunk_size is None else int(chunk_size)
    if chunk < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")

    n = graph.num_vertices
    k = int(landmark_ids.size)
    highway = Highway(landmark_ids)
    mask = highway.landmark_mask(n)
    budget = TimeBudget(budget_s, method="HL-C/ooc")
    level_hook = None
    block_hook = None
    if release_graph_pages:
        csr = graph.csr

        def _drop_pages() -> None:
            """Drop the adjacency mapping's resident pages."""
            drop_resident_pages(csr.indices)

        def level_hook() -> None:
            """Drop adjacency pages and hand back allocator free lists.

            Each BFS level churns a few tens of MiB of frontier scratch;
            trimming per level keeps that retention out of the build's
            RSS high-water mark.  Levels are few (graph diameter), so
            the ``malloc_trim`` cost is noise.
            """
            drop_resident_pages(csr.indices)
            trim_heap()

        if edge_block is not None:
            # Blocks sweep the adjacency once, front to back, so
            # dropping the whole mapping after each block never evicts
            # pages a later block still needs — resident adjacency
            # stays O(edge_block) even inside a level.  No trim here:
            # blocks fire tens of times per level and malloc_trim at
            # that cadence costs real wall-clock.
            block_hook = _drop_pages

    work_dir = Path(
        tempfile.mkdtemp(
            prefix="repro-ooc-",
            dir=str(tmp_dir) if tmp_dir is not None else str(out_path.parent),
        )
    )
    try:
        with Stopwatch() as stopwatch:
            counts = np.zeros(n, dtype=np.int64)
            spills = []
            for start in range(0, k, chunk):
                budget.check()
                stop = min(start + chunk, k)
                per_vertices, per_distances, rows = stacked_pruned_bfs(
                    graph,
                    landmark_ids[start:stop],
                    mask,
                    landmark_ids,
                    budget=budget,
                    edge_block=edge_block,
                    level_hook=level_hook,
                    block_hook=block_hook,
                )
                for slot, index in enumerate(range(start, stop)):
                    highway.set_row(int(landmark_ids[index]), rows[slot])
                    vertices = np.asarray(per_vertices[slot], dtype=np.int64)
                    distances = np.asarray(per_distances[slot])
                    if distances.size and int(distances.max()) > 255:
                        raise ReproError("label distance exceeds u8 range")
                    counts += np.bincount(vertices, minlength=n)
                    spill = work_dir / f"landmark-{index:06d}.spill"
                    with spill.open("wb") as handle:
                        # Slice the record conversion so the spill write
                        # never holds a second full copy of the entries.
                        for lo in range(0, vertices.size, scatter_slice):
                            hi = min(lo + scatter_slice, vertices.size)
                            pairs = np.empty(
                                hi - lo, dtype=[("v", "<i8"), ("d", "<i4")]
                            )
                            pairs["v"] = vertices[lo:hi]
                            pairs["d"] = distances[lo:hi]
                            pairs.tofile(handle)
                            del pairs
                    spills.append((spill, index))
                del per_vertices, per_distances, vertices, distances
                # The chunk epilogue churned O(chunk entries) of scratch;
                # hand the allocator's retained free lists back so chunk
                # peaks don't stack in the RSS high-water mark.
                trim_heap()

            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            del counts
            trim_heap()
            entries = int(offsets[-1])
            bytes_written = _scatter_snapshot(
                out_path, highway, offsets, spills, entries, scatter_slice
            )
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
    return OocBuildReport(
        out_path=str(out_path),
        num_vertices=n,
        num_landmarks=k,
        entries=entries,
        chunks=(k + chunk - 1) // chunk,
        bytes_written=bytes_written,
        construction_seconds=stopwatch.elapsed,
    )


def _scatter_snapshot(
    out_path: Path,
    highway: Highway,
    offsets: np.ndarray,
    spills: Sequence[Tuple[Path, int]],
    entries: int,
    scatter_slice: int,
) -> int:
    """Write the v2 snapshot, replaying spill files into its label body."""
    n = offsets.size - 1
    k = highway.num_landmarks
    narrow = k <= 256
    flags = _ser._FLAG_NARROW_IDS if narrow else 0
    matrix = highway.matrix.copy()
    finite = ~np.isinf(matrix)
    if finite.any() and matrix[finite].max() > 65534:
        raise ReproError("highway distance exceeds u16 range")
    matrix[~finite] = _ser._UNREACHABLE_U16
    sections = _ser._section_offsets(_ser._V2, n, k, entries, narrow)
    sec_ids, sec_dists, end = sections[3], sections[4], sections[5]
    id_dtype = "<u1" if narrow else "<u4"

    tmp = out_path.parent / f"{out_path.name}.{os.getpid()}.tmp"
    try:
        with tmp.open("wb") as handle:
            handle.write(_ser._MAGIC)
            handle.write(
                struct.pack(
                    _ser._HEADER_STRUCT, _ser._V2, flags, n, k, entries
                )
            )
            head_payload = (
                highway.landmarks.astype("<i8").tobytes(),
                matrix.astype("<u2").tobytes(),
                offsets.astype("<i8").tobytes(),
            )
            for start, blob in zip(sections, head_payload):
                handle.write(b"\x00" * (start - handle.tell()))
                handle.write(blob)
            # Extend to the final size; the hole reads as zeros, exactly
            # the padding save_oracle writes explicitly.
            handle.truncate(end)
        if entries:
            ids_map = np.memmap(
                tmp, dtype=id_dtype, mode="r+", offset=sec_ids, shape=(entries,)
            )
            dists_map = np.memmap(
                tmp, dtype="<u1", mode="r+", offset=sec_dists, shape=(entries,)
            )
            cursor = offsets[:-1].copy()
            for spill, landmark_index in spills:
                for vertices, distances in _iter_spill_slices(
                    spill, scatter_slice
                ):
                    # A landmark labels each vertex at most once, so
                    # vertices are unique within a spill file and the
                    # scatter needs no sorting: landmark-order replay
                    # alone yields vertex runs ascending in landmark.
                    positions = cursor[vertices]
                    ids_map[positions] = landmark_index
                    dists_map[positions] = distances.astype("<u1")
                    cursor[vertices] += 1
            ids_map.flush()
            dists_map.flush()
            del ids_map, dists_map
        with tmp.open("rb+") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, out_path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _ser._fsync_directory(out_path.parent)
    return end
