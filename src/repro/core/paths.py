"""Shortest-path *reconstruction* on top of the HL oracle (extension).

The paper answers distance queries; downstream applications (routing,
explanation, visualization) usually want the witness path too. This
module recovers an actual shortest path without storing parents in the
index, using only what HL already has:

* For the landmark-routed part, the exact landmark-to-vertex distances
  decodable from labels + highway allow *greedy descent*: from ``x``,
  step to any neighbour ``w`` with ``d(w, r) = d(x, r) − 1``; repeating
  reaches ``r`` along a shortest path.
* For pairs whose exact distance beats the landmark bound, a
  parent-tracking bidirectional BFS on the sparsified graph reconstructs
  the landmark-free path directly.

``shortest_path`` therefore returns a path whose length always equals
``oracle.query(s, t)`` — asserted by the test suite on random graphs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.query import HighwayCoverOracle
from repro.graphs.graph import Graph


def shortest_path(oracle: HighwayCoverOracle, s: int, t: int) -> Optional[List[int]]:
    """An actual shortest path from ``s`` to ``t`` (or None if disconnected).

    The returned list starts with ``s`` and ends with ``t``; its length
    minus one equals ``oracle.query(s, t)``.
    """
    graph, labelling, highway = oracle._require_built()
    graph.validate_vertex(s)
    graph.validate_vertex(t)
    if s == t:
        return [s]
    total = oracle.query(s, t)
    if total == float("inf"):
        return None

    # If the sparsified search beats (or meets) the landmark route with a
    # landmark-free path, reconstruct it directly.
    direct = _sparsified_path(graph, s, t, total, oracle._landmark_mask)
    if direct is not None:
        return direct

    # Otherwise the distance is realized through landmarks: find the
    # witness pair and chain three greedy-descent segments
    # s -> ri (via labels), ri -> rj (via highway), rj -> t.
    ri, rj = _witness_landmarks(oracle, s, t, total)
    first = _descend_to_landmark(oracle, s, ri)
    middle = _landmark_to_landmark_path(oracle, ri, rj)
    last = _descend_to_landmark(oracle, t, rj)
    path = first + middle[1:] + list(reversed(last))[1:]
    return path


def _witness_landmarks(oracle, s, t, total):
    """Landmark vertex ids (ri, rj) realizing the exact distance."""
    highway = oracle.highway

    def dist_to(r, x):
        if oracle._landmark_mask[x]:
            return highway.distance(r, x)
        return oracle._landmark_to_vertex(r, x)

    landmarks = [int(r) for r in highway.landmarks]
    for ri in landmarks:
        for rj in landmarks:
            if dist_to(ri, s) + highway.distance(ri, rj) + dist_to(rj, t) == total:
                return ri, rj
    raise AssertionError("no witness pair for a landmark-routed distance")


def _descend_to_landmark(oracle, vertex: int, landmark: int) -> List[int]:
    """Greedy descent from ``vertex`` to ``landmark`` along a shortest path."""
    graph = oracle.graph
    highway = oracle.highway

    def dist_to(x):
        if oracle._landmark_mask[x]:
            return highway.distance(landmark, x)
        return oracle._landmark_to_vertex(landmark, x)

    path = [vertex]
    current = vertex
    remaining = dist_to(vertex)
    while current != landmark:
        for w in graph.neighbors(current):
            w = int(w)
            if dist_to(w) == remaining - 1:
                path.append(w)
                current = w
                remaining -= 1
                break
        else:  # pragma: no cover - would contradict exactness
            raise AssertionError("greedy descent found no predecessor")
    return path


def _landmark_to_landmark_path(oracle, ri: int, rj: int) -> List[int]:
    """Shortest ri-rj path by greedy descent on d(., rj) queries."""
    if ri == rj:
        return [ri]
    return _descend_to_landmark(oracle, ri, rj)


def _sparsified_path(
    graph: Graph, s: int, t: int, exact: float, excluded: np.ndarray
) -> Optional[List[int]]:
    """Parent-tracking BFS on G[V \\ R]; None unless it matches ``exact``."""
    if excluded[s] or excluded[t]:
        return None
    n = graph.num_vertices
    parent = np.full(n, -1, dtype=np.int64)
    dist = np.full(n, -1, dtype=np.int64)
    dist[s] = 0
    frontier = [s]
    found = False
    while frontier and not found:
        next_frontier: List[int] = []
        for x in frontier:
            if dist[x] >= exact:
                break
            for w in graph.neighbors(x):
                w = int(w)
                if excluded[w] or dist[w] != -1:
                    continue
                dist[w] = dist[x] + 1
                parent[w] = x
                if w == t:
                    found = True
                    break
                next_frontier.append(w)
            if found:
                break
        frontier = next_frontier
    if not found or dist[t] != exact:
        return None
    path = [t]
    while path[-1] != s:
        path.append(int(parent[path[-1]]))
    return list(reversed(path))
