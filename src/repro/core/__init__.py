"""The paper's primary contribution: highway cover labelling and querying.

Public entry points:

* :class:`~repro.core.query.HighwayCoverOracle` — build + query in one
  object (the method called **HL** in the paper; ``parallel=True`` gives
  **HL-P**, ``codec="u8"`` gives **HL(8)**).
* :func:`~repro.core.construction.build_highway_cover_labelling` —
  Algorithm 1 on its own.
* :class:`~repro.core.highway.Highway` — the ``(R, δH)`` structure.
* :class:`~repro.core.labels.LabelStore` — the label-store protocol,
  with a frozen vertex-major backend
  (:class:`~repro.core.labels.HighwayCoverLabelling`) and a mutable
  landmark-major backend
  (:class:`~repro.core.labels.LandmarkMajorLabelStore`).
"""

from repro.core.highway import Highway
from repro.core.labels import (
    HighwayCoverLabelling,
    LabelStore,
    LandmarkMajorLabelStore,
    VertexLabel,
)
from repro.core.construction import build_highway_cover_labelling, pruned_bfs_from_landmark
from repro.core.construction_engine import (
    build_highway_cover_labelling_stacked,
    stacked_pruned_bfs,
)
from repro.core.parallel import build_highway_cover_labelling_parallel
from repro.core.bounds import upper_bound_distance
from repro.core.query import HighwayCoverOracle
from repro.core.compression import LabelCodec, encoded_size_bytes
from repro.core.verification import (
    is_highway_cover,
    is_hwc_minimal,
    reference_minimal_entries,
)
from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.paths import shortest_path
from repro.core.batch import batch_query, batch_upper_bounds, coverage_ratio
from repro.core.batch_engine import BatchQueryEngine
from repro.core.ooc import OocBuildReport, build_snapshot_out_of_core
from repro.core.serialization import SnapshotSpool, load_oracle, save_oracle
from repro.core.wal import WalRecord, WriteAheadLog, replay_into, scan_wal
from repro.core.fsck import (
    FsckReport,
    fsck_disk_csr,
    fsck_path,
    fsck_snapshot,
    fsck_wal,
)

__all__ = [
    "Highway",
    "HighwayCoverLabelling",
    "LabelStore",
    "LandmarkMajorLabelStore",
    "VertexLabel",
    "build_highway_cover_labelling",
    "build_highway_cover_labelling_parallel",
    "build_highway_cover_labelling_stacked",
    "pruned_bfs_from_landmark",
    "stacked_pruned_bfs",
    "upper_bound_distance",
    "HighwayCoverOracle",
    "LabelCodec",
    "encoded_size_bytes",
    "is_highway_cover",
    "is_hwc_minimal",
    "reference_minimal_entries",
    "DynamicHighwayCoverOracle",
    "shortest_path",
    "BatchQueryEngine",
    "batch_query",
    "batch_upper_bounds",
    "coverage_ratio",
    "load_oracle",
    "save_oracle",
    "OocBuildReport",
    "build_snapshot_out_of_core",
    "SnapshotSpool",
    "WalRecord",
    "WriteAheadLog",
    "replay_into",
    "scan_wal",
    "FsckReport",
    "fsck_disk_csr",
    "fsck_path",
    "fsck_snapshot",
    "fsck_wal",
]
