"""Vectorized batch queries over the HL index (extension).

Analytics workloads (centrality, Figure 9's coverage sweeps, the paper's
100,000-pair query benchmark) issue distance queries in bulk. These
module-level helpers are thin functional wrappers around the oracle's
:class:`~repro.core.batch_engine.BatchQueryEngine`, which answers a whole
batch with a handful of numpy passes: one flattened-label gather for all
upper bounds, short circuits for trivially-exact pairs, and one grouped
multi-target bounded BFS per distinct source vertex.

``batch_query`` is semantically identical to looping ``oracle.query`` —
asserted by the test suite — just faster for large pair sets.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.query import HighwayCoverOracle


def batch_upper_bounds(
    oracle: HighwayCoverOracle, pairs: np.ndarray
) -> np.ndarray:
    """Upper bounds ``d⊤`` for an (k, 2) array of vertex pairs.

    Validates ``pairs`` exactly like :func:`batch_query` (shape ``(k, 2)``,
    integer dtype, in-range vertex ids).
    """
    return oracle.batch_engine().upper_bounds(pairs)


def batch_query(
    oracle: HighwayCoverOracle,
    pairs: np.ndarray,
    return_coverage: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Exact distances for an (k, 2) pair array.

    Args:
        oracle: a built :class:`HighwayCoverOracle`.
        pairs: integer array of shape (k, 2).
        return_coverage: also return the boolean "covered" mask
            (bound == exact), the statistic Figure 9 plots.

    Returns:
        ``(distances, covered_or_None)``.
    """
    return oracle.batch_engine().query_many(pairs, return_coverage=return_coverage)


def coverage_ratio(oracle: HighwayCoverOracle, pairs: np.ndarray) -> float:
    """Fraction of pairs answerable from the labels alone (Figure 9)."""
    return oracle.batch_engine().coverage_ratio(pairs)
