"""Vectorized batch queries over the HL index (extension).

Analytics workloads (centrality, Figure 9's coverage sweeps, the paper's
100,000-pair query benchmark) issue distance queries in bulk. The
per-query upper-bound computation is a tiny dense expression, so batching
it across pairs amortizes Python call overhead; pairs whose bound is
certifiably exact (covered pairs) never touch the online search at all.

``batch_query`` is semantically identical to looping ``oracle.query`` —
asserted by the test suite — just faster for large pair sets.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.query import HighwayCoverOracle
from repro.search.bounded import bounded_bidirectional_distance


def batch_upper_bounds(
    oracle: HighwayCoverOracle, pairs: np.ndarray
) -> np.ndarray:
    """Upper bounds ``d⊤`` for an (k, 2) array of vertex pairs."""
    _, labelling, highway = oracle._require_built()
    out = np.empty(len(pairs), dtype=float)
    for i, (s, t) in enumerate(pairs):
        out[i] = oracle.upper_bound(int(s), int(t))
    return out


def batch_query(
    oracle: HighwayCoverOracle,
    pairs: np.ndarray,
    return_coverage: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Exact distances for an (k, 2) pair array.

    Args:
        oracle: a built :class:`HighwayCoverOracle`.
        pairs: integer array of shape (k, 2).
        return_coverage: also return the boolean "covered" mask
            (bound == exact), the statistic Figure 9 plots.

    Returns:
        ``(distances, covered_or_None)``.
    """
    graph, labelling, highway = oracle._require_built()
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (k, 2)")
    k = len(pairs)
    distances = np.empty(k, dtype=float)
    covered = np.zeros(k, dtype=bool) if return_coverage else None
    mask = oracle._landmark_mask

    bounds = batch_upper_bounds(oracle, pairs)
    for i, (s, t) in enumerate(pairs):
        s, t = int(s), int(t)
        if s == t:
            distances[i] = 0.0
            if covered is not None:
                covered[i] = True
            continue
        if mask[s] or mask[t]:
            # Landmark endpoints: the bound *is* the exact distance.
            distances[i] = bounds[i]
            if covered is not None:
                covered[i] = True
            continue
        d = bounded_bidirectional_distance(graph, s, t, bounds[i], excluded=mask)
        distances[i] = d
        if covered is not None:
            covered[i] = d == bounds[i]
    return distances, covered


def coverage_ratio(oracle: HighwayCoverOracle, pairs: np.ndarray) -> float:
    """Fraction of pairs answerable from the labels alone (Figure 9)."""
    if len(pairs) == 0:
        return 0.0
    _, covered = batch_query(oracle, pairs, return_coverage=True)
    assert covered is not None
    return float(covered.mean())
