"""Upper bounds from the highway cover labelling (Section 4.2 + Lemma 5.1).

Equation 4 of the paper:

    d⊤(s, t) = min over (ri, d_i) in L(s), (rj, d_j) in L(t) of
               d_i + δH(ri, rj) + d_j

Lemma 5.1 observes that for a landmark ``r`` present in *both* labels the
two-hop term ``δL(r, s) + δL(r, t)`` already dominates every detour via a
second landmark, so common landmarks can skip the highway matrix. (In the
cross product the same term appears as ``d_s + δH(r, r) + d_t`` with a
zero diagonal, which is how the compiled kernels cover it in one pass.)

The computation itself lives in the kernel layer
(:mod:`repro.core.kernels`); this module is the validating wrapper that
canonicalizes the labelling (:func:`~repro.core.kernels.get_label_state`)
and dispatches to the selected backend.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.highway import Highway
from repro.core.kernels import KernelBackend, get_label_state, resolve_kernel
from repro.core.labels import LabelStore


def upper_bound_distance(
    labelling: LabelStore,
    highway: Highway,
    s: int,
    t: int,
    kernel: Optional[Union[KernelBackend, str]] = None,
) -> float:
    """Compute ``d⊤(s, t)`` for two non-landmark vertices.

    Returns ``inf`` when the labels cannot connect the pair through any
    landmark (e.g. different components or an empty landmark set).

    Args:
        kernel: kernel backend (instance or name) computing the cross
            product; ``None`` uses the process default
            (:func:`repro.core.kernels.get_kernel`).
    """
    backend = resolve_kernel(kernel)
    state = get_label_state(labelling, highway)
    if state.count(s) == 0 or state.count(t) == 0:
        return float("inf")
    return backend.upper_bound(state, s, t)


def upper_bound_with_witness(
    labelling: LabelStore, highway: Highway, s: int, t: int
) -> Tuple[float, int, int]:
    """Like :func:`upper_bound_distance` but also reports the arg-min.

    Returns ``(bound, ri, rj)`` where ``ri``/``rj`` are landmark *indices*
    realizing the bound (``-1`` when the bound is infinite). Used by the
    examples to explain which landmarks route a query, and by tests.
    """
    ls_idx, ls_dist = labelling.label_arrays(s)
    lt_idx, lt_dist = labelling.label_arrays(t)
    if len(ls_idx) == 0 or len(lt_idx) == 0:
        return float("inf"), -1, -1
    matrix = highway.matrix
    cross = ls_dist[:, None] + matrix[np.ix_(ls_idx, lt_idx)] + lt_dist[None, :]
    flat = int(np.argmin(cross))
    i, j = divmod(flat, cross.shape[1])
    bound = float(cross[i, j])
    if np.isinf(bound):
        return float("inf"), -1, -1
    return bound, int(ls_idx[i]), int(lt_idx[j])
