"""Upper bounds from the highway cover labelling (Section 4.2 + Lemma 5.1).

Equation 4 of the paper:

    d⊤(s, t) = min over (ri, d_i) in L(s), (rj, d_j) in L(t) of
               d_i + δH(ri, rj) + d_j

Lemma 5.1 observes that for a landmark ``r`` present in *both* labels the
two-hop term ``δL(r, s) + δL(r, t)`` already dominates every detour via a
second landmark, so common landmarks can skip the highway matrix. The
implementation exploits this: common landmarks are intersected with a
sorted merge, and the full cross-product minimization only runs over the
small label arrays (labels average ~10 entries, so the cross product is a
tiny dense numpy expression).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.highway import Highway
from repro.core.labels import LabelStore


def upper_bound_distance(
    labelling: LabelStore, highway: Highway, s: int, t: int
) -> float:
    """Compute ``d⊤(s, t)`` for two non-landmark vertices.

    Returns ``inf`` when the labels cannot connect the pair through any
    landmark (e.g. different components or an empty landmark set).
    """
    ls_idx, ls_dist = labelling.label_arrays(s)
    lt_idx, lt_dist = labelling.label_arrays(t)
    if len(ls_idx) == 0 or len(lt_idx) == 0:
        return float("inf")

    best = _common_landmark_bound(ls_idx, ls_dist, lt_idx, lt_dist)

    # Cross terms through the highway (Equation 4). Lemma 5.1 guarantees
    # pairs sharing a landmark never improve on the common-landmark term,
    # but distinct-landmark pairs still can, so evaluate the full cross
    # product — it is a (|L(s)| x |L(t)|) dense expression.
    matrix = highway.matrix
    cross = ls_dist[:, None] + matrix[np.ix_(ls_idx, lt_idx)] + lt_dist[None, :]
    cross_best = float(cross.min())
    return min(best, cross_best)


def _common_landmark_bound(
    ls_idx: np.ndarray, ls_dist: np.ndarray, lt_idx: np.ndarray, lt_dist: np.ndarray
) -> float:
    """min over landmarks in both labels of ``δL(r,s) + δL(r,t)`` (Lemma 5.1)."""
    common, s_pos, t_pos = np.intersect1d(
        ls_idx, lt_idx, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        return float("inf")
    # Promote before summing: mmap-backed stores hand out u8 distance
    # views, and two sub-256 legs can sum past the u8 range.
    return float((ls_dist[s_pos].astype(np.int64) + lt_dist[t_pos]).min())


def upper_bound_with_witness(
    labelling: LabelStore, highway: Highway, s: int, t: int
) -> Tuple[float, int, int]:
    """Like :func:`upper_bound_distance` but also reports the arg-min.

    Returns ``(bound, ri, rj)`` where ``ri``/``rj`` are landmark *indices*
    realizing the bound (``-1`` when the bound is infinite). Used by the
    examples to explain which landmarks route a query, and by tests.
    """
    ls_idx, ls_dist = labelling.label_arrays(s)
    lt_idx, lt_dist = labelling.label_arrays(t)
    if len(ls_idx) == 0 or len(lt_idx) == 0:
        return float("inf"), -1, -1
    matrix = highway.matrix
    cross = ls_dist[:, None] + matrix[np.ix_(ls_idx, lt_idx)] + lt_dist[None, :]
    flat = int(np.argmin(cross))
    i, j = divmod(flat, cross.shape[1])
    bound = float(cross[i, j])
    if np.isinf(bound):
        return float("inf"), -1, -1
    return bound, int(ls_idx[i]), int(lt_idx[j])
