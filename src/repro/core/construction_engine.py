"""HL-C: the stacked multi-landmark construction engine.

Algorithm 1 runs one pruned BFS per landmark. The BFSs are independent
(Lemma 3.11), so the looped builder in :mod:`repro.core.construction`
pays k Python-level BFS loops and touches every edge once *per
landmark*. This engine advances **up to 64 landmarks together,
level-synchronously and bit-parallel**: each vertex carries one machine
word whose bit ``i`` means "BFS i has reached me", so the visited state
is a bit-packed ``(k × n)`` matrix (stored as ``ceil(chunk/64) × n``
uint64 rows per chunk), and one BFS level is a handful of vectorized
passes — a boolean-semiring adjacency mat-vec
(:func:`~repro.graphs.csr.bitset_neighbor_or`) per frontier kind plus
O(n)-word bookkeeping — that advance *all* stacked landmarks across
*all* edges at once. It is the construction-side twin of the batch
query engine's stacked grouped search.

Correctness contract (asserted bitwise by ``tests/builder_harness.py``):

* The Lemma 3.7 label/prune split is reproduced exactly *per landmark*:
  within a level, children of ``Q_label`` claim unvisited vertices
  before children of ``Q_prune`` do (label-child words are OR-ed into
  the visited words first), and landmark children are never labelled —
  they divert into the prune frontier. Bits of different landmarks
  never interact, so stacking changes the schedule but not the
  per-landmark semantics, and the output is byte-identical to the
  looped builder.
* Every BFS still visits each reachable vertex once at its true level,
  so the highway rows ``δH(r, ·)`` fall out as a by-product, exactly as
  in the looped builder.

Memory model: ``chunk_size`` (default 64) bounds how many landmarks are
in flight; a chunk keeps ``ceil(chunk/64)`` uint64 words per vertex for
each of the visited matrix and the two frontier masks, i.e.
``O(chunk × n / 8)`` bytes total. 64 landmarks on a 100k-vertex graph
cost ~2.4 MB of BFS state, independent of the total landmark count k —
chunking is what keeps 64+ landmark builds on 100k-vertex graphs in RAM
instead of materializing unpacked ``k × n`` state.

``benchmarks/bench_construction.py`` records the speedup over the
looped builder (BA/WS/grid graphs, k ∈ {16, 64}).
"""

from __future__ import annotations

import sys
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.highway import Highway
from repro.core.labels import LabelAccumulator, LabelStore
from repro.errors import LandmarkError
from repro.graphs.csr import bitset_neighbor_or
from repro.graphs.graph import Graph
from repro.utils.timing import TimeBudget

#: Default in-flight landmark count — one uint64 word per vertex.
DEFAULT_CHUNK_SIZE = 64

_WORD_BITS = 64
_BIT_RANGE = np.arange(_WORD_BITS, dtype=np.uint64)
_ONE = np.uint64(1)
_ZERO = np.uint64(0)
_LITTLE_ENDIAN = (
    np.dtype(np.uint64).byteorder in ("<", "=") and sys.byteorder == "little"
)


#: Words decomposed per ``_bit_positions`` slice — the ``unpackbits``
#: temporary is 64 bytes per word, so slicing caps it at 4 MiB instead
#: of 64 bytes × frontier size on million-vertex levels.
_BIT_SLICE = 1 << 16


def _bit_positions(words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Decompose a word array into (element-index, bit-index) pairs.

    Returned pairs are sorted by element index, then bit index. On
    little-endian platforms the words are unpacked byte-wise with
    ``np.unpackbits`` (flat bit ``i`` of word ``w`` lands at
    ``w * 64 + i``); elsewhere fall back to a broadcast shift.
    Large inputs are processed in slices so the 64-bytes-per-word
    unpack temporary stays bounded.
    """
    if _LITTLE_ENDIAN:
        if words.size <= _BIT_SLICE:
            positions = np.flatnonzero(
                np.unpackbits(words.view(np.uint8), bitorder="little")
            )
            return positions >> 6, positions & 63
        elements = []
        bits = []
        for lo in range(0, words.size, _BIT_SLICE):
            positions = np.flatnonzero(
                np.unpackbits(
                    words[lo : lo + _BIT_SLICE].view(np.uint8),
                    bitorder="little",
                )
            )
            elements.append((positions >> 6) + lo)
            bits.append(positions & 63)
        return np.concatenate(elements), np.concatenate(bits)
    flags = (words[:, None] >> _BIT_RANGE) & _ONE != _ZERO
    return np.nonzero(flags)


def stacked_pruned_bfs(
    graph: Graph,
    roots: np.ndarray,
    landmark_mask: np.ndarray,
    landmark_ids: np.ndarray,
    budget: Optional[TimeBudget] = None,
    edge_block: Optional[int] = None,
    level_hook: Optional[Callable[[], None]] = None,
    block_hook: Optional[Callable[[], None]] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray]:
    """Run Algorithm 1's pruned BFS for several landmarks in lock step.

    Args:
        graph: the input graph ``G``.
        roots: vertex ids of the landmarks to run BFSs *from* (one slot
            each) — a chunk of, or for dynamic repair a subset of, the
            full landmark set.
        landmark_mask: boolean mask over vertices marking **all** of
            ``R`` (pruning is against the full landmark set even when
            ``roots`` is a subset).
        landmark_ids: vertex ids of all landmarks in landmark-index
            order (used to read off the highway rows).
        budget: optional construction budget, checked once per level.
        edge_block: forwarded to
            :func:`~repro.graphs.csr.bitset_neighbor_or` — sweeps the
            adjacency in row-aligned blocks of at most this many
            directed edges, bounding the gather temporary for
            out-of-core builds (bitwise-identical results).
        level_hook: called once after each completed BFS level; the
            out-of-core builder uses it to drop resident pages of a
            memmapped adjacency between levels.
        block_hook: forwarded to
            :func:`~repro.graphs.csr.bitset_neighbor_or` — called after
            each edge block so swept adjacency pages can be dropped
            mid-level, bounding resident memory by ``edge_block``.

    Returns:
        ``(per_root_vertices, per_root_distances, rows)``: for slot
        ``i``, ``per_root_vertices[i]`` / ``per_root_distances[i]`` list
        the vertices labelled by ``roots[i]`` with their distances, and
        ``rows[i][j] = d_G(roots[i], landmark_ids[j])`` (``inf`` when
        unreachable) — the same contract as k calls to
        :func:`~repro.core.construction.pruned_bfs_from_landmark`.
    """
    n = graph.num_vertices
    num_roots = len(roots)
    k = len(landmark_ids)
    if num_roots == 0:
        return [], [], np.empty((0, k), dtype=float)
    roots = np.asarray(roots, dtype=np.int64)
    landmark_pos = np.full(n, -1, dtype=np.int64)
    landmark_pos[landmark_ids] = np.arange(k, dtype=np.int64)

    num_words = (num_roots + _WORD_BITS - 1) // _WORD_BITS
    slots = np.arange(num_roots, dtype=np.int64)
    root_bit = np.left_shift(_ONE, (slots & (_WORD_BITS - 1)).astype(np.uint64))
    # Per-word state: visited bits and the two per-landmark frontiers.
    visited = np.zeros((num_words, n), dtype=np.uint64)
    label_frontier = np.zeros((num_words, n), dtype=np.uint64)
    prune_frontier = np.zeros((num_words, n), dtype=np.uint64)
    # Distinct roots make (word, root) index pairs distinct, so |= is safe.
    visited[slots >> 6, roots] |= root_bit
    label_frontier[slots >> 6, roots] |= root_bit

    highway_rows = np.full((num_roots, k), -1, dtype=np.int64)
    highway_rows[slots, landmark_pos[roots]] = 0

    out_slots: List[np.ndarray] = []
    out_vertices: List[np.ndarray] = []
    out_distances: List[np.ndarray] = []
    # Narrow slot keys keep the final grouping sort (radix) cheap.
    slot_dtype = np.uint16 if num_roots <= np.iinfo(np.uint16).max else np.int64
    # Fixed work buffers: the level step runs entirely in-place so a
    # level allocates nothing O(n) — on memory-bound out-of-core builds
    # the per-level churn would otherwise linger on the allocator's
    # free lists and inflate the RSS high-water mark.
    scratch = np.empty(n, dtype=np.uint64)
    new = np.empty(n, dtype=np.uint64)
    shadow = np.empty(n, dtype=np.uint64)
    depth = 0
    while label_frontier.any() or prune_frontier.any():
        if budget is not None:
            budget.check()
        depth += 1
        for j in range(num_words):
            # Children of Q_label claim vertices first (Lemma 3.7's "iff").
            if label_frontier[j].any():
                children = bitset_neighbor_or(
                    graph.csr,
                    label_frontier[j],
                    scratch,
                    edge_block=edge_block,
                    block_hook=block_hook,
                )
                # new = children & ~visited[j], without temporaries.
                np.bitwise_not(visited[j], out=new)
                np.bitwise_and(children, new, out=new)
                visited[j] |= new
            else:
                new[:] = _ZERO
            # Children of Q_prune: visited at their true level, never labelled.
            if prune_frontier[j].any():
                shadow_children = bitset_neighbor_or(
                    graph.csr,
                    prune_frontier[j],
                    scratch,
                    edge_block=edge_block,
                    block_hook=block_hook,
                )
                np.bitwise_not(visited[j], out=shadow)
                np.bitwise_and(shadow_children, shadow, out=shadow)
                visited[j] |= shadow
            else:
                shadow[:] = _ZERO
            # Landmarks reached this level: record highway distances.
            new_at_landmarks = new[landmark_ids]
            reached_landmarks = new_at_landmarks | shadow[landmark_ids]
            if reached_landmarks.any():
                pos, bit = _bit_positions(reached_landmarks)
                highway_rows[j * _WORD_BITS + bit, pos] = depth
            # Emit (slot, vertex, depth) label entries for non-landmarks.
            newly = np.flatnonzero(new)
            newly = newly[~landmark_mask[newly]]
            if newly.size:
                which, bit = _bit_positions(new[newly])
                out_slots.append((j * _WORD_BITS + bit).astype(slot_dtype))
                out_vertices.append(newly[which])
                out_distances.append(np.full(bit.size, depth, dtype=np.int32))
            # Landmark children of Q_label divert into the prune frontier.
            new[landmark_ids] = _ZERO
            shadow[landmark_ids] |= new_at_landmarks
            label_frontier[j] = new
            prune_frontier[j] = shadow
        if level_hook is not None:
            level_hook()

    if out_slots:
        all_slots = np.concatenate(out_slots)
        all_vertices = np.concatenate(out_vertices)
        all_distances = np.concatenate(out_distances)
        # The per-level pieces are dead once concatenated; dropping them
        # now halves this epilogue's peak footprint on big graphs.
        out_slots.clear()
        out_vertices.clear()
        out_distances.clear()
    else:
        all_slots = np.empty(0, dtype=slot_dtype)
        all_vertices = np.empty(0, dtype=np.int64)
        all_distances = np.empty(0, dtype=np.int32)
    if num_roots == 1:
        # One root: every entry already belongs to slot 0 in emission
        # (depth) order — the stable grouping sort would be an identity
        # permutation, so skip it and its two gather copies.
        per_root_vertices = [all_vertices]
        per_root_distances = [all_distances]
    else:
        order = np.argsort(all_slots, kind="stable")
        splits = np.cumsum(np.bincount(all_slots, minlength=num_roots))[:-1]
        per_root_vertices = np.split(all_vertices[order], splits)
        per_root_distances = np.split(all_distances[order], splits)
    rows = highway_rows.astype(float)
    rows[rows < 0] = np.inf
    return per_root_vertices, per_root_distances, rows


def build_highway_cover_labelling_stacked(
    graph: Graph,
    landmarks: Sequence[int],
    budget_s: Optional[float] = None,
    chunk_size: Optional[int] = None,
    store: str = "vertex",
) -> Tuple[LabelStore, Highway]:
    """Algorithm 1 over all landmarks via the stacked engine (HL-C).

    Args:
        graph: input graph (connectivity not required).
        landmarks: landmark vertex ids; order fixes landmark indices.
        budget_s: optional wall-clock budget; exceeding it raises
            :class:`~repro.errors.ConstructionBudgetExceeded`.
        chunk_size: landmarks advanced together per pass (default
            :data:`DEFAULT_CHUNK_SIZE`); bounds peak BFS state to
            ``O(chunk_size * n / 8)`` bytes.
        store: label-store backend to emit (``"vertex"`` or
            ``"landmark"``, see :mod:`repro.core.labels`).

    Returns:
        ``(labelling, highway)`` — byte-identical to the looped builder.
    """
    landmark_ids = np.asarray([int(v) for v in landmarks], dtype=np.int64)
    if landmark_ids.size == 0:
        raise LandmarkError("need at least one landmark")
    for v in landmark_ids:
        graph.validate_vertex(int(v))
    chunk = DEFAULT_CHUNK_SIZE if chunk_size is None else int(chunk_size)
    if chunk < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")

    highway = Highway(landmark_ids)
    mask = highway.landmark_mask(graph.num_vertices)
    accumulator = LabelAccumulator(graph.num_vertices, len(landmark_ids))
    budget = TimeBudget(budget_s, method="HL-C")
    for start in range(0, len(landmark_ids), chunk):
        budget.check()
        stop = min(start + chunk, len(landmark_ids))
        per_vertices, per_distances, rows = stacked_pruned_bfs(
            graph, landmark_ids[start:stop], mask, landmark_ids, budget=budget
        )
        for slot, index in enumerate(range(start, stop)):
            accumulator.add_landmark_result(index, per_vertices[slot], per_distances[slot])
            highway.set_row(int(landmark_ids[index]), rows[slot])
    return accumulator.freeze_as(store), highway
