"""Integrity checking for snapshots and write-ahead logs (``repro fsck``).

:func:`load_oracle` already refuses corrupt snapshots and
:class:`~repro.core.wal.WriteAheadLog` refuses corrupt logs — but a
refusal names the *first* violation it trips over and needs a graph in
hand. This module is the operator's diagnostic pass: it validates every
invariant of a file **without** loading it into an oracle, collects
*all* findings instead of stopping at the first, and reports what is
salvageable (which sections of a truncated snapshot are intact, how
many records of a torn log survive).

Snapshot invariants checked (see :mod:`repro.core.serialization` for
the format):

* magic, version, known flag bits, 8-bit ids only when ``k <= 256``;
* file size exactly matches the section layout the header implies
  (with per-section salvage reporting when truncated);
* v2 sections start on 64-byte boundaries;
* label offsets: ``offsets[0] == 0``, ``offsets[-1] == entries``,
  non-decreasing;
* label landmark ids in ``[0, k)`` (the u8/u16 id-width contract);
* highway matrix: zero diagonal, symmetric, and the ``0xFFFF``
  unreachable sentinel used consistently (a sentinel in one direction
  of a pair means unreachable — the mirror cell must agree).

WAL invariants checked (see :mod:`repro.core.wal`): magic, version,
record length, per-record checksum, known opcodes — and a torn tail is
reported with the count of salvageable records in front of it.

Disk-CSR invariants checked (see :mod:`repro.graphs.disk_csr`): magic,
version, flags, the size/layout equation with per-section salvage,
indptr base/terminal/monotonicity, adjacency id range and per-row
strict ordering.

Programmatic use returns a :class:`FsckReport`; the CLI command
``repro fsck`` prints findings and exits non-zero on any error.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.core import serialization as _ser
from repro.core import wal as _wal
from repro.errors import WalError
from repro.graphs import disk_csr as _disk

__all__ = [
    "Finding",
    "FsckReport",
    "fsck_path",
    "fsck_snapshot",
    "fsck_wal",
    "fsck_disk_csr",
]

PathLike = Union[str, Path]

_SECTION_NAMES = ("landmarks", "highway", "offsets", "label ids", "label distances")
_DISK_SECTION_NAMES = ("indptr", "adjacency")


@dataclass(frozen=True)
class Finding:
    """One fsck observation.

    ``severity`` is ``"error"`` (the file violates an invariant and
    must not be served), ``"warning"`` (suspicious but loadable), or
    ``"info"`` (salvage guidance). ``code`` is a stable machine-readable
    slug; ``message`` names the violated invariant precisely.
    """

    severity: str
    code: str
    message: str


@dataclass
class FsckReport:
    """Everything fsck learned about one file."""

    path: Path
    kind: str  # "snapshot" | "wal" | "unknown"
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not any(f.severity == "error" for f in self.findings)

    def error(self, code: str, message: str) -> None:
        """Record an invariant violation."""
        self.findings.append(Finding("error", code, message))

    def warn(self, code: str, message: str) -> None:
        """Record a suspicious-but-loadable observation."""
        self.findings.append(Finding("warning", code, message))

    def info(self, code: str, message: str) -> None:
        """Record salvage guidance."""
        self.findings.append(Finding("info", code, message))


def fsck_path(path: PathLike) -> FsckReport:
    """Check one file, sniffing whether it is a snapshot or a WAL.

    Unreadable files and unrecognized magic are reported as errors on
    a ``kind="unknown"`` report rather than raised, so a batch fsck
    over a directory never aborts half-way.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            magic = handle.read(4)
    except OSError as exc:
        report = FsckReport(path, "unknown")
        report.error("unreadable", f"cannot read file: {exc}")
        return report
    if magic == _ser._MAGIC:
        return fsck_snapshot(path)
    if magic == _wal.WAL_MAGIC:
        return fsck_wal(path)
    if magic == _disk.DISK_CSR_MAGIC:
        return fsck_disk_csr(path)
    report = FsckReport(path, "unknown")
    report.error(
        "bad-magic",
        f"unrecognized magic {magic!r} — not a snapshot "
        f"({_ser._MAGIC!r}), WAL ({_wal.WAL_MAGIC!r}) or disk CSR "
        f"({_disk.DISK_CSR_MAGIC!r})",
    )
    return report


# -- Snapshot checks ---------------------------------------------------------


def fsck_snapshot(path: PathLike) -> FsckReport:
    """Validate every invariant of a v1/v2 snapshot file.

    Checks are layered: header sanity first, then the size/layout
    equation, then — for each array section that is fully present —
    the content invariants. A truncated file therefore still gets its
    intact prefix validated, and the report says exactly which sections
    survive (what a recovery can salvage).
    """
    path = Path(path)
    report = FsckReport(path, "snapshot")
    try:
        data = path.read_bytes()
    except OSError as exc:
        report.error("unreadable", f"cannot read file: {exc}")
        return report

    header_bytes = 4 + struct.calcsize(_ser._HEADER_STRUCT)
    if len(data) < header_bytes:
        report.error(
            "truncated-header",
            f"file is {len(data)} bytes — shorter than the "
            f"{header_bytes}-byte header; nothing is salvageable",
        )
        return report
    if data[:4] != _ser._MAGIC:
        report.error("bad-magic", f"magic is {data[:4]!r}, expected {_ser._MAGIC!r}")
        return report
    version, flags, n, k, entries = struct.unpack(
        _ser._HEADER_STRUCT, data[4:header_bytes]
    )
    if version not in _ser._SUPPORTED_VERSIONS:
        report.error("bad-version", f"unsupported index version {version}")
        return report
    if flags & ~_ser._KNOWN_FLAGS:
        report.error("unknown-flags", f"unknown flag bits 0x{flags:x}")
        return report
    narrow = bool(flags & _ser._FLAG_NARROW_IDS)
    if narrow and k > 256:
        report.error(
            "narrow-overflow",
            f"header claims 8-bit landmark ids with k={k} (> 256)",
        )
        return report

    sections = _ser._section_offsets(version, n, k, entries, narrow)
    expected = sections[-1]
    if version == _ser._V2:
        misaligned = [
            name
            for name, start in zip(_SECTION_NAMES, sections)
            if start % _ser._ALIGNMENT
        ]
        if misaligned:  # pragma: no cover - layout-equation guard
            report.error(
                "misaligned-section",
                f"v2 sections not on {_ser._ALIGNMENT}-byte boundaries: "
                f"{', '.join(misaligned)}",
            )
    if len(data) != expected:
        kind = "truncated" if len(data) < expected else "oversized"
        report.error(
            f"{kind}-file",
            f"header (n={n}, k={k}, entries={entries}) implies "
            f"{expected} bytes, file has {len(data)}",
        )
        if len(data) > expected:
            report.info(
                "salvage",
                f"all sections are present; the {len(data) - expected} "
                f"trailing bytes are foreign",
            )
        else:
            intact = [
                name
                for name, start, end in zip(
                    _SECTION_NAMES, sections, sections[1:]
                )
                if end <= len(data)
            ]
            report.info(
                "salvage",
                "intact sections: " + (", ".join(intact) if intact else "none"),
            )

    def _section(index: int, count: int, dtype: str) -> Optional[np.ndarray]:
        start = sections[index]
        nbytes = count * np.dtype(dtype).itemsize
        if start + nbytes > len(data):
            return None
        return np.frombuffer(data, dtype=dtype, count=count, offset=start)

    highway = _section(1, k * k, "<u2")
    if highway is not None and k:
        matrix = highway.reshape(k, k)
        diagonal = matrix[np.arange(k), np.arange(k)]
        if (diagonal != 0).any():
            bad = int(np.flatnonzero(diagonal != 0)[0])
            report.error(
                "highway-diagonal",
                f"highway diagonal must be zero (d(r, r) = 0); "
                f"entry [{bad}, {bad}] is {int(diagonal[bad])}",
            )
        asym = np.argwhere(matrix != matrix.T)
        if len(asym):
            i, j = (int(x) for x in asym[0])
            report.error(
                "highway-asymmetric",
                f"highway matrix must be symmetric (undirected graph); "
                f"[{i}, {j}]={int(matrix[i, j])} but "
                f"[{j}, {i}]={int(matrix[j, i])} — the 0xFFFF unreachable "
                f"sentinel must agree in both directions",
            )

    offsets = _section(2, n + 1, "<i8")
    if offsets is not None:
        if int(offsets[0]) != 0:
            report.error(
                "offsets-base", f"offsets[0] is {int(offsets[0])}, expected 0"
            )
        if int(offsets[-1]) != entries:
            report.error(
                "offsets-entries",
                f"offsets[-1] is {int(offsets[-1])}, header claims "
                f"{entries} entries",
            )
        if n and not bool((np.diff(offsets) >= 0).all()):
            report.error(
                "offsets-order", "label offsets are not non-decreasing"
            )

    ids = _section(3, entries, "<u1" if narrow else "<u4")
    if ids is not None and entries:
        top = int(ids.max())
        if top >= k:
            report.error(
                "id-range",
                f"label landmark id {top} out of range [0, {k}) — "
                f"{'u8' if narrow else 'u32'} ids must index the "
                f"landmark set",
            )

    if report.ok:
        report.info(
            "clean",
            f"v{version} snapshot, n={n}, k={k}, entries={entries}, "
            f"{'narrow' if narrow else 'wide'} ids",
        )
    return report


# -- Disk-CSR checks ---------------------------------------------------------


def fsck_disk_csr(path: PathLike) -> FsckReport:
    """Validate every invariant of an RPDC disk-backed CSR file.

    Layered like :func:`fsck_snapshot`: header sanity, then the
    size/layout equation (with per-section salvage reporting on
    truncation), then — for each section fully present — the content
    invariants :func:`~repro.graphs.disk_csr.open_disk_csr` relies on:

    * ``indptr[0] == 0``, ``indptr[-1] ==`` the header's directed edge
      count, non-decreasing;
    * adjacency ids in ``[0, n)``;
    * every adjacency row strictly increasing (sorted, duplicate-free —
      the :func:`~repro.graphs.csr.build_csr` contract binary search
      depends on).
    """
    path = Path(path)
    report = FsckReport(path, "disk-csr")
    try:
        data = path.read_bytes()
    except OSError as exc:
        report.error("unreadable", f"cannot read file: {exc}")
        return report

    header_bytes = _disk._HEADER_BYTES
    if len(data) < header_bytes:
        report.error(
            "truncated-header",
            f"file is {len(data)} bytes — shorter than the "
            f"{header_bytes}-byte header; nothing is salvageable",
        )
        return report
    if data[:4] != _disk.DISK_CSR_MAGIC:
        report.error(
            "bad-magic",
            f"magic is {data[:4]!r}, expected {_disk.DISK_CSR_MAGIC!r}",
        )
        return report
    version, flags, n, directed, name_len = struct.unpack(
        _disk._HEADER_STRUCT, data[4:header_bytes]
    )
    if version != _disk.DISK_CSR_VERSION:
        report.error("bad-version", f"unsupported disk-CSR version {version}")
        return report
    if flags & ~_disk._KNOWN_FLAGS:
        report.error("unknown-flags", f"unknown flag bits 0x{flags:x}")
        return report
    wide = bool(flags & _disk.FLAG_WIDE_INDICES)
    if len(data) < header_bytes + name_len:
        report.error(
            "truncated-name",
            f"header claims a {name_len}-byte name, file ends inside it",
        )
        return report

    indptr_start, indices_start, expected = _disk.disk_csr_sections(
        n, directed, wide, name_len
    )
    sections = (indptr_start, indices_start)
    misaligned = [
        name
        for name, start in zip(_DISK_SECTION_NAMES, sections)
        if start % _disk._ALIGNMENT
    ]
    if misaligned:  # pragma: no cover - layout-equation guard
        report.error(
            "misaligned-section",
            f"sections not on {_disk._ALIGNMENT}-byte boundaries: "
            f"{', '.join(misaligned)}",
        )
    if len(data) != expected:
        kind = "truncated" if len(data) < expected else "oversized"
        report.error(
            f"{kind}-file",
            f"header (n={n}, directed={directed}, "
            f"{'i8' if wide else 'i4'} ids) implies {expected} bytes, "
            f"file has {len(data)}",
        )
        if len(data) > expected:
            report.info(
                "salvage",
                f"all sections are present; the {len(data) - expected} "
                f"trailing bytes are foreign",
            )
        else:
            ends = (indices_start, expected)
            intact = [
                name
                for name, end in zip(_DISK_SECTION_NAMES, ends)
                if end <= len(data)
            ]
            report.info(
                "salvage",
                "intact sections: " + (", ".join(intact) if intact else "none"),
            )

    indptr = None
    if indptr_start + 8 * (n + 1) <= len(data):
        indptr = np.frombuffer(data, dtype="<i8", count=n + 1, offset=indptr_start)
        if int(indptr[0]) != 0:
            report.error(
                "indptr-base", f"indptr[0] is {int(indptr[0])}, expected 0"
            )
        if int(indptr[-1]) != directed:
            report.error(
                "indptr-entries",
                f"indptr[-1] is {int(indptr[-1])}, header claims "
                f"{directed} directed edges",
            )
        if n and not bool((np.diff(indptr) >= 0).all()):
            report.error("indptr-order", "indptr is not non-decreasing")

    index_dtype = "<i8" if wide else "<i4"
    itemsize = 8 if wide else 4
    if directed and indices_start + itemsize * directed <= len(data):
        indices = np.frombuffer(
            data, dtype=index_dtype, count=directed, offset=indices_start
        )
        low, high = int(indices.min()), int(indices.max())
        if low < 0 or high >= n:
            report.error(
                "index-range",
                f"adjacency ids span [{low}, {high}], must lie in [0, {n})",
            )
        elif indptr is not None and report.ok:
            # Rows must be strictly increasing; a non-increase anywhere
            # except a row boundary is a violation.
            row_start = np.zeros(directed + 1, dtype=bool)
            row_start[indptr[:-1]] = True
            bad = (indices[1:] <= indices[:-1]) & ~row_start[1:directed]
            if bad.any():
                pos = int(np.flatnonzero(bad)[0]) + 1
                row = int(np.searchsorted(indptr, pos, side="right")) - 1
                report.error(
                    "row-order",
                    f"adjacency row of vertex {row} is not strictly "
                    f"increasing at flat position {pos}",
                )

    if report.ok:
        report.info(
            "clean",
            f"v{version} disk CSR, n={n}, directed={directed}, "
            f"{'i8' if wide else 'i4'} ids",
        )
    return report


# -- WAL checks --------------------------------------------------------------


def fsck_wal(path: PathLike) -> FsckReport:
    """Validate a write-ahead log: header, checksums, torn tail.

    A torn tail — a partial record at EOF — is reported as an error
    (the file is not clean) together with the count of salvageable
    records before it; reopening the log with
    :class:`~repro.core.wal.WriteAheadLog` repairs exactly that case.
    Checksum mismatches and impossible record lengths *inside* the
    valid region are unrepairable corruption.
    """
    path = Path(path)
    report = FsckReport(path, "wal")
    try:
        scan = _wal.scan_wal(path)
    except OSError as exc:
        report.error("unreadable", f"cannot read file: {exc}")
        return report
    except WalError as exc:
        # scan_wal raises with the precise invariant in the message;
        # classify by what it found.
        message = str(exc)
        # Match scan_wal's exact phrases, not loose substrings — the
        # message embeds the file path, which can contain anything.
        if "not a repro WAL" in message:
            code = "bad-header"
        elif "unsupported WAL version" in message:
            code = "bad-version"
        elif "checksum mismatch" in message:
            code = "bad-checksum"
        elif "impossible record length" in message:
            code = "bad-length"
        else:
            code = "corrupt"
        report.error(code, message)
        salvaged = _salvageable_prefix(path)
        if salvaged is not None:
            report.info(
                "salvage",
                f"{salvaged} complete records precede the corruption; "
                f"truncating there by hand would lose every later update",
            )
        return report
    if scan.torn_bytes:
        report.error(
            "torn-tail",
            f"{scan.torn_bytes}-byte partial record at end of file "
            f"(crash mid-append; the update was never acknowledged)",
        )
        report.info(
            "salvage",
            f"{len(scan.records)} complete records are intact; reopening "
            f"the log (WriteAheadLog) truncates the torn tail",
        )
        return report
    report.info("clean", f"{len(scan.records)} records, no torn tail")
    return report


def _salvageable_prefix(path: Path) -> Optional[int]:
    """Count complete records before the first corruption, if countable."""
    try:
        data = path.read_bytes()
    except OSError:
        return None
    if len(data) < _wal.HEADER_BYTES or data[:4] != _wal.WAL_MAGIC:
        return None
    import zlib

    count = 0
    cursor = _wal.HEADER_BYTES
    while cursor + 8 <= len(data):
        length, crc = struct.unpack("<II", data[cursor : cursor + 8])
        payload = data[cursor + 8 : cursor + 8 + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        count += 1
        cursor += 8 + length
    return count
