"""Streaming edge-list ingest: SNAP-style text → disk-backed CSR.

:func:`repro.graphs.io.read_edge_list` materializes every parsed edge
on the heap, which caps it at graphs that fit in RAM several times
over.  This module ingests the same format (whitespace-separated
``u v`` pairs, ``#``/``%`` comments, blank lines, CRLF endings, extra
trailing columns, arbitrary non-negative 64-bit ids, optionally
gzipped) with **bounded memory**, writing an RPDC disk-backed CSR
(:mod:`repro.graphs.disk_csr`) that :func:`~repro.graphs.disk_csr.open_disk_csr`
maps zero-copy.

The pipeline is three sequential passes over spill files, classic
external-memory style; peak memory is ``O(n)`` for the id map plus the
configured ``memory_budget_bytes`` of scratch — never ``O(m)``:

1. **Parse** — the text is read in chunks; each chunk's data lines are
   tokenized in bulk (with a per-line fallback that reports exact
   ``file:line`` positions for malformed input), self-loops are dropped
   (their endpoints still count as vertices, matching
   ``read_edge_list``), pairs are canonicalized to ``(lo, hi)`` raw ids
   and appended to a binary spill file.  A running sorted-unique id
   array (the only ``O(n)`` state) accumulates the vertex set.
2. **Scatter** — the spill is re-read in chunks, raw ids are compacted
   by binary search against the id array (the same sorted-numeric-id
   convention as ``read_edge_list``), and both directions of every pair
   are scattered into head-range bucket files, so all copies of a
   directed edge land in the same bucket.
3. **Assemble** — each bucket (sized to the memory budget) is loaded,
   sorted and deduplicated, its degrees accumulated into the global
   ``indptr``, and its adjacency rows appended to the adjacency spool;
   ascending bucket order makes the concatenation globally sorted by
   ``(head, tail)`` — byte-identical to
   :func:`~repro.graphs.csr.build_csr` on the same edges.

The final file is published atomically by
:func:`~repro.graphs.disk_csr.publish_disk_csr`.
"""

from __future__ import annotations

import gzip
import math
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graphs.disk_csr import NARROW_ID_MAX, publish_disk_csr
from repro.utils.memory import trim_heap

PathLike = Union[str, Path]

#: Text read chunk (bytes of compressed-or-not input per parse step).
DEFAULT_CHUNK_BYTES = 4 << 20
#: Scratch budget for the scatter/assemble passes (bucket sizing).
DEFAULT_MEMORY_BUDGET = 64 << 20
_PAIR_BYTES = 16  # one canonical (lo, hi) int64 pair in the spill file
_MAX_BUCKETS = 512  # bounds simultaneously-open bucket files
# Parse chunks between trim_heap() calls: the id-set union churns
# ~3x |ids| of scratch per chunk, which glibc retains on free lists.
_TRIM_EVERY_CHUNKS = 16
# Lines tokenized per parse batch.  Per-line Python objects (stripped
# bytes, token lists) cost ~20-30x their text size in heap, so the
# fallback parser bounds them by line count, not by chunk_bytes.
_PARSE_BATCH_LINES = 32768
# Text bytes handed to one vectorized parse attempt; bounds its int64
# per-byte scratch arrays to a few MiB regardless of chunk_bytes.
_PARSE_SEGMENT_BYTES = 256 << 10
# 10^0..10^18 — every value a 18-digit token can contribute.  Longer
# tokens (only possible near the int64 boundary) take the fallback.
_POW10 = 10 ** np.arange(19, dtype=np.int64)


@dataclass(frozen=True)
class IngestReport:
    """What one :func:`ingest_edge_list` run saw and produced."""

    source: str
    out_path: str
    num_vertices: int
    num_edges: int
    num_directed_edges: int
    lines_total: int
    lines_data: int
    self_loops: int
    duplicates: int
    buckets: int
    wide: bool
    bytes_written: int

    def summary(self) -> str:
        """One-line human-readable digest (CLI output)."""
        width = "i8" if self.wide else "i4"
        return (
            f"{self.source} -> {self.out_path}: n={self.num_vertices} "
            f"m={self.num_edges} ({width} ids, {self.bytes_written} bytes, "
            f"{self.lines_total} lines, {self.self_loops} self-loops, "
            f"{self.duplicates} duplicates, {self.buckets} buckets)"
        )


def _open_stream(path: Path) -> IO[bytes]:
    """Open the edge list for binary reading, transparently gunzipping."""
    raw = path.open("rb")
    head = raw.read(2)
    raw.seek(0)
    if head == b"\x1f\x8b":
        return gzip.GzipFile(fileobj=raw)
    return raw


def _parse_lines_slow(
    lines: List[bytes], line_base: int, path: Path
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-line fallback parser with exact error positions.

    Used when a chunk fails the uniform two-tokens-per-line fast path:
    extra columns, malformed rows, non-integer or negative ids.
    """
    heads: List[int] = []
    tails: List[int] = []
    for offset, raw_line in enumerate(lines):
        line_no = line_base + offset + 1
        stripped = raw_line.strip()
        if not stripped or stripped[:1] in (b"#", b"%"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphError(
                f"{path}:{line_no}: expected 'u v', got "
                f"{raw_line.decode('utf-8', 'replace')!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"{path}:{line_no}: non-integer vertex id") from exc
        if u < 0 or v < 0:
            raise GraphError(f"{path}:{line_no}: negative vertex id")
        heads.append(u)
        tails.append(v)
    return (
        np.asarray(heads, dtype=np.int64),
        np.asarray(tails, dtype=np.int64),
    )


def _parse_batch(
    lines: List[bytes], line_base: int, path: Path
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Parse one bounded batch of raw lines into (heads, tails, count).

    The fast path strips and filters comments, then tokenizes the whole
    batch in one go; any irregularity (extra columns, short rows,
    non-integer or negative ids) re-parses the batch line by line for a
    precise diagnostic.
    """
    data_lines = [
        s
        for s in (line.strip() for line in lines)
        if s and s[:1] not in (b"#", b"%")
    ]
    if not data_lines:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            0,
        )
    # maxsplit=2 keeps first-two-token extraction cheap while ignoring
    # extra trailing columns exactly like read_edge_list does.
    token_pairs = [s.split(None, 2) for s in data_lines]
    if all(len(t) >= 2 for t in token_pairs):
        try:
            flat = np.fromiter(
                (int(x) for t in token_pairs for x in (t[0], t[1])),
                dtype=np.int64,
                count=2 * len(token_pairs),
            )
        except (ValueError, OverflowError):
            flat = None
        if flat is not None and flat.min() >= 0:
            pairs = flat.reshape(-1, 2)
            return pairs[:, 0], pairs[:, 1], len(data_lines)
    heads, tails = _parse_lines_slow(lines, line_base, path)
    return heads, tails, len(data_lines)


def _parse_segment_fast(segment: bytes) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
    """Vectorized parse of a regular text segment, or None to fall back.

    The fast path handles the overwhelmingly common shape — every line
    exactly ``<digits><space-or-tab><digits>\\n`` — with numpy digit
    arithmetic and **zero per-line Python objects**: per-line heap churn
    is what fragments the allocator and inflates the resident set on
    100M+-line inputs.  Anything else (comments, blank lines, CRLF,
    extra columns, negatives, >18-digit ids) returns None and is
    re-parsed by the exact per-line fallback.
    """
    arr = np.frombuffer(segment, dtype=np.uint8)
    if arr.size == 0 or arr[-1] != 10:
        return None
    is_digit = (arr >= 48) & (arr <= 57)
    is_nl = arr == 10
    is_blank = (arr == 32) | (arr == 9)
    sep = ~is_digit
    if not bool((is_digit | is_nl | is_blank).all()):
        return None
    # No adjacent separators (empty tokens, blank lines, trailing
    # blanks) and a digit up front: every line is then token-sep-token.
    if not bool(is_digit[0]) or bool((sep[1:] & sep[:-1]).any()):
        return None
    nl_pos = np.flatnonzero(is_nl)
    blank_cum = np.cumsum(is_blank, dtype=np.int64)
    tokens_per_line = np.diff(blank_cum[nl_pos], prepend=0) + 1
    if not bool((tokens_per_line == 2).all()):
        return None
    sep_pos = np.flatnonzero(sep)  # one separator terminates each token
    starts = np.empty(sep_pos.size, dtype=np.int64)
    starts[0] = 0
    starts[1:] = sep_pos[:-1] + 1
    if int((sep_pos - starts).max()) > 18:
        return None
    # value(token) = sum over its digits d_i * 10^(distance from the end)
    position = np.arange(arr.size, dtype=np.int64)
    token_of = np.searchsorted(sep_pos, position, side="left")
    exponent = np.where(is_digit, sep_pos[token_of] - 1 - position, 0)
    contrib = np.where(is_digit, (arr - 48).astype(np.int64), 0)
    values = np.add.reduceat(contrib * _POW10[exponent], starts)
    return values[0::2], values[1::2], int(nl_pos.size)


def _parse_lines_fallback(
    lines: List[bytes], line_base: int, path: Path
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Per-line parse of one segment, batched to bound object churn."""
    if len(lines) <= _PARSE_BATCH_LINES:
        return _parse_batch(lines, line_base, path)
    heads_parts = []
    tails_parts = []
    data_count = 0
    for start in range(0, len(lines), _PARSE_BATCH_LINES):
        batch = lines[start : start + _PARSE_BATCH_LINES]
        heads, tails, count = _parse_batch(batch, line_base + start, path)
        data_count += count
        if heads.size:
            heads_parts.append(heads)
            tails_parts.append(tails)
    if not heads_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), data_count
    return (
        np.concatenate(heads_parts),
        np.concatenate(tails_parts),
        data_count,
    )


def _parse_chunk(
    block: bytes, line_base: int, path: Path
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Parse one newline-aligned text block into (heads, tails, count).

    The block is walked in :data:`_PARSE_SEGMENT_BYTES` segments split
    at line boundaries; each segment tries the vectorized fast path and
    falls back to the exact per-line parser (with correct ``file:line``
    positions) when the text is irregular.
    """
    heads_parts = []
    tails_parts = []
    data_count = 0
    pos = 0
    while pos < len(block):
        target = min(pos + _PARSE_SEGMENT_BYTES, len(block)) - 1
        cut = block.find(b"\n", target)
        segment = block[pos : cut + 1] if cut != -1 else block[pos:]
        fast = _parse_segment_fast(segment)
        if fast is None:
            lines = segment.split(b"\n")
            if lines and lines[-1] == b"":
                lines.pop()  # a trailing newline is not an extra line
            fast = _parse_lines_fallback(lines, line_base, path)
            line_base += len(lines)
        else:
            line_base += fast[2]
        heads, tails, count = fast
        data_count += count
        if heads.size:
            heads_parts.append(heads)
            tails_parts.append(tails)
        pos += len(segment)
    if not heads_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), data_count
    return (
        np.concatenate(heads_parts),
        np.concatenate(tails_parts),
        data_count,
    )


def _iter_text_blocks(
    stream: IO[bytes], chunk_bytes: int
) -> Iterator[Tuple[bytes, int, int]]:
    """Yield (block, first_line_index, line_count) from a byte stream.

    Blocks end on line boundaries (the final block may lack a trailing
    newline); ``first_line_index`` is 0-based, ``line_count`` is the
    number of lines the block contains.
    """
    carry = b""
    line_base = 0
    while True:
        block = stream.read(chunk_bytes)
        if not block:
            break
        buf = carry + block
        cut = buf.rfind(b"\n")
        if cut == -1:
            carry = buf
            continue
        out, carry = buf[: cut + 1], buf[cut + 1 :]
        count = out.count(b"\n")
        yield out, line_base, count
        line_base += count
    if carry:
        yield carry, line_base, 1


def _file_read_chunks(
    path: Path, dtype: str, columns: int, elements_per_read: int
) -> Iterator[np.ndarray]:
    """Stream a binary spill file back as (rows, columns) arrays."""
    itemsize = np.dtype(dtype).itemsize
    with path.open("rb") as handle:
        while True:
            blob = handle.read(elements_per_read * columns * itemsize)
            if not blob:
                break
            flat = np.frombuffer(blob, dtype=dtype)
            yield flat.reshape(-1, columns)


def ingest_edge_list(
    source: PathLike,
    out_path: PathLike,
    *,
    name: Optional[str] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    tmp_dir: Optional[PathLike] = None,
    wide: Optional[bool] = None,
) -> IngestReport:
    """Stream a SNAP-style edge list into an RPDC disk-backed CSR.

    Produces a graph identical to
    ``read_edge_list(source)`` — same id compaction (sorted numeric raw
    id order), same self-loop/duplicate handling — without ever holding
    the edge set in memory.

    Args:
        source: text edge list, plain or gzipped (detected by magic).
        out_path: destination RPDC file (written atomically).
        name: graph name stored in the header (default: source stem).
        chunk_bytes: bytes of text parsed per step.
        memory_budget_bytes: scratch budget for the external-memory
            scatter/assemble passes; smaller budgets mean more bucket
            files, not failures.
        tmp_dir: where spill files live (default: alongside
            ``out_path``, so they share its filesystem).
        wide: force 64-bit adjacency ids (default: widen only when the
            compacted vertex count requires it).

    Raises:
        GraphError: malformed input, reported as ``path:line``.
    """
    source = Path(source)
    out_path = Path(out_path)
    chunk_bytes = max(1, int(chunk_bytes))
    memory_budget_bytes = max(1 << 16, int(memory_budget_bytes))

    work_dir = Path(
        tempfile.mkdtemp(
            prefix="repro-ingest-",
            dir=str(tmp_dir) if tmp_dir is not None else str(out_path.parent),
        )
    )
    try:
        return _ingest(
            source,
            out_path,
            work_dir,
            name=name,
            chunk_bytes=chunk_bytes,
            memory_budget_bytes=memory_budget_bytes,
            wide=wide,
        )
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)


def _ingest(
    source: Path,
    out_path: Path,
    work_dir: Path,
    *,
    name: Optional[str],
    chunk_bytes: int,
    memory_budget_bytes: int,
    wide: Optional[bool],
) -> IngestReport:
    """The three external-memory passes behind :func:`ingest_edge_list`."""
    graph_name = name or source.stem

    # -- Pass 1: parse text -> canonical raw-id pair spill + vertex set.
    pair_spill = work_dir / "pairs.i8"
    ids = np.empty(0, dtype=np.int64)
    lines_total = 0
    lines_data = 0
    self_loops = 0
    pair_count = 0
    chunk_index = 0
    with _open_stream(source) as stream, pair_spill.open("wb") as spill:
        for block, line_base, line_count in _iter_text_blocks(
            stream, chunk_bytes
        ):
            lines_total += line_count
            heads, tails, data_count = _parse_chunk(block, line_base, source)
            lines_data += data_count
            chunk_index += 1
            if chunk_index % _TRIM_EVERY_CHUNKS == 0:
                trim_heap()
            if not heads.size:
                continue
            ids = np.union1d(ids, np.concatenate([heads, tails]))
            loop = heads == tails
            self_loops += int(loop.sum())
            keep = ~loop
            heads, tails = heads[keep], tails[keep]
            if heads.size:
                lo = np.minimum(heads, tails)
                hi = np.maximum(heads, tails)
                spill.write(
                    np.column_stack([lo, hi]).astype("<i8").tobytes()
                )
                pair_count += int(lo.size)

    n = int(ids.size)
    trim_heap()
    if wide is None:
        wide = n - 1 > NARROW_ID_MAX

    # -- Pass 2: compact ids, scatter both directions by head range.
    directed_raw = 2 * pair_count
    num_buckets = min(
        max(1, math.ceil(directed_raw * _PAIR_BYTES / memory_budget_bytes)),
        max(1, n),
        _MAX_BUCKETS,
    )
    stride = math.ceil(n / num_buckets) if n else 1
    bucket_paths = [work_dir / f"bucket-{b:04d}.i8" for b in range(num_buckets)]
    bucket_handles = [p.open("wb") for p in bucket_paths]
    pairs_per_read = max(1024, memory_budget_bytes // (_PAIR_BYTES * 4))
    try:
        for raw_pairs in _file_read_chunks(
            pair_spill, "<i8", 2, pairs_per_read
        ):
            lo = np.searchsorted(ids, raw_pairs[:, 0])
            hi = np.searchsorted(ids, raw_pairs[:, 1])
            heads = np.concatenate([lo, hi])
            tails = np.concatenate([hi, lo])
            buckets = heads // stride
            for b in np.unique(buckets):
                mask = buckets == b
                bucket_handles[int(b)].write(
                    np.column_stack([heads[mask], tails[mask]])
                    .astype("<i8")
                    .tobytes()
                )
    finally:
        for handle in bucket_handles:
            handle.close()
    pair_spill.unlink()
    del ids
    trim_heap()

    # -- Pass 3: per-bucket sort + dedup -> degrees + adjacency spool.
    degrees = np.zeros(n, dtype=np.int64)
    adjacency_spill = work_dir / "adjacency.bin"
    index_dtype = "<i8" if wide else "<i4"
    directed_unique = 0
    with adjacency_spill.open("wb") as spool:
        for b, bucket_path in enumerate(bucket_paths):
            blob = np.fromfile(bucket_path, dtype="<i8")
            bucket_path.unlink()
            if not blob.size:
                continue
            pairs = blob.reshape(-1, 2)
            order = np.lexsort((pairs[:, 1], pairs[:, 0]))
            heads = pairs[order, 0]
            tails = pairs[order, 1]
            # Consecutive-duplicate elimination (no head*n+tail keying,
            # which would overflow int64 for wide graphs).
            keep = np.empty(heads.size, dtype=bool)
            keep[0] = True
            keep[1:] = (heads[1:] != heads[:-1]) | (tails[1:] != tails[:-1])
            heads, tails = heads[keep], tails[keep]
            low = b * stride
            high = min(low + stride, n)
            degrees[low:high] += np.bincount(
                heads - low, minlength=high - low
            )
            spool.write(tails.astype(index_dtype).tobytes())
            directed_unique += int(heads.size)
            # Each bucket churns several times its size in sort scratch;
            # trim so the retention doesn't stack across buckets.
            trim_heap()
    duplicates = (directed_raw - directed_unique) // 2

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    elements_per_read = max(1024, memory_budget_bytes // 16)
    bytes_written = publish_disk_csr(
        out_path,
        indptr,
        (
            chunk.reshape(-1)
            for chunk in _file_read_chunks(
                adjacency_spill, index_dtype, 1, elements_per_read
            )
        ),
        name=graph_name,
        wide=wide,
    )
    return IngestReport(
        source=str(source),
        out_path=str(out_path),
        num_vertices=n,
        num_edges=directed_unique // 2,
        num_directed_edges=directed_unique,
        lines_total=lines_total,
        lines_data=lines_data,
        self_loops=self_loops,
        duplicates=duplicates,
        buckets=num_buckets,
        wide=bool(wide),
        bytes_written=bytes_written,
    )
