"""The paper's running example (Figures 2-5), reconstructed.

The paper's 14-vertex example graph with landmarks ``{1, 5, 9}`` drives
Examples 3.3-4.3 and Figures 2-5. The full edge set is only drawn, not
listed, so we reconstruct a graph that is *provably consistent* with every
quantitative statement in the text:

* the highway cover labels of Figure 2(c) — thirteen entries in total
  (``LS = 13`` in Figure 3), reproduced entry-for-entry;
* Example 4.2 — the upper bound between vertices 2 and 11 is 3 via
  landmarks (5, 1) and 4 via (9, 1);
* Example 4.3 — the exact distance between 2 and 11 equals the bound 3;
* Example 3.5 — vertex 7 is labelled by landmarks 5 (distance 2, via the
  clean path through vertex 2) and 9 (distance 1), but not by landmark 1.

Vertices are named 1..14 as in the paper; vertex 0 is unused so tests can
quote the paper's ids directly. ``tests/test_paper_examples.py`` asserts
all of the above against Algorithm 1's output.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.graph import Graph

#: Landmark vertex ids of the running example (paper order).
EXAMPLE_LANDMARKS: List[int] = [1, 5, 9]

#: Figure 2(c): vertex -> sorted list of (landmark, distance) entries.
EXAMPLE_LABELS: Dict[int, List[Tuple[int, int]]] = {
    2: [(5, 1), (9, 2)],
    3: [(5, 1)],
    4: [(1, 1)],
    6: [(9, 1)],
    7: [(5, 2), (9, 1)],
    8: [(5, 1)],
    10: [(9, 1)],
    11: [(1, 1)],
    12: [(5, 1)],
    13: [(1, 1)],
    14: [(1, 1)],
}

_EDGES: List[Tuple[int, int]] = [
    (1, 4),
    (1, 5),
    (1, 9),
    (1, 11),
    (1, 13),
    (1, 14),
    (5, 2),
    (5, 3),
    (5, 8),
    (5, 12),
    (9, 6),
    (9, 7),
    (9, 10),
    (2, 7),
    (4, 11),
]


def paper_example_graph() -> Graph:
    """The 14-vertex example graph (vertex 0 is an isolated placeholder)."""
    return Graph(15, _EDGES, name="paper-example")
