"""Datasets: the paper's running example and the 12 surrogate networks."""

from repro.datasets.example_graph import (
    EXAMPLE_LANDMARKS,
    EXAMPLE_LABELS,
    paper_example_graph,
)
from repro.datasets.ingest import IngestReport, ingest_edge_list
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    load_all_datasets,
)

__all__ = [
    "paper_example_graph",
    "EXAMPLE_LANDMARKS",
    "EXAMPLE_LABELS",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "load_all_datasets",
    "IngestReport",
    "ingest_edge_list",
]
