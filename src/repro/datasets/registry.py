"""Surrogate registry for the twelve networks of Table 1.

The paper evaluates on real networks from SNAP / KONECT / LAW /
NetworkRepository, ranging from 1.7M to 2B vertices. Those datasets (and
that scale) are unreachable here — no network access, pure Python — so
each network is replaced by a deterministic synthetic surrogate that
preserves the properties the paper's conclusions depend on:

* the *network family* (preferential-attachment social graphs vs
  copying-model web crawls vs sparse computer topologies),
* the density ``m/n`` (Table 1's column), and
* the relative size ordering of the twelve datasets (ClueWeb09 is the
  largest and sparsest, Hollywood the densest, ...).

Absolute vertex counts are scaled down ~three orders of magnitude; the
``scale`` argument lets callers grow them again when they have time to
spend. See DESIGN.md §3 for why this substitution preserves the paper's
qualitative results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ReproError
from repro.graphs.connectivity import largest_connected_component
from repro.graphs.generators import (
    barabasi_albert_graph,
    copying_model_graph,
    powerlaw_configuration_graph,
)
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """One surrogate: paper metadata + generator recipe."""

    name: str
    network_type: str  # Table 1's "Network" column
    paper_vertices: str  # as reported in Table 1, for EXPERIMENTS.md
    paper_edges: str
    paper_avg_degree: float
    base_vertices: int  # surrogate size at scale=1.0
    family: str  # "ba" | "copying" | "powerlaw"
    param: int  # attach / out_degree / exponent*10
    seed: int

    def generate(self, scale: float = 1.0) -> Graph:
        """Build the surrogate at the requested scale (LCC-extracted)."""
        scale = _validate_scale(scale)
        n = max(64, int(self.base_vertices * scale))
        if self.family == "ba":
            graph = barabasi_albert_graph(n, self.param, seed=self.seed, name=self.name)
        elif self.family == "copying":
            graph = copying_model_graph(
                n, self.param, copy_prob=0.85, seed=self.seed, name=self.name
            )
        elif self.family == "powerlaw":
            graph = powerlaw_configuration_graph(
                n, exponent=self.param / 10.0, min_degree=2, seed=self.seed, name=self.name
            )
        else:  # pragma: no cover - specs are static
            raise ValueError(f"unknown family {self.family!r}")
        lcc, _ = largest_connected_component(graph)
        lcc.name = self.name
        return lcc


# Ordered as in Table 1. Densities (attach ~ avg_degree / 2 for BA,
# out_degree ~ avg_degree / 2 for the copying model) follow the paper's
# m/n column; sizes keep the paper's relative ordering.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("Skitter", "computer", "1.7M", "11M", 13.081, 4000, "ba", 6, 101),
        DatasetSpec("Flickr", "social", "1.7M", "16M", 18.133, 4000, "ba", 9, 102),
        DatasetSpec("Hollywood", "social", "1.1M", "114M", 98.913, 2600, "ba", 25, 103),
        DatasetSpec("Orkut", "social", "3.1M", "117M", 76.281, 7000, "ba", 19, 104),
        DatasetSpec("enwiki2013", "social", "4.2M", "101M", 43.746, 9000, "ba", 11, 105),
        DatasetSpec("LiveJournal", "social", "4.8M", "69M", 17.679, 10500, "ba", 4, 106),
        DatasetSpec("Indochina", "web", "7.4M", "194M", 40.725, 12000, "copying", 20, 107),
        DatasetSpec("it2004", "web", "41M", "1.2B", 49.768, 18000, "copying", 25, 108),
        DatasetSpec("Twitter", "social", "42M", "1.5B", 57.741, 19000, "ba", 14, 109),
        DatasetSpec("Friendster", "social", "66M", "1.8B", 45.041, 24000, "ba", 11, 110),
        DatasetSpec("uk2007", "web", "106M", "3.7B", 62.772, 30000, "copying", 31, 111),
        DatasetSpec("ClueWeb09", "computer", "2B", "8B", 11.959, 48000, "copying", 6, 112),
    ]
}


def _validate_scale(scale: float) -> float:
    """Reject non-finite or non-positive scales before they truncate to 0."""
    try:
        scale = float(scale)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"dataset scale must be a number, got {scale!r}") from exc
    if not math.isfinite(scale) or scale <= 0.0:
        raise ReproError(
            f"dataset scale must be a finite positive number, got {scale!r}"
        )
    return scale


def dataset_names() -> List[str]:
    """Dataset names in Table 1 order."""
    return list(DATASETS)


def load_dataset(name: str, scale: float = 1.0) -> Graph:
    """Generate one surrogate by its paper name (e.g. ``"Skitter"``)."""
    try:
        spec = DATASETS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dataset {name!r}; options: {dataset_names()}"
        ) from exc
    return spec.generate(scale=scale)


def load_all_datasets(scale: float = 1.0) -> List[Tuple[DatasetSpec, Graph]]:
    """Generate all twelve surrogates in Table 1 order."""
    return [(spec, spec.generate(scale=scale)) for spec in DATASETS.values()]
