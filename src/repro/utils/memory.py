"""Heap hygiene for the external-memory pipelines.

glibc's allocator retains freed medium-sized blocks on its arena free
lists; a loop that churns numpy scratch arrays (the ingest passes, the
out-of-core builder's per-chunk epilogues) can therefore drag a
process's resident set tens of MiB above its live data, and — because
``ru_maxrss`` is a high-water mark — the retention of one phase stacks
under the peak of the next.  :func:`trim_heap` hands those free lists
back to the kernel (``malloc_trim``); the bounded-memory pipelines call
it at phase boundaries so their documented RSS envelopes hold on glibc
systems.  On platforms without ``malloc_trim`` it is a no-op.
"""

from __future__ import annotations

import ctypes

_malloc_trim = None
_initialized = False


def trim_heap() -> bool:
    """Return freed allocator memory to the OS; True if anything moved.

    Safe to call from any thread and cheap relative to the array work
    between phases (it walks the allocator's free lists, not the heap).
    """
    global _malloc_trim, _initialized
    if not _initialized:
        _initialized = True
        try:
            libc = ctypes.CDLL(None, use_errno=True)
            _malloc_trim = libc.malloc_trim
            _malloc_trim.argtypes = (ctypes.c_size_t,)
            _malloc_trim.restype = ctypes.c_int
        except (OSError, AttributeError):
            _malloc_trim = None
    if _malloc_trim is None:
        return False
    try:
        return bool(_malloc_trim(0))
    except Exception:
        return False
