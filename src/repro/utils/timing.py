"""Timing helpers used by constructions and the experiment harness."""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import ConstructionBudgetExceeded


class Stopwatch:
    """Wall-clock stopwatch with lap support.

    >>> sw = Stopwatch().start()
    >>> _ = sw.stop()
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class TimeBudget:
    """A soft construction budget checked at safe points.

    ``None`` or non-positive seconds mean "unlimited". Constructions call
    :meth:`check` between units of work (e.g. after each pruned BFS); when
    the budget is exhausted a :class:`ConstructionBudgetExceeded` is raised,
    which the experiment harness renders as ``DNF``.
    """

    def __init__(self, seconds: Optional[float], method: str = "construction") -> None:
        self.seconds = None if seconds is None or seconds <= 0 else float(seconds)
        self.method = method
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    @property
    def exhausted(self) -> bool:
        return self.seconds is not None and self.elapsed > self.seconds

    def check(self) -> None:
        if self.exhausted:
            assert self.seconds is not None
            raise ConstructionBudgetExceeded(self.method, self.seconds)
