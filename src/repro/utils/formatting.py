"""Plain-text rendering of experiment outputs (tables and units).

The benchmark drivers print the same rows the paper's tables report, so
everything here is deliberately ASCII-only and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_bytes(num_bytes: float) -> str:
    """Render a byte count the way the paper does (MB / GB).

    >>> format_bytes(102 * 1024 * 1024)
    '102.0MB'
    """
    if num_bytes < 0:
        raise ValueError("byte count cannot be negative")
    for unit, factor in (("GB", 1024**3), ("MB", 1024**2), ("KB", 1024)):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.1f}{unit}"
    return f"{num_bytes:.0f}B"


def format_seconds(seconds: float) -> str:
    """Render a duration compactly (µs/ms/s)."""
    if seconds < 0:
        raise ValueError("duration cannot be negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.2f}s"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 22], [333, 4]]))
    a    b
    ---  --
    1    22
    333  4
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
