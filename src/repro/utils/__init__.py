"""Small shared utilities: timing, RNG handling, table formatting."""

from repro.utils.timing import Stopwatch, TimeBudget
from repro.utils.formatting import format_bytes, format_seconds, format_table

__all__ = [
    "Stopwatch",
    "TimeBudget",
    "format_bytes",
    "format_seconds",
    "format_table",
]
