"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats <graph>`` — Table-1-style statistics for a graph file
  (edge-list text or a disk-backed ``.rpdc`` CSR; every command that
  takes a graph accepts either, sniffed by magic).
* ``ingest <edgelist[.gz]> -o graph.rpdc [--name N] [--chunk-mb C]
  [--memory-budget-mb M]`` — stream a SNAP-style edge list (plain or
  gzipped) into a disk-backed CSR with bounded memory
  (:mod:`repro.datasets.ingest`); the output opens zero-copy via
  ``np.memmap`` everywhere a graph is accepted.
* ``build <graph> -o index.hl [-k 20] [--strategy degree]
  [--engine stacked|looped] [--chunk-size C] [--parallel]
  [--store vertex|landmark] [--format-version 1|2]
  [--from-edgelist] [--out-of-core]`` — build and persist an HL index
  (the stacked engine is the default; all engines and both label-store
  backends produce byte-identical indexes). ``--from-edgelist``
  streams the text through ``ingest`` into a temporary disk CSR first;
  ``--out-of-core`` spills label chunks to disk and scatters them
  straight into the snapshot (:mod:`repro.core.ooc`) — same bytes,
  ``O(n)`` peak memory.
* ``query <edgelist> <index> s t [s t ...] [--mmap] [--kernel K]`` —
  exact distances from a saved index; ``--mmap`` maps a v2 index
  zero-copy instead of reading it into RAM, ``--kernel`` selects the
  query kernel backend (see ``kernels``). With ``--remote HOST:PORT``
  the positionals are all vertex ids and the distances come from a
  running ``repro serve`` over the wire protocol instead of a local
  index.
* ``serve <edgelist> <index> [--host H] [--port P] [--shards N]
  [--dynamic] [--mmap] [--kernel K] [--spool DIR [--poll-s S]]
  [--max-queue Q] [--worker-threads T]`` — host the index behind the
  asyncio TCP front door (:mod:`repro.serving.net`): bounded-ingress
  admission control with retry-after backpressure, and — with
  ``--spool`` — zero-downtime rollover to every new snapshot
  generation a writer publishes into that directory.
* ``net-bench [--readers R] [--rounds N] [--rollovers K] [--shards S]
  [--out F]`` — the mixed read/write wire benchmark
  (:mod:`repro.serving.net.loadgen`): reader clients hammer a live
  server while snapshot generations publish mid-load; asserts zero
  failed requests and per-generation byte-identity, reports the
  QPS/p50/p99 curve.
* ``query-batch <edgelist> <index> [--pairs-file F | --random N]
  [--mmap] [--kernel K] [--threads T]`` — bulk exact distances through
  the vectorized batch engine; ``--threads`` splits the batch across a
  :class:`~repro.serving.QueryExecutor` thread pool (auto-sized by
  default: one thread per CPU when the kernel releases the GIL).
* ``bench-dataset <name>`` — build HL on one surrogate and report
  CT/ALS/size/coverage.
* ``serve-bench [--threads 16] [--queries 2000] [--shards N]
  [--exec-threads M]`` — drive a
  :class:`~repro.serving.DistanceService` with a synthetic concurrent
  workload, assert exactness against looped ``oracle.query``, and
  report QPS / batch occupancy / latency percentiles. ``--shards N``
  (N > 1) backs the hosted graph with the multi-process
  :class:`~repro.serving.ShardedDistanceService` instead of the
  in-process oracle; ``--exec-threads M`` sizes the per-entry (and
  per-shard) executor thread pool (default: auto).
* ``shard-bench [--shards 4] [--batches 16] [--threads M]`` — compare
  single-process ``query_many`` against the process-sharded service on
  the same bulk workload, assert byte-identical answers, and report
  per-config throughput plus the cached-point-query rate.
  ``--threads M`` runs every worker's batches on an M-thread executor
  (N shards × M threads).
* ``fsck <path> [<path> ...]`` — validate snapshot, write-ahead-log
  and disk-CSR files offline: every format invariant
  (magic/version/flags, section alignment, offsets, id ranges, highway
  sentinel symmetry; WAL checksums and torn tails; CSR indptr and
  row-order invariants) is checked and *all* violations reported, with
  salvage guidance. Exit 0 = every file clean, 1 = at least one
  violated invariant, 2 = a path could not be read.
* ``methods`` — list every registered oracle method with its
  capability set (the README matrix, live).
* ``kernels`` — list the query kernel backends
  (:mod:`repro.core.kernels`) with availability, a ``compiled`` and a
  ``releases_gil`` column (the flag that decides whether the
  thread-parallel executor auto-scales past one thread), and which
  backend this environment auto-selects.
* ``datasets`` — list the twelve surrogate networks.

The CLI wraps the same public API the examples use — every oracle is
constructed through :func:`repro.api.open_oracle` /
:func:`repro.api.build_oracle` — so the index can be produced and
consumed from shell pipelines.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import available_methods, build_oracle, open_oracle
from repro.api.protocol import ALL_CAPABILITIES
from repro.datasets.registry import dataset_names, load_dataset
from repro.graphs.sampling import sample_vertex_pairs
from repro.graphs.stats import compute_stats
from repro.landmarks.selection import STRATEGIES
from repro.utils.formatting import format_bytes, format_table


def _load_graph(path: str):
    """Open a graph argument: edge-list text or a disk CSR, by magic."""
    from repro.api.factory import as_graph

    return as_graph(path)


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    stats = compute_stats(graph)
    print(
        format_table(
            ["n", "m", "m/n", "avg.deg", "max.deg", "|G|"],
            [
                [
                    f"{stats.num_vertices:,}",
                    f"{stats.num_edges:,}",
                    f"{stats.edge_vertex_ratio:.1f}",
                    f"{stats.avg_degree:.3f}",
                    stats.max_degree,
                    format_bytes(stats.size_bytes),
                ]
            ],
        )
    )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.datasets.ingest import ingest_edge_list

    report = ingest_edge_list(
        args.edgelist,
        args.output,
        name=args.name,
        chunk_bytes=args.chunk_mb * (1 << 20),
        memory_budget_bytes=args.memory_budget_mb * (1 << 20),
        wide=True if args.wide else None,
    )
    print(report.summary())
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    if args.parallel and args.engine == "looped":
        print(
            "error: --parallel always uses the stacked engine; "
            "drop --engine looped",
            file=sys.stderr,
        )
        return 2
    if args.out_of_core and (args.parallel or args.engine == "looped"):
        print(
            "error: --out-of-core uses the stacked engine; drop "
            "--parallel / --engine looped",
            file=sys.stderr,
        )
        return 2
    if args.out_of_core and args.format_version != 2:
        print(
            "error: --out-of-core writes the aligned v2 snapshot only",
            file=sys.stderr,
        )
        return 2
    source = args.graph
    ingest_dir = None
    try:
        if args.from_edgelist:
            import tempfile

            from repro.datasets.ingest import ingest_edge_list

            ingest_dir = tempfile.TemporaryDirectory(prefix="repro-build-")
            source = f"{ingest_dir.name}/graph.rpdc"
            report = ingest_edge_list(args.graph, source)
            print(report.summary())
        if args.out_of_core:
            from repro.api.factory import as_graph
            from repro.core.ooc import build_snapshot_out_of_core
            from repro.landmarks.selection import select_landmarks

            graph = as_graph(source)
            landmark_ids = select_landmarks(
                graph, args.landmarks, strategy=args.strategy
            )
            memmapped = hasattr(graph.csr.indices, "_mmap")
            report = build_snapshot_out_of_core(
                graph,
                landmark_ids,
                args.output,
                chunk_size=args.chunk_size,
                edge_block=args.edge_block,
                release_graph_pages=memmapped,
            )
            print(
                f"built HL/ooc(k={args.landmarks}, {args.strategy}) in "
                f"{report.construction_seconds:.2f}s; "
                f"entries={report.entries}; wrote "
                f"{format_bytes(report.bytes_written)} (v2) to {args.output}"
            )
            return 0
        oracle = build_oracle(
            source,
            "hl",
            num_landmarks=args.landmarks,
            landmark_strategy=args.strategy,
            parallel=args.parallel,
            engine=args.engine,
            chunk_size=args.chunk_size,
            store=args.store,
        )
        written = oracle.save(args.output, version=args.format_version)
    finally:
        if ingest_dir is not None:
            ingest_dir.cleanup()
    builder = "HL-P" if args.parallel else f"HL/{args.engine}"
    print(
        f"built {builder}(k={args.landmarks}, {args.strategy}, "
        f"store={args.store}) in "
        f"{oracle.construction_seconds:.2f}s; ALS="
        f"{oracle.average_label_size():.1f}; wrote {format_bytes(written)} "
        f"(v{args.format_version}) to {args.output}"
    )
    return 0


def _parse_address(remote: str):
    """Split a ``HOST:PORT`` CLI argument; raises ``ValueError``."""
    host, sep, port = remote.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--remote wants HOST:PORT, got {remote!r}")
    return host, int(port)


def _cmd_query(args: argparse.Namespace) -> int:
    vertices = list(args.vertices)
    if args.remote is not None:
        # Remote mode needs no local graph/index: the two positionals
        # are the first vertex pair.
        try:
            extra = [int(args.graph), int(args.index)]
        except ValueError:
            print(
                "error: with --remote, all positionals are vertex ids",
                file=sys.stderr,
            )
            return 2
        vertices = extra + vertices
    if len(vertices) % 2:
        print("error: provide an even number of vertex ids (s t pairs)", file=sys.stderr)
        return 2
    if args.remote is not None:
        from repro.serving.net import NetClient

        try:
            host, port = _parse_address(args.remote)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        with NetClient(host, port) as client:
            for i in range(0, len(vertices), 2):
                s, t = vertices[i], vertices[i + 1]
                d = client.query(s, t)
                rendered = "inf" if d == float("inf") else f"{d:.0f}"
                print(f"d({s}, {t}) = {rendered}")
        return 0
    oracle = open_oracle(
        args.graph, index=args.index, mmap=args.mmap, kernel=args.kernel
    )
    for i in range(0, len(vertices), 2):
        s, t = vertices[i], vertices[i + 1]
        d = oracle.query(s, t)
        rendered = "inf" if d == float("inf") else f"{d:.0f}"
        print(f"d({s}, {t}) = {rendered}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.net import NetServer, SnapshotRollover

    graph = _load_graph(args.graph)
    backend = open_oracle(
        graph,
        index=args.index,
        mmap=args.mmap,
        dynamic=args.dynamic,
        shards=args.shards if args.shards > 1 else None,
        kernel=args.kernel,
    )
    rollover = None
    if args.spool is not None:
        rollover = SnapshotRollover(
            args.spool,
            graph=graph,
            mmap=bool(args.mmap),
            kernel=args.kernel,
            shards=args.shards if args.shards > 1 else None,
            poll_s=args.poll_s,
        )
    server = NetServer(
        backend,
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        worker_threads=args.worker_threads,
        rollover=rollover,
        owns_backend=True,
    )
    server.run_forever()
    return 0


def _cmd_net_bench(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.serving.net.loadgen import run_net_bench

    try:
        run_net_bench(
            n=args.n,
            landmarks=args.landmarks,
            readers=args.readers,
            rounds=args.rounds,
            batch_size=args.batch_size,
            rollovers=args.rollovers,
            shards=args.shards if args.shards > 1 else None,
            kernel=args.kernel,
            seed=args.seed,
            out=args.out,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_query_batch(args: argparse.Namespace) -> int:
    import numpy as np

    oracle = open_oracle(
        args.graph, index=args.index, mmap=args.mmap, kernel=args.kernel
    )
    graph = oracle.graph
    if args.pairs_file is not None:
        import warnings

        try:
            with warnings.catch_warnings():
                # Empty pair files are legal; silence loadtxt's no-data warning.
                warnings.simplefilter("ignore", UserWarning)
                pairs = np.loadtxt(args.pairs_file, dtype=np.int64, ndmin=2)
        except ValueError:
            print("error: pairs file must hold two vertex ids per line", file=sys.stderr)
            return 2
        if pairs.size == 0:
            pairs = np.empty((0, 2), dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            print("error: pairs file must hold two vertex ids per line", file=sys.stderr)
            return 2
    else:
        pairs = sample_vertex_pairs(graph, args.random, seed=args.seed)
    from repro.serving.executor import QueryExecutor

    with QueryExecutor.for_oracle(oracle, threads=args.threads) as executor:
        distances, covered = executor.run(
            lambda chunk: oracle.query_many(chunk, return_coverage=True),
            pairs,
        )
    for (s, t), d in zip(pairs, distances):
        rendered = "inf" if d == float("inf") else f"{d:.0f}"
        print(f"{int(s)} {int(t)} {rendered}")
    coverage = float(covered.mean()) if len(pairs) else 0.0
    print(
        f"# pairs={len(pairs)} coverage={coverage:.3f} "
        f"threads={executor.threads}",
        file=sys.stderr,
    )
    return 0


def _cmd_bench_dataset(args: argparse.Namespace) -> int:
    from repro.core.batch import coverage_ratio

    graph = load_dataset(args.name, scale=args.scale)
    oracle = build_oracle(graph, "hl", num_landmarks=args.landmarks)
    pairs = sample_vertex_pairs(graph, args.pairs, seed=1)
    coverage = coverage_ratio(oracle, pairs)
    print(
        format_table(
            ["dataset", "n", "m", "CT", "ALS", "index", "coverage"],
            [
                [
                    args.name,
                    f"{graph.num_vertices:,}",
                    f"{graph.num_edges:,}",
                    f"{oracle.construction_seconds:.2f}s",
                    f"{oracle.average_label_size():.1f}",
                    format_bytes(oracle.size_bytes()),
                    f"{coverage:.2f}",
                ]
            ],
        )
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import threading

    import numpy as np

    from repro.graphs.generators import barabasi_albert_graph
    from repro.serving import DistanceService

    if args.graph is not None:
        graph = _load_graph(args.graph)
    else:
        graph = barabasi_albert_graph(args.n, 4, seed=7, name="serve-bench")
    oracle = build_oracle(
        graph, "hl", num_landmarks=args.landmarks, kernel=args.kernel
    )
    pairs = sample_vertex_pairs(graph, args.queries, seed=args.seed)

    # Ground truth the slow, unambiguous way: one looped oracle.query.
    expected = np.array(
        [oracle.query(int(s), int(t)) for s, t in pairs], dtype=float
    )

    sharded = None
    tmpdir = None
    if args.shards > 1:
        import tempfile

        from repro.serving import ShardedDistanceService

        # Serve the already-built index through N worker processes
        # mapping one shared snapshot (the ground-truth oracle stays
        # untouched in this process). The directory must outlive the
        # workers that map the file.
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        snapshot = f"{tmpdir.name}/bench.hl"
        oracle.save(snapshot)
        sharded = ShardedDistanceService.from_snapshot(
            graph, snapshot, shards=args.shards, kernel=args.kernel,
            threads=args.exec_threads,
        )

    results = np.full(len(pairs), np.nan, dtype=float)
    errors: List[BaseException] = []
    try:
        with DistanceService(
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            # With a sharded backend the executor pools live in the
            # worker processes (threads= above); the facade entry stays
            # sequential rather than threading over IPC-bound calls.
            threads=None if sharded is not None else args.exec_threads,
        ) as service:
            service.register("bench", sharded if sharded is not None else oracle)

            def drive(lo: int, hi: int) -> None:
                try:
                    for i in range(lo, hi):
                        results[i] = service.query(
                            "bench", int(pairs[i, 0]), int(pairs[i, 1])
                        )
                except BaseException as exc:  # surfaced after the join
                    errors.append(exc)

            bounds = np.linspace(0, len(pairs), args.threads + 1).astype(int)
            threads = [
                threading.Thread(target=drive, args=(int(lo), int(hi)))
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = service.stats("bench")
    finally:
        if sharded is not None:
            sharded.close()
        if tmpdir is not None:
            tmpdir.cleanup()

    if errors:
        print(f"error: a client thread failed: {errors[0]!r}", file=sys.stderr)
        return 1

    mismatches = int((results != expected).sum())
    print(
        format_table(
            ["threads", "shards", "queries", "QPS", "batches", "occupancy", "p50", "p99"],
            [
                [
                    args.threads,
                    args.shards,
                    stats["queries"],
                    f"{stats['qps']:,.0f}",
                    stats["batches"],
                    f"{stats['batch_occupancy']:.1f}",
                    f"{stats['p50_ms']:.2f}ms",
                    f"{stats['p99_ms']:.2f}ms",
                ]
            ],
        )
    )
    if mismatches:
        print(
            f"error: {mismatches}/{len(pairs)} coalesced answers differ "
            f"from looped oracle.query",
            file=sys.stderr,
        )
        return 1
    if stats["batch_occupancy"] <= 1.0 and args.threads > 1:
        print(
            "error: no batch coalescing happened (occupancy <= 1)",
            file=sys.stderr,
        )
        return 1
    print(f"exact: {len(pairs)}/{len(pairs)} match looped oracle.query")
    return 0


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    import os
    import tempfile
    import time

    import numpy as np

    from repro.graphs.generators import barabasi_albert_graph
    from repro.serving import ShardedDistanceService

    if args.graph is not None:
        graph = _load_graph(args.graph)
    else:
        graph = barabasi_albert_graph(args.n, 3, seed=7, name="shard-bench")
    oracle = build_oracle(
        graph, "hl", num_landmarks=args.landmarks, kernel=args.kernel
    )
    pairs = sample_vertex_pairs(graph, args.pairs, seed=args.seed)
    batches = np.array_split(pairs, args.batches)

    # Single-process baseline: the same bulk workload through one
    # vectorized engine (what DistanceService.query_many would run).
    t0 = time.perf_counter()
    expected = np.concatenate([oracle.query_many(b) for b in batches])
    single_s = time.perf_counter() - t0

    # Serve the already-built index, don't rebuild it: save once and let
    # every worker map the snapshot (the directory outlives the workers).
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-shard-bench-")
    snapshot = f"{tmpdir.name}/bench.hl"
    oracle.save(snapshot)
    with ShardedDistanceService.from_snapshot(
        graph, snapshot, shards=args.shards, kernel=args.kernel,
        threads=args.threads,
    ) as svc:
        t0 = time.perf_counter()
        sharded = np.concatenate([svc.query_many(b) for b in batches])
        sharded_s = time.perf_counter() - t0
        # Hot-pair phase: the same point queries twice; the second pass
        # is answered by the in-front QueryCache.
        hot = pairs[: min(len(pairs), 256)]
        for s, t in hot:
            svc.query(int(s), int(t))
        t0 = time.perf_counter()
        cached = [svc.query(int(s), int(t)) for s, t in hot]
        cached_s = time.perf_counter() - t0
        stats = svc.stats()
    tmpdir.cleanup()

    mismatches = int((sharded != expected).sum())
    cache_ok = cached == [float(x) for x in expected[: len(hot)]]
    speedup = single_s / sharded_s if sharded_s else float("inf")
    print(
        format_table(
            ["config", "pairs", "wall", "QPS", "vs single"],
            [
                ["single-process", len(pairs), f"{single_s:.3f}s",
                 f"{len(pairs) / single_s:,.0f}", "-"],
                [f"sharded x{args.shards}", len(pairs), f"{sharded_s:.3f}s",
                 f"{len(pairs) / sharded_s:,.0f}", f"{speedup:.2f}x"],
                ["cached points", len(hot), f"{cached_s:.3f}s",
                 f"{len(hot) / cached_s:,.0f}" if cached_s else "inf", "-"],
            ],
        )
    )
    print(
        f"cores={os.cpu_count()} cache_hits={stats['cache']['hits']} "
        f"snapshot={stats['snapshot']}"
    )
    if mismatches or not cache_ok:
        if mismatches:
            print(
                f"error: {mismatches}/{len(pairs)} sharded answers differ "
                f"from the single-process engine",
                file=sys.stderr,
            )
        if not cache_ok:
            print(
                f"error: cached point answers differ from the "
                f"single-process engine ({len(hot)} hot pairs)",
                file=sys.stderr,
            )
        return 1
    print(f"exact: {len(pairs)}/{len(pairs)} match single-process query_many")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.core.fsck import fsck_path

    worst = 0
    for raw in args.paths:
        report = fsck_path(raw)
        unreadable = any(f.code == "unreadable" for f in report.findings)
        if report.ok:
            detail = next(
                (f.message for f in report.findings if f.code == "clean"),
                "clean",
            )
            print(f"{report.path}: OK ({report.kind}: {detail})")
        else:
            print(f"{report.path}: CORRUPT ({report.kind})")
        for finding in report.findings:
            if finding.code == "clean":
                continue
            stream = sys.stderr if finding.severity == "error" else sys.stdout
            print(
                f"  {finding.severity.upper()} [{finding.code}] "
                f"{finding.message}",
                file=stream,
            )
        if unreadable:
            worst = max(worst, 2)
        elif not report.ok:
            worst = max(worst, 1)
    return worst


def _cmd_methods(_: argparse.Namespace) -> int:
    rows = []
    for spec in available_methods():
        marks = [
            "x" if cap in spec.capabilities else "-"
            for cap in ALL_CAPABILITIES
        ]
        rows.append(
            [spec.name, *marks, "x" if spec.supports_dynamic else "-", spec.description]
        )
    print(
        format_table(
            ["method", "batch", "dynamic", "snapshot", "paths", "dyn-opt", "description"],
            rows,
        )
    )
    return 0


def _cmd_kernels(_: argparse.Namespace) -> int:
    from repro.core.kernels import (
        KERNEL_NAMES,
        available_kernels,
        get_kernel,
    )

    usable = set(available_kernels())
    default = get_kernel().name
    rows = []
    for name in KERNEL_NAMES:
        if name in usable:
            backend = get_kernel(name)
            compiled = "x" if backend.compiled else "-"
            nogil = "x" if backend.releases_gil else "-"
            status = "available"
        else:
            compiled = nogil = "?"
            status = "unavailable"
        rows.append(
            [name, compiled, nogil, "x" if name == default else "-", status]
        )
    print(
        format_table(
            ["kernel", "compiled", "releases_gil", "default", "status"], rows
        )
    )
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    for name in dataset_names():
        print(name)
    return 0


def _add_kernel_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="query kernel backend (numpy/numba/cext/pyloop; "
        "default: auto-detect, see 'repro kernels')",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Highway cover labelling: exact distance queries (EDBT 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="Table-1-style statistics for a graph")
    p_stats.add_argument("graph", help="edge-list file or disk CSR (.rpdc)")
    p_stats.set_defaults(func=_cmd_stats)

    p_ingest = sub.add_parser(
        "ingest",
        help="stream an edge-list file into a disk-backed CSR (.rpdc)",
    )
    p_ingest.add_argument("edgelist", help="edge-list text file (may be .gz)")
    p_ingest.add_argument(
        "-o", "--output", required=True, help="disk-CSR output path"
    )
    p_ingest.add_argument(
        "--name", default=None, help="graph name stored in the header"
    )
    p_ingest.add_argument(
        "--chunk-mb",
        type=int,
        default=4,
        help="text chunk size read per parse step (MiB)",
    )
    p_ingest.add_argument(
        "--memory-budget-mb",
        type=int,
        default=64,
        help="approximate RAM budget for the scatter passes (MiB)",
    )
    p_ingest.add_argument(
        "--wide",
        action="store_true",
        help="force 64-bit adjacency ids (auto-selected when needed)",
    )
    p_ingest.set_defaults(func=_cmd_ingest)

    p_build = sub.add_parser("build", help="build and save an HL index")
    p_build.add_argument("graph", help="edge-list file or disk CSR (.rpdc)")
    p_build.add_argument("-o", "--output", required=True, help="index output path")
    p_build.add_argument("-k", "--landmarks", type=int, default=20)
    p_build.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="degree"
    )
    p_build.add_argument(
        "--engine",
        choices=("stacked", "looped"),
        default="stacked",
        help="construction engine (identical output; stacked is faster)",
    )
    p_build.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="landmarks per stacked pass (bounds construction memory)",
    )
    p_build.add_argument(
        "--parallel",
        action="store_true",
        help="build with the chunk-parallel HL-P builder",
    )
    p_build.add_argument(
        "--store",
        choices=("vertex", "landmark"),
        default="vertex",
        help="in-memory label-store backend (identical snapshot on disk)",
    )
    p_build.add_argument(
        "--format-version",
        type=int,
        choices=(1, 2),
        default=2,
        help="snapshot format: 2 (aligned, mmap-able) or 1 (legacy)",
    )
    p_build.add_argument(
        "--from-edgelist",
        action="store_true",
        help="stream-ingest the graph to a temporary disk CSR first "
        "(bounded parse memory for huge edge lists)",
    )
    p_build.add_argument(
        "--out-of-core",
        action="store_true",
        help="spill labels to disk during construction and assemble the "
        "v2 snapshot without holding it in RAM",
    )
    p_build.add_argument(
        "--edge-block",
        type=int,
        default=None,
        help="edges per BFS expansion block with --out-of-core "
        "(bounds resident adjacency pages)",
    )
    p_build.set_defaults(func=_cmd_build)

    p_query = sub.add_parser("query", help="query distances from a saved index")
    p_query.add_argument(
        "graph", help="edge-list file (a vertex id with --remote)"
    )
    p_query.add_argument(
        "index", help="index file from 'build' (a vertex id with --remote)"
    )
    p_query.add_argument(
        "vertices", nargs="*", type=int, help="s t [s t ...]"
    )
    p_query.add_argument(
        "--mmap",
        action="store_true",
        help="map the v2 index zero-copy instead of reading it into RAM",
    )
    p_query.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT",
        help="query a running 'repro serve' over the wire instead of a "
        "local index (all positionals become vertex ids)",
    )
    _add_kernel_option(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_net_serve = sub.add_parser(
        "serve",
        help="host an index behind the asyncio TCP front door",
    )
    p_net_serve.add_argument("graph", help="edge-list file")
    p_net_serve.add_argument(
        "index", nargs="?", default=None,
        help="index file from 'build' (default: build in-process)",
    )
    p_net_serve.add_argument("--host", default="127.0.0.1")
    p_net_serve.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    p_net_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve through N worker processes (1 = in-process oracle)",
    )
    p_net_serve.add_argument(
        "--dynamic",
        action="store_true",
        help="promote to a dynamic oracle so wire INSERT/DELETE work",
    )
    p_net_serve.add_argument(
        "--mmap",
        action="store_true",
        help="map the v2 index zero-copy instead of reading it into RAM",
    )
    p_net_serve.add_argument(
        "--spool",
        default=None,
        metavar="DIR",
        help="watch this SnapshotSpool directory and roll over to new "
        "generations with zero downtime",
    )
    p_net_serve.add_argument(
        "--poll-s", type=float, default=0.25, help="spool poll interval"
    )
    p_net_serve.add_argument("--max-queue", type=int, default=1024)
    p_net_serve.add_argument("--worker-threads", type=int, default=2)
    _add_kernel_option(p_net_serve)
    p_net_serve.set_defaults(func=_cmd_serve)

    p_net_bench = sub.add_parser(
        "net-bench",
        help="mixed read/write wire benchmark with mid-load rollover, "
        "exactness-verified",
    )
    p_net_bench.add_argument(
        "--n", type=int, default=2000, help="synthetic graph size"
    )
    p_net_bench.add_argument("-k", "--landmarks", type=int, default=16)
    p_net_bench.add_argument("--readers", type=int, default=4)
    p_net_bench.add_argument(
        "--rounds", type=int, default=24, help="batches per reader"
    )
    p_net_bench.add_argument("--batch-size", type=int, default=64)
    p_net_bench.add_argument(
        "--rollovers", type=int, default=2,
        help="snapshot generations published mid-load",
    )
    p_net_bench.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve each generation through N worker processes",
    )
    p_net_bench.add_argument("--seed", type=int, default=0)
    p_net_bench.add_argument(
        "--out", default=None, metavar="F",
        help="also write the report lines to this file",
    )
    _add_kernel_option(p_net_bench)
    p_net_bench.set_defaults(func=_cmd_net_bench)

    p_batch = sub.add_parser(
        "query-batch",
        help="bulk exact distances via the vectorized batch engine",
    )
    p_batch.add_argument("graph", help="edge-list file")
    p_batch.add_argument("index", help="index file from 'build'")
    source = p_batch.add_mutually_exclusive_group()
    source.add_argument(
        "--pairs-file", help="file with one 's t' pair per line"
    )
    source.add_argument(
        "--random", type=int, default=1000, help="sample this many random pairs"
    )
    p_batch.add_argument("--seed", type=int, default=0, help="seed for --random")
    p_batch.add_argument(
        "--mmap",
        action="store_true",
        help="map the v2 index zero-copy instead of reading it into RAM",
    )
    _add_kernel_option(p_batch)
    p_batch.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="T",
        help="executor threads the batch is split across (default: auto — "
        "one per CPU when the kernel releases the GIL, else sequential)",
    )
    p_batch.set_defaults(func=_cmd_query_batch)

    p_bench = sub.add_parser("bench-dataset", help="profile HL on a surrogate")
    p_bench.add_argument("name", choices=dataset_names())
    p_bench.add_argument("--scale", type=float, default=0.15)
    p_bench.add_argument("-k", "--landmarks", type=int, default=20)
    p_bench.add_argument("--pairs", type=int, default=200)
    p_bench.set_defaults(func=_cmd_bench_dataset)

    p_serve = sub.add_parser(
        "serve-bench",
        help="drive DistanceService with a concurrent workload and "
        "verify exactness",
    )
    p_serve.add_argument(
        "--graph", default=None, help="edge-list file (default: synthetic BA)"
    )
    p_serve.add_argument(
        "--n", type=int, default=5000, help="synthetic graph size"
    )
    p_serve.add_argument("-k", "--landmarks", type=int, default=20)
    p_serve.add_argument("--threads", type=int, default=16)
    p_serve.add_argument(
        "--queries", type=int, default=2000, help="total queries across threads"
    )
    p_serve.add_argument("--max-batch", type=int, default=512)
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="back the graph with N worker processes (1 = in-process oracle)",
    )
    p_serve.add_argument(
        "--exec-threads",
        type=int,
        default=None,
        metavar="M",
        help="executor thread-pool size per entry (or per shard worker "
        "with --shards > 1); default: auto from the kernel's "
        "releases_gil flag",
    )
    _add_kernel_option(p_serve)
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_shard = sub.add_parser(
        "shard-bench",
        help="single-process vs process-sharded bulk throughput, "
        "exactness-verified",
    )
    p_shard.add_argument(
        "--graph", default=None, help="edge-list file (default: synthetic BA)"
    )
    p_shard.add_argument(
        "--n", type=int, default=20000, help="synthetic graph size"
    )
    p_shard.add_argument("-k", "--landmarks", type=int, default=20)
    p_shard.add_argument("--shards", type=int, default=4)
    p_shard.add_argument(
        "--pairs", type=int, default=20000, help="total bulk query pairs"
    )
    p_shard.add_argument(
        "--batches", type=int, default=16, help="bulk calls the workload is split into"
    )
    p_shard.add_argument("--seed", type=int, default=0)
    p_shard.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="M",
        help="executor threads per shard worker (N shards x M threads; "
        "default: auto from the kernel's releases_gil flag)",
    )
    _add_kernel_option(p_shard)
    p_shard.set_defaults(func=_cmd_shard_bench)

    p_fsck = sub.add_parser(
        "fsck",
        help="validate snapshot / WAL files and report violated invariants",
    )
    p_fsck.add_argument(
        "paths",
        nargs="+",
        help="snapshot (.hl), write-ahead-log, or disk-CSR (.rpdc) files "
        "to check",
    )
    p_fsck.set_defaults(func=_cmd_fsck)

    p_methods = sub.add_parser(
        "methods", help="list registered oracle methods and capabilities"
    )
    p_methods.set_defaults(func=_cmd_methods)

    p_kernels = sub.add_parser(
        "kernels", help="list query kernel backends and the local default"
    )
    p_kernels.set_defaults(func=_cmd_kernels)

    p_list = sub.add_parser("datasets", help="list the surrogate networks")
    p_list.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — standard CLI etiquette.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
