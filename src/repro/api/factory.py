"""The single construction entry point: ``open_oracle`` / ``build_oracle``.

PRs 1-3 grew several ways to obtain a queryable oracle — direct
``HighwayCoverOracle(...)`` construction with engine/store/mmap knobs,
``load_oracle`` for snapshots, per-baseline constructors, and ad-hoc
wiring in the CLI and experiment harness. This module collapses them
into one declarative surface backed by a method registry:

* :func:`make_oracle` — instantiate an *unbuilt* oracle by method name
  (what the experiment harness needs: it times ``build`` itself).
* :func:`build_oracle` — instantiate **and build** on a graph.
* :func:`open_oracle` — the do-what-I-mean entry point: takes a
  :class:`~repro.graphs.graph.Graph` or an edge-list path, optionally a
  saved index to restore (``index=``, with ``mmap=`` for zero-copy
  loading), and returns a ready-to-query oracle.
* :func:`register_method` — the extension point: new backends register
  a factory once and every caller of the three functions above (CLI,
  harness, serving facade, benchmarks) can name them immediately.

Method names are case-insensitive and accept the paper's spellings
(``"HL(8)"``, ``"IS-L"``, ``"Bi-BFS"``) as aliases of the canonical
lowercase names.

All oracle-class imports happen lazily inside the factories, keeping
``repro.api`` import-light and cycle-free (the oracle modules themselves
import :mod:`repro.api.protocol`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.api.protocol import Capability
from repro.graphs.graph import Graph

PathLike = Union[str, Path]
GraphSource = Union[Graph, str, Path]


@dataclass(frozen=True)
class MethodSpec:
    """One registered distance-query method."""

    name: str
    factory: Callable[..., object]
    description: str = ""
    aliases: Tuple[str, ...] = ()
    #: The declared capability contract: exactly what a
    #: default-configured instance's ``capabilities()`` advertises.
    #: Registry-level negotiation (listings, ``open_oracle``'s snapshot
    #: gate) trusts this field, and the conformance suite asserts it
    #: matches the live instance for every registered method.
    capabilities: frozenset = field(default_factory=frozenset)
    #: Whether ``dynamic=True`` is meaningful for this method.
    supports_dynamic: bool = False


_REGISTRY: Dict[str, MethodSpec] = {}
_ALIASES: Dict[str, str] = {}


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_method(spec: MethodSpec) -> None:
    """Register a method (or replace a registration of the same name)."""
    key = _normalize(spec.name)
    _REGISTRY[key] = spec
    _ALIASES[key] = key
    for alias in spec.aliases:
        _ALIASES[_normalize(alias)] = key


def resolve_method(name: str) -> MethodSpec:
    """The spec registered under ``name`` (canonical or alias, any case)."""
    key = _ALIASES.get(_normalize(name))
    if key is None:
        known = sorted(
            set(_REGISTRY) | {a for a in _ALIASES if a not in _REGISTRY}
        )
        raise KeyError(f"unknown method {name!r}; options: {known}")
    return _REGISTRY[key]


def available_methods() -> List[MethodSpec]:
    """All registered methods, canonical-name sorted."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def make_oracle(
    method: str = "hl",
    *,
    dynamic: bool = False,
    shards: Optional[int] = None,
    kernel: Optional[str] = None,
    **options,
):
    """Instantiate an *unbuilt* oracle for ``method``.

    Args:
        method: registered method name or alias (case-insensitive).
        dynamic: request the incrementally-updatable variant
            (:data:`Capability.DYNAMIC`); raises for methods without one.
        shards: with ``shards >= 2``, return an unbuilt
            :class:`~repro.serving.ShardedDistanceService` — ``build``
            spawns that many worker processes mapping one shared
            snapshot zero-copy. Requires a snapshot-capable method (the
            HL family); the sharded tier is always dynamic-capable, so
            ``dynamic`` is implied. ``None``/1 means the ordinary
            single-process oracle.
        kernel: query kernel backend name for the HL family
            (:mod:`repro.core.kernels`); ``None`` defers to the process
            default (``REPRO_KERNEL`` or auto-detection). Raises for
            methods without a kernel seam (the baselines).
        **options: forwarded to the method's constructor (e.g.
            ``num_landmarks=``, ``engine=``, ``store=``, ``budget_s=``)
            — plus the sharded tier's knobs (``update_mode=``,
            ``cache_size=``, ...) when ``shards`` is given.

    Raises:
        KeyError: unknown method name.
        ValueError: ``dynamic=True`` for a method without a dynamic
            variant, ``shards``/``kernel`` for one without the matching
            seam.
    """
    if shards is not None and shards < 1:
        raise ValueError("shards must be at least 1")
    if shards is not None and shards > 1:
        from repro.serving.sharded import ShardedDistanceService

        return ShardedDistanceService(
            shards, method=method, kernel=kernel, **options
        )
    spec = resolve_method(method)
    if dynamic and not spec.supports_dynamic:
        raise ValueError(
            f"method {spec.name!r} has no dynamic variant; "
            f"only methods with supports_dynamic can take dynamic=True"
        )
    if kernel is not None:
        if Capability.SNAPSHOT not in spec.capabilities:
            raise ValueError(
                f"method {spec.name!r} has no kernel seam; "
                f"kernel= applies to the HL family only"
            )
        options["kernel"] = kernel
    if spec.supports_dynamic:
        return spec.factory(dynamic=dynamic, **options)
    return spec.factory(**options)


def build_oracle(
    source: GraphSource,
    method: str = "hl",
    *,
    dynamic: bool = False,
    shards: Optional[int] = None,
    kernel: Optional[str] = None,
    **options,
):
    """Build an oracle of ``method`` over a graph or edge-list path.

    ``shards >= 2`` builds the index once and serves it from that many
    worker processes (see :func:`make_oracle`).
    """
    graph = as_graph(source)
    return make_oracle(
        method, dynamic=dynamic, shards=shards, kernel=kernel, **options
    ).build(graph)


def open_oracle(
    source: GraphSource,
    *,
    index: PathLike = None,
    method: str = "hl",
    mmap: Optional[bool] = None,
    dynamic: bool = False,
    shards: Optional[int] = None,
    kernel: Optional[str] = None,
    wal: PathLike = None,
    wal_fsync: str = "always",
    **options,
):
    """Obtain a ready-to-query oracle — build fresh or restore a snapshot.

    This is the single entry point the CLI, examples, and serving facade
    construct oracles through.

    Args:
        source: a built :class:`~repro.graphs.graph.Graph`, or the path
            of an edge-list file to read.
        index: optional path of a snapshot written by
            :meth:`~repro.core.query.HighwayCoverOracle.save` (or
            ``save_oracle``); when given, the index is restored instead
            of rebuilt. Only snapshot-capable methods (the HL family)
            can be restored.
        method: method to build when ``index`` is not given.
        mmap: with ``index``, map the label arrays zero-copy instead of
            reading them into RAM (requires a v2 snapshot). Defaults to
            copying loads for single-process oracles and zero-copy
            mapping for sharded serving; pass an explicit ``True`` /
            ``False`` to override either.
        dynamic: return the incrementally-updatable oracle variant. With
            ``index``, the restored state is promoted to a
            :class:`~repro.core.dynamic.DynamicHighwayCoverOracle`.
        shards: with ``shards >= 2``, serve the index from that many
            worker processes behind a
            :class:`~repro.serving.ShardedDistanceService` — with
            ``index``, every worker maps the given snapshot file
            zero-copy by default (requires a v2 snapshot; ``mmap=False``
            forces copying loads, e.g. for a v1 file); without, the
            index is built once and spooled. Sharded serving is always
            dynamic-capable, so ``dynamic`` is implied. Service knobs
            (``update_mode=``, ``cache_size=``, ...) pass through
            ``**options``.
        kernel: query kernel backend name (:mod:`repro.core.kernels`).
            Unlike ``**options`` this is *not* a construction knob — it
            applies equally to restored snapshots (``index=``), so it is
            never rejected alongside one.
        wal: optional write-ahead-log path
            (:class:`~repro.core.wal.WriteAheadLog`) making dynamic
            updates crash-durable. An existing log is **replayed on
            open**: the recorded churn is re-applied through the
            O(affected) dynamic repair (torn tails from a crash
            mid-append are repaired; replay is idempotent across the
            publish/truncate window), then the log is attached so
            every later update is logged before it mutates anything.
            ``source`` (and ``index``) must describe the state the log
            was started against. Implies ``dynamic=True``.
        wal_fsync: log durability policy — ``"always"`` (default,
            fsync per append), ``"batch"``, or ``"never"``; see
            :data:`repro.core.wal.FSYNC_POLICIES`.
        **options: forwarded to the method constructor when building.

    Returns:
        A built oracle satisfying :class:`~repro.api.DistanceOracle`.

    Raises:
        ValueError: ``mmap`` without ``index``, constructor options
            alongside a restored ``index`` (single-process and sharded
            alike), or a non-snapshot method with ``index``/``shards``.
        WalError: an existing ``wal`` file that is corrupt (torn tails
            are repaired, checksum mismatches are not), or whose
            records do not fit the graph.
    """
    graph = as_graph(source)
    if shards is not None and shards < 1:
        raise ValueError("shards must be at least 1")
    if shards is not None and shards > 1:
        from repro.serving.sharded import ShardedDistanceService

        return ShardedDistanceService(
            shards,
            method=method,
            index=index,
            mmap=True if mmap is None else mmap,
            kernel=kernel,
            wal=wal,
            wal_fsync=wal_fsync,
            **options,
        ).build(graph)
    mmap = bool(mmap)
    if index is None:
        if mmap:
            raise ValueError("mmap=True requires index= (a saved snapshot)")
        oracle = build_oracle(
            graph,
            method,
            dynamic=dynamic or wal is not None,
            kernel=kernel,
            **options,
        )
        if wal is not None:
            oracle = _replay_and_attach(oracle, wal, wal_fsync)
        return oracle

    spec = resolve_method(method)
    if Capability.SNAPSHOT not in spec.capabilities:
        raise ValueError(
            f"method {spec.name!r} has no snapshot format; "
            f"index= applies to the HL family only"
        )
    if options:
        raise ValueError(
            f"constructor options {sorted(options)} are ignored when "
            f"restoring index={str(index)!r}; drop them"
        )
    from repro.core.serialization import load_oracle

    oracle = load_oracle(graph, index, mmap=mmap)
    if kernel is not None:
        oracle.set_kernel(kernel)
    # Naming the dynamic method is as good as dynamic=True: restoring
    # "hl-dyn" must yield an oracle that honours Capability.DYNAMIC.
    if dynamic or wal is not None or Capability.DYNAMIC in spec.capabilities:
        oracle = _promote_dynamic(oracle)
    if wal is not None:
        oracle = _replay_and_attach(oracle, wal, wal_fsync)
    return oracle


def as_graph(source: GraphSource) -> Graph:
    """Coerce a graph source to a :class:`Graph`.

    Accepts a ``Graph`` instance, an edge-list text path, or a
    disk-backed CSR (``.rpdc``) path — the latter is sniffed by magic
    and opened as a zero-copy memmap
    (:func:`~repro.graphs.disk_csr.open_disk_csr`), so a graph produced
    by ``repro ingest`` plugs into every oracle factory unchanged.
    """
    if isinstance(source, Graph):
        return source
    if isinstance(source, (str, Path)):
        from repro.graphs.disk_csr import is_disk_csr, open_disk_csr
        from repro.graphs.io import read_edge_list

        if is_disk_csr(source):
            return open_disk_csr(source, mmap=True)
        return read_edge_list(source)
    raise TypeError(
        f"expected a Graph or an edge-list path, got {type(source).__name__}"
    )


def _promote_dynamic(oracle):
    """Rehost a restored static oracle as a dynamic one.

    The label store converts to the update-optimal landmark-major
    backend (copying — which also detaches any mmap'ed arrays, since
    repairs must write).
    """
    from repro.core.dynamic import DynamicHighwayCoverOracle

    dyn = DynamicHighwayCoverOracle(
        num_landmarks=oracle.num_landmarks,
        landmarks=[int(r) for r in oracle.highway.landmarks],
        engine=oracle.engine,
        chunk_size=oracle.chunk_size,
        kernel=oracle.kernel,
    )
    dyn.graph = oracle.graph
    dyn.labelling = oracle.labelling.as_landmark_major()
    dyn.highway = oracle.highway
    dyn._landmark_mask = oracle._landmark_mask
    dyn.construction_seconds = oracle.construction_seconds
    return dyn


def _replay_and_attach(oracle, wal_path, fsync: str):
    """Open (or create) a WAL, replay its churn, attach it for appends.

    Order matters: replay runs against the *detached* oracle (an
    attached log would re-append its own records), and attachment
    happens only after every record is re-applied — from then on each
    ``insert_edge``/``delete_edge`` is logged before it mutates.
    """
    from repro.core.wal import WriteAheadLog, replay_into

    log = WriteAheadLog(wal_path, fsync=fsync)
    try:
        replay_into(oracle, log.records())
    except BaseException:
        log.close()
        raise
    oracle.attach_wal(log)
    return oracle


# -- Built-in registrations ---------------------------------------------------


def _make_hl(dynamic: bool = False, **options):
    from repro.core.dynamic import DynamicHighwayCoverOracle
    from repro.core.query import HighwayCoverOracle

    cls = DynamicHighwayCoverOracle if dynamic else HighwayCoverOracle
    return cls(**options)


def _make_hl_parallel(dynamic: bool = False, **options):
    options.setdefault("parallel", True)
    return _make_hl(dynamic=dynamic, **options)


def _make_hl_compressed(dynamic: bool = False, **options):
    options.setdefault("codec", "u8")
    return _make_hl(dynamic=dynamic, **options)


def _make_hl_dynamic(dynamic: bool = True, **options):
    return _make_hl(dynamic=True, **options)


def _lazy(module: str, cls: str) -> Callable[..., object]:
    def factory(**options):
        """Instantiate the lazily-imported oracle class."""
        import importlib

        return getattr(importlib.import_module(module), cls)(**options)

    return factory


_HL_CAPS = frozenset(
    {Capability.BATCH, Capability.SNAPSHOT, Capability.PATHS}
)
_BATCH_ONLY = frozenset({Capability.BATCH})

register_method(
    MethodSpec(
        name="hl",
        factory=_make_hl,
        description="Highway cover labelling (the paper's HL)",
        aliases=("HL",),
        capabilities=_HL_CAPS,
        supports_dynamic=True,
    )
)
register_method(
    MethodSpec(
        name="hl-p",
        factory=_make_hl_parallel,
        description="HL with landmark-parallel construction (HL-P)",
        aliases=("HL-P", "hlp"),
        capabilities=_HL_CAPS,
        supports_dynamic=True,
    )
)
register_method(
    MethodSpec(
        name="hl8",
        factory=_make_hl_compressed,
        description="HL with 8-bit compressed labels (HL(8))",
        aliases=("HL(8)", "hl(8)", "hl-8"),
        capabilities=_HL_CAPS,
        supports_dynamic=True,
    )
)
register_method(
    MethodSpec(
        name="hl-dyn",
        factory=_make_hl_dynamic,
        description="HL with incremental edge insertion/deletion repair",
        aliases=("HL-dyn", "dynamic"),
        capabilities=_HL_CAPS | {Capability.DYNAMIC},
        supports_dynamic=True,
    )
)
register_method(
    MethodSpec(
        name="fd",
        factory=_lazy("repro.baselines.fd", "FullyDynamicOracle"),
        description="FD: landmark SPTs + bit-parallel masks (Hayashi et al.)",
        aliases=("FD",),
        capabilities=_BATCH_ONLY,
    )
)
register_method(
    MethodSpec(
        name="pll",
        factory=_lazy("repro.baselines.pll", "PrunedLandmarkLabelling"),
        description="PLL: pruned 2-hop cover (Akiba et al.)",
        aliases=("PLL",),
        capabilities=_BATCH_ONLY,
    )
)
register_method(
    MethodSpec(
        name="isl",
        factory=_lazy("repro.baselines.isl", "ISLabelOracle"),
        description="IS-L: independent-set hierarchy + core search (Fu et al.)",
        aliases=("IS-L",),
        capabilities=_BATCH_ONLY,
    )
)
register_method(
    MethodSpec(
        name="alt",
        factory=_lazy("repro.baselines.alt", "ALTOracle"),
        description="ALT: A* with landmark lower bounds (Goldberg & Harrelson)",
        aliases=("ALT",),
        capabilities=_BATCH_ONLY,
    )
)
register_method(
    MethodSpec(
        name="bfs",
        factory=_lazy("repro.baselines.online", "BFSOracle"),
        description="Online unidirectional BFS (index-free)",
        aliases=("BFS",),
        capabilities=_BATCH_ONLY,
    )
)
register_method(
    MethodSpec(
        name="bibfs",
        factory=_lazy("repro.baselines.online", "BiBFSOracle"),
        description="Online bidirectional BFS (index-free; Table 2's Bi-BFS)",
        aliases=("Bi-BFS", "bi-bfs"),
        capabilities=_BATCH_ONLY,
    )
)
register_method(
    MethodSpec(
        name="dijkstra",
        factory=_lazy("repro.baselines.online", "DijkstraOracle"),
        description="Online early-terminating Dijkstra (index-free)",
        aliases=("Dijkstra",),
        capabilities=_BATCH_ONLY,
    )
)
