"""The capability-based oracle protocol — the library's public contract.

Every distance-query method in this repository — HL itself, the dynamic
HL extension, and all the paper's baselines — speaks the same layered
protocol:

* :class:`DistanceOracle` is the **core**: ``build`` / ``query`` plus
  the Table 2-3 accounting (``size_bytes`` / ``average_label_size``)
  and :meth:`~DistanceOracle.capabilities` introspection.
* Optional **capability layers** extend the core: bulk queries
  (:class:`BatchQueries`), incremental edge updates
  (:class:`DynamicUpdates`), on-disk snapshots (:class:`Snapshotable`)
  and witness-path recovery (:class:`PathReconstruction`).

Callers negotiate through :meth:`~DistanceOracle.capabilities` — a
frozenset of :class:`Capability` values — instead of ``hasattr``
guessing: an oracle advertises a capability if and only if the
corresponding methods exist *and* honour the layer's contract (the
conformance suite in ``tests/test_api_conformance.py`` asserts this for
every registered method).

Contracts the layers pin down:

* ``query`` returns the exact shortest-path distance, ``inf`` when the
  endpoints are disconnected, ``0.0`` when ``s == t``.
* ``size_bytes`` / ``average_label_size`` are **total functions**:
  index-free (online) methods return 0 rather than raising — the zero
  is Table 2's actual cell for Bi-BFS — and indexed methods may raise
  :class:`~repro.errors.NotBuiltError` only before ``build``.
* ``query_many`` (:data:`Capability.BATCH`) must equal a loop of
  ``query`` over the rows, elementwise and exactly.
* ``insert_edge`` / ``delete_edge`` (:data:`Capability.DYNAMIC`) must
  leave the oracle answering exactly on the updated graph. Partial
  support (e.g. FD's insert-only repair) must **not** advertise the
  capability — the methods may still exist.
* ``save`` (:data:`Capability.SNAPSHOT`) must produce a file that
  :func:`repro.api.open_oracle` restores to an oracle with identical
  answers.
* ``shortest_path`` (:data:`Capability.PATHS`) returns a witness path
  whose hop count equals ``query(s, t)``, or ``None`` when disconnected.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.graphs.graph import Graph


class Capability(enum.Enum):
    """The optional layers an oracle can advertise on top of the core."""

    #: ``query_many(pairs)`` answers an ``(k, 2)`` batch, identically to
    #: looping ``query``.
    BATCH = "batch"
    #: ``insert_edge(u, v)`` / ``delete_edge(u, v)`` maintain exactness
    #: under edge updates.
    DYNAMIC = "dynamic"
    #: ``save(path)`` persists the index; ``open_oracle(graph, index=...)``
    #: restores it.
    SNAPSHOT = "snapshot"
    #: ``shortest_path(s, t)`` recovers a witness path for the distance.
    PATHS = "paths"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Capability.{self.name}"


#: All capability values, in a stable display order (README matrix order).
ALL_CAPABILITIES = (
    Capability.BATCH,
    Capability.DYNAMIC,
    Capability.SNAPSHOT,
    Capability.PATHS,
)


@runtime_checkable
class DistanceOracle(Protocol):
    """The core protocol every distance-query method satisfies."""

    name: str

    def build(self, graph: Graph) -> "DistanceOracle":
        """Precompute the index (a graph-capture no-op for online methods)."""
        ...

    def query(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``inf`` when disconnected)."""
        ...

    def size_bytes(self) -> int:
        """Index size in bytes under the paper's accounting (0 if index-free)."""
        ...

    def average_label_size(self) -> float:
        """Average label entries per vertex (0.0 if index-free)."""
        ...

    def capabilities(self) -> frozenset:
        """The :class:`Capability` layers this oracle honours."""
        ...


@runtime_checkable
class BatchQueries(Protocol):
    """Capability layer: bulk pair queries (``Capability.BATCH``)."""

    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        """Exact distances for an ``(k, 2)`` pair array, row for row."""
        ...


@runtime_checkable
class DynamicUpdates(Protocol):
    """Capability layer: edge insertions *and* deletions (``Capability.DYNAMIC``)."""

    def insert_edge(self, u: int, v: int) -> Sequence[int]:
        """Insert an edge, repairing the index to exactness on the new graph."""
        ...

    def delete_edge(self, u: int, v: int) -> Sequence[int]:
        """Delete an edge, repairing the index to exactness on the new graph."""
        ...


@runtime_checkable
class Snapshotable(Protocol):
    """Capability layer: on-disk persistence (``Capability.SNAPSHOT``)."""

    def save(self, path, version: int = 2) -> int:
        """Write the index to ``path``; returns bytes written."""
        ...


@runtime_checkable
class PathReconstruction(Protocol):
    """Capability layer: witness paths (``Capability.PATHS``)."""

    def shortest_path(self, s: int, t: int) -> Optional[List[int]]:
        """A witness path whose hop count equals ``query(s, t)``, or ``None``."""
        ...


def capabilities_of(oracle) -> frozenset:
    """The capability set of any oracle (empty for foreign objects)."""
    probe = getattr(oracle, "capabilities", None)
    if probe is None:
        return frozenset()
    return frozenset(probe())


class BatchFallback:
    """Mixin granting any oracle a correct ``query_many`` by looping ``query``.

    The baselines answer pairs one at a time; this adapter gives them the
    :data:`Capability.BATCH` surface — same validation, same dtype, same
    answers as the vectorized HL engine, minus the speed — so bulk
    callers (the experiment harness, :class:`~repro.serving.DistanceService`)
    never branch on method identity.

    Requires the host class to expose ``query`` and a built ``graph``
    attribute (every oracle in this repository stores one).
    """

    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        """Exact distances for an ``(k, 2)`` pair array, via looped ``query``."""
        from repro.core.batch_engine import as_pair_array
        from repro.errors import NotBuiltError

        graph = getattr(self, "graph", None)
        if graph is None:
            raise NotBuiltError("call build(graph) before querying")
        pairs = as_pair_array(pairs, graph.num_vertices)
        out = np.empty(len(pairs), dtype=float)
        query = self.query
        for i, (s, t) in enumerate(pairs):
            out[i] = query(int(s), int(t))
        return out
