"""``repro.api`` — the unified, capability-based public surface.

Protocol (:mod:`repro.api.protocol`): :class:`DistanceOracle` plus the
optional :class:`BatchQueries` / :class:`DynamicUpdates` /
:class:`Snapshotable` / :class:`PathReconstruction` capability layers,
negotiated through ``oracle.capabilities()``.

Factories (:mod:`repro.api.factory`): :func:`open_oracle` /
:func:`build_oracle` / :func:`make_oracle` construct any registered
method by name; :func:`register_method` adds new backends.

See the README section "Public API & serving" for the capability matrix
and examples.
"""

from repro.api.factory import (
    MethodSpec,
    available_methods,
    as_graph,
    build_oracle,
    make_oracle,
    open_oracle,
    register_method,
    resolve_method,
)
from repro.api.protocol import (
    ALL_CAPABILITIES,
    BatchFallback,
    BatchQueries,
    Capability,
    DistanceOracle,
    DynamicUpdates,
    PathReconstruction,
    Snapshotable,
    capabilities_of,
)

__all__ = [
    "ALL_CAPABILITIES",
    "BatchFallback",
    "BatchQueries",
    "Capability",
    "DistanceOracle",
    "DynamicUpdates",
    "MethodSpec",
    "PathReconstruction",
    "Snapshotable",
    "available_methods",
    "as_graph",
    "build_oracle",
    "capabilities_of",
    "make_oracle",
    "open_oracle",
    "register_method",
    "resolve_method",
]
