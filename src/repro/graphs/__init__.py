"""Graph substrate: immutable CSR graphs, generators, IO and statistics."""

from repro.graphs.graph import Graph
from repro.graphs.csr import CSRAdjacency, build_csr
from repro.graphs.generators import (
    barabasi_albert_graph,
    copying_model_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    powerlaw_configuration_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.connectivity import connected_components, largest_connected_component
from repro.graphs.disk_csr import (
    is_disk_csr,
    open_disk_csr,
    publish_disk_csr,
    read_disk_csr_header,
    write_graph_disk_csr,
)
from repro.graphs.stats import GraphStats, compute_stats
from repro.graphs.sampling import distance_distribution, sample_vertex_pairs
from repro.graphs import analysis, io

__all__ = [
    "Graph",
    "CSRAdjacency",
    "build_csr",
    "barabasi_albert_graph",
    "copying_model_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "path_graph",
    "powerlaw_configuration_graph",
    "star_graph",
    "watts_strogatz_graph",
    "connected_components",
    "largest_connected_component",
    "is_disk_csr",
    "open_disk_csr",
    "publish_disk_csr",
    "read_disk_csr_header",
    "write_graph_disk_csr",
    "GraphStats",
    "compute_stats",
    "sample_vertex_pairs",
    "distance_distribution",
    "analysis",
    "io",
]
