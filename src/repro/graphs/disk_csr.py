"""A paged, versioned, disk-backed CSR that :class:`Graph` opens zero-copy.

The in-memory :class:`~repro.graphs.csr.CSRAdjacency` holds both arrays
on the heap, so a graph can only be queried if it fits in RAM.  This
module stores the same two arrays in a single **RPDC** file laid out so
that :func:`open_disk_csr` can hand numpy *memmaps* of the on-disk
sections straight to :meth:`Graph.from_csr` — the adjacency is then
paged in on demand by the OS and shared, read-only, across every
process mapping the same file (the same discipline as the v2 label
snapshot in :mod:`repro.core.serialization`).

**RPDC v1 layout** (little-endian):

    magic    4s   "RPDC"
    version  u32  = 1
    flags    u32      bit 0: wide (64-bit) adjacency ids
    n        u64      vertices
    directed u64      directed edge slots (== indptr[n])
    name_len u32      length of the utf-8 graph name that follows
    name     name_len bytes
    indptr   (n+1) * i8            @ align64(32 + name_len)
    indices  directed * (i4 | i8)  @ align64(...)

Every array section starts on a 64-byte boundary (zero padding in
between), which is what makes the sections individually mappable.  The
narrow (``i4``) index width covers graphs up to ``2^31 - 1`` vertices —
beyond that the writer widens to ``i8`` automatically ("u32/u64 id
widening"; the *raw* ids in the ingested text may be arbitrary 64-bit
integers either way, see :mod:`repro.datasets.ingest`).

Writes are **atomic and durable**: assembled in a same-directory
``*.tmp`` file, fsynced, then renamed over the target — a crash leaves
either the old file or the complete new one, never a truncated CSR at
an openable name.  ``repro fsck`` validates the format via
:func:`repro.core.fsck.fsck_disk_csr`.
"""

from __future__ import annotations

import mmap as _mmap_module
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRAdjacency
from repro.graphs.graph import Graph

DISK_CSR_MAGIC = b"RPDC"
DISK_CSR_VERSION = 1
FLAG_WIDE_INDICES = 1
_KNOWN_FLAGS = FLAG_WIDE_INDICES
_HEADER_STRUCT = "<IIQQI"  # version, flags, n, directed, name_len
_HEADER_BYTES = 4 + struct.calcsize(_HEADER_STRUCT)  # 32
_ALIGNMENT = 64
#: Highest vertex id a narrow (i4) adjacency section can reference.
NARROW_ID_MAX = np.iinfo(np.int32).max

PathLike = Union[str, Path]


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


@dataclass(frozen=True)
class DiskCSRHeader:
    """Decoded RPDC header: everything needed to locate the sections."""

    version: int
    flags: int
    num_vertices: int
    num_directed_edges: int
    name: str

    @property
    def wide(self) -> bool:
        """Whether adjacency ids are stored as i8 instead of i4."""
        return bool(self.flags & FLAG_WIDE_INDICES)

    @property
    def index_dtype(self) -> str:
        """Numpy dtype string of the on-disk adjacency section."""
        return "<i8" if self.wide else "<i4"

    def sections(self) -> Tuple[int, int, int]:
        """Byte offsets of ``(indptr, indices, end)``."""
        return disk_csr_sections(
            self.num_vertices,
            self.num_directed_edges,
            self.wide,
            len(self.name.encode("utf-8")),
        )


def disk_csr_sections(
    n: int, directed: int, wide: bool, name_len: int
) -> Tuple[int, int, int]:
    """Byte offsets of ``(indptr, indices, end)`` for an RPDC v1 file."""
    indptr_start = _align(_HEADER_BYTES + name_len)
    index_width = 8 if wide else 4
    indices_start = _align(indptr_start + 8 * (n + 1))
    end = indices_start + index_width * directed
    return indptr_start, indices_start, end


def is_disk_csr(path: PathLike) -> bool:
    """True if ``path`` exists and starts with the RPDC magic."""
    try:
        with Path(path).open("rb") as handle:
            return handle.read(4) == DISK_CSR_MAGIC
    except OSError:
        return False


def read_disk_csr_header(path: PathLike) -> DiskCSRHeader:
    """Decode and validate the fixed header of an RPDC file.

    Raises:
        GraphError: on truncation, bad magic, unsupported version or
            unknown flag bits.
    """
    path = Path(path)
    with path.open("rb") as handle:
        blob = handle.read(_HEADER_BYTES)
        if len(blob) < _HEADER_BYTES:
            raise GraphError(f"{path}: truncated disk-CSR header")
        if blob[:4] != DISK_CSR_MAGIC:
            raise GraphError(f"{path}: not a repro disk-CSR file")
        version, flags, n, directed, name_len = struct.unpack(
            _HEADER_STRUCT, blob[4:]
        )
        if version != DISK_CSR_VERSION:
            raise GraphError(f"{path}: unsupported disk-CSR version {version}")
        if flags & ~_KNOWN_FLAGS:
            raise GraphError(f"{path}: unknown disk-CSR flag bits 0x{flags:x}")
        name_blob = handle.read(name_len)
        if len(name_blob) < name_len:
            raise GraphError(f"{path}: truncated disk-CSR name field")
    try:
        name = name_blob.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise GraphError(f"{path}: undecodable disk-CSR name field") from exc
    return DiskCSRHeader(
        version=version,
        flags=flags,
        num_vertices=int(n),
        num_directed_edges=int(directed),
        name=name,
    )


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (best effort off-POSIX)."""
    flags = getattr(os, "O_DIRECTORY", None)
    if flags is None:  # pragma: no cover - non-POSIX
        return
    try:
        fd = os.open(directory, os.O_RDONLY | flags)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def publish_disk_csr(
    path: PathLike,
    indptr: np.ndarray,
    indices_chunks: Iterable[np.ndarray],
    *,
    name: str = "graph",
    wide: Optional[bool] = None,
) -> int:
    """Atomically write an RPDC file from indptr + streamed adjacency.

    The adjacency arrives as an iterable of chunks so callers (the
    out-of-core ingest) never materialize the full ``indices`` array;
    only ``indptr`` (``O(n)``) must be resident.  Returns bytes written.

    Args:
        path: output file.
        indptr: ``(n+1,)`` int64 row-pointer array, ``indptr[0] == 0``,
            non-decreasing.
        indices_chunks: chunks whose concatenation is the adjacency
            section; total length must equal ``indptr[-1]``.
        name: graph name stored in the header.
        wide: force 64-bit adjacency ids; default auto-widens when a
            vertex id cannot fit in an i4.

    Raises:
        GraphError: on an inconsistent indptr or a chunk-length mismatch.
    """
    path = Path(path)
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    if indptr.ndim != 1 or indptr.size < 1:
        raise GraphError("indptr must be a 1-d array of length n+1")
    n = indptr.size - 1
    if int(indptr[0]) != 0:
        raise GraphError(f"indptr[0] must be 0, got {int(indptr[0])}")
    if n and not bool((np.diff(indptr) >= 0).all()):
        raise GraphError("indptr must be non-decreasing")
    directed = int(indptr[-1])
    if wide is None:
        wide = n - 1 > NARROW_ID_MAX
    index_dtype = "<i8" if wide else "<i4"
    name_blob = name.encode("utf-8")
    indptr_start, indices_start, end = disk_csr_sections(
        n, directed, wide, len(name_blob)
    )

    tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
    written = 0
    try:
        with tmp.open("wb") as handle:
            handle.write(DISK_CSR_MAGIC)
            handle.write(
                struct.pack(
                    _HEADER_STRUCT,
                    DISK_CSR_VERSION,
                    FLAG_WIDE_INDICES if wide else 0,
                    n,
                    directed,
                    len(name_blob),
                )
            )
            handle.write(name_blob)
            handle.write(b"\x00" * (indptr_start - handle.tell()))
            handle.write(indptr.astype("<i8", copy=False).tobytes())
            handle.write(b"\x00" * (indices_start - handle.tell()))
            for chunk in indices_chunks:
                chunk = np.ascontiguousarray(chunk)
                if chunk.size and (chunk.min() < 0 or chunk.max() >= n):
                    raise GraphError(
                        f"adjacency id out of range [0, {n}) in chunk"
                    )
                if chunk.size and not wide and chunk.max() > NARROW_ID_MAX:
                    raise GraphError(
                        "adjacency id exceeds the narrow i4 width; "
                        "re-publish with wide=True"
                    )
                handle.write(chunk.astype(index_dtype, copy=False).tobytes())
                written += int(chunk.size)
            if written != directed:
                raise GraphError(
                    f"adjacency chunks held {written} ids, "
                    f"indptr terminates at {directed}"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
    return end


def write_graph_disk_csr(
    graph: Graph, path: PathLike, *, wide: Optional[bool] = None
) -> int:
    """Write an in-memory :class:`Graph` as an RPDC file; returns bytes.

    Convenience wrapper over :func:`publish_disk_csr` used by tests,
    fixtures and the format round-trip in ``tools/gauntlet.py``.
    """
    csr = graph.csr
    return publish_disk_csr(
        path, csr.indptr, [csr.indices], name=graph.name, wide=wide
    )


def open_disk_csr(
    path: PathLike, *, mmap: bool = True, name: Optional[str] = None
) -> Graph:
    """Open an RPDC file as a :class:`Graph`.

    With ``mmap=True`` (the default) the indptr and adjacency sections
    are :class:`numpy.memmap` views straight onto the file — nothing is
    copied into process RAM, pages fault in on first touch and can be
    dropped again with :func:`drop_resident_pages`.  ``mmap=False``
    copies both arrays onto the heap (useful for small graphs or
    mutation via ``with_edges_added``).

    Raises:
        GraphError: on a malformed header, a file whose size does not
            match the header's section layout, or indptr invariant
            violations (cheap ``O(n)`` checks; the full ``O(m)``
            adjacency validation lives in ``repro fsck``).
    """
    path = Path(path)
    header = read_disk_csr_header(path)
    n = header.num_vertices
    directed = header.num_directed_edges
    indptr_start, indices_start, end = header.sections()
    actual = path.stat().st_size
    if actual != end:
        raise GraphError(
            f"{path}: truncated or oversized disk-CSR file — expected "
            f"{end} bytes, found {actual}"
        )
    if mmap:
        indptr = np.memmap(
            path, dtype="<i8", mode="r", offset=indptr_start, shape=(n + 1,)
        )
        if directed:
            indices = np.memmap(
                path,
                dtype=header.index_dtype,
                mode="r",
                offset=indices_start,
                shape=(directed,),
            )
        else:
            indices = np.empty(0, dtype=np.int64 if header.wide else np.int32)
    else:
        with path.open("rb") as handle:
            handle.seek(indptr_start)
            indptr = np.fromfile(handle, dtype="<i8", count=n + 1).astype(
                np.int64
            )
            handle.seek(indices_start)
            indices = np.fromfile(
                handle, dtype=header.index_dtype, count=directed
            ).astype(np.int64 if header.wide else np.int32)
    if int(indptr[0]) != 0 or int(indptr[-1]) != directed:
        raise GraphError(
            f"{path}: corrupt disk-CSR indptr — spans "
            f"[{int(indptr[0])}, {int(indptr[-1])}], expected [0, {directed}]"
        )
    if n and not bool((np.diff(indptr) >= 0).all()):
        raise GraphError(f"{path}: corrupt disk-CSR indptr — not non-decreasing")
    csr = CSRAdjacency(indptr=indptr, indices=indices)
    return Graph.from_csr(csr, name=name or header.name or path.stem)


def drop_resident_pages(*arrays: np.ndarray) -> int:
    """Advise the kernel to evict the resident pages of memmapped arrays.

    The out-of-core builder calls this between BFS levels so the pages
    of an already-swept adjacency section stop counting against the
    process's RSS; non-memmapped arrays are ignored.  Returns how many
    mappings were advised.
    """
    advised = 0
    for array in arrays:
        mapping = getattr(array, "_mmap", None)
        if mapping is None:
            continue
        try:
            mapping.madvise(_mmap_module.MADV_DONTNEED)
        except (AttributeError, OSError):  # pragma: no cover - platform
            continue
        advised += 1
    return advised
