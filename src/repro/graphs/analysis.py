"""Structural analysis helpers: the statistics behind the paper's claims.

The paper's method works *because* complex networks are small-world and
scale-free: tiny effective diameter, heavy-tailed degrees, hubs on most
shortest paths. These helpers quantify those properties for any graph,
so users (and our own tests) can check whether a new input matches the
regime the method is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graphs.graph import Graph
from repro.search.bfs import UNREACHED, bfs_distances


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Mapping degree -> number of vertices with that degree."""
    degrees = graph.degrees()
    if len(degrees) == 0:
        return {}
    values, counts = np.unique(degrees, return_counts=True)
    return {int(d): int(c) for d, c in zip(values, counts)}


def power_law_tail_ratio(graph: Graph) -> float:
    """max degree / mean degree — a cheap scale-freeness indicator.

    Scale-free networks score >> 1 (hubs); regular lattices score ~1.
    """
    degrees = graph.degrees()
    if len(degrees) == 0 or degrees.mean() == 0:
        return 0.0
    return float(degrees.max() / degrees.mean())


def approximate_diameter(graph: Graph, sweeps: int = 4, seed: int = 0) -> int:
    """Double-sweep lower bound on the diameter.

    Repeatedly BFS from the farthest vertex found so far — exact on
    trees, a tight lower bound in practice on complex networks.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    current = int(rng.integers(0, n))
    best = 0
    for _ in range(max(1, sweeps)):
        dist = bfs_distances(graph, current)
        reachable = dist != UNREACHED
        if not reachable.any():
            break
        eccentric = int(dist[reachable].max())
        best = max(best, eccentric)
        current = int(np.flatnonzero(reachable & (dist == eccentric))[0])
    return best


def average_clustering_coefficient(
    graph: Graph, samples: int = 200, seed: int = 0
) -> float:
    """Sampled local clustering coefficient (Watts-Strogatz definition)."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    vertices = rng.choice(n, size=min(samples, n), replace=False)
    total = 0.0
    counted = 0
    for v in vertices:
        neighbors = graph.neighbors(int(v))
        k = len(neighbors)
        if k < 2:
            continue
        neighbor_set = set(int(u) for u in neighbors)
        links = 0
        for u in neighbors:
            for w in graph.neighbors(int(u)):
                if int(w) in neighbor_set and int(w) > int(u):
                    links += 1
        total += 2 * links / (k * (k - 1))
        counted += 1
    return total / counted if counted else 0.0


@dataclass(frozen=True)
class SmallWorldReport:
    """Summary of the properties HL's performance depends on."""

    num_vertices: int
    num_edges: int
    tail_ratio: float
    approx_diameter: int
    clustering: float

    @property
    def looks_small_world(self) -> bool:
        """Heuristic gate: skewed degrees + compact diameter."""
        if self.num_vertices < 10:
            return False
        import math

        return self.tail_ratio > 3.0 and self.approx_diameter <= max(
            6, 4 * int(math.log2(self.num_vertices))
        )


def small_world_report(graph: Graph, seed: int = 0) -> SmallWorldReport:
    """Compute the full report (cheap sampled estimators throughout)."""
    return SmallWorldReport(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        tail_ratio=power_law_tail_ratio(graph),
        approx_diameter=approximate_diameter(graph, seed=seed),
        clustering=average_clustering_coefficient(graph, seed=seed),
    )
