"""Deterministic synthetic graph generators.

These are the substitutes for the paper's twelve real-world networks
(Table 1), which cannot be downloaded in this environment. Each generator
takes an explicit ``seed`` so that every experiment in the repository is
reproducible bit-for-bit.

The families provided:

* :func:`barabasi_albert_graph` — preferential attachment; heavy-tailed
  degrees like the social networks (Flickr, Orkut, LiveJournal, ...).
* :func:`copying_model_graph` — the web-graph copying model; produces the
  locally dense, high-max-degree structure of web crawls (Indochina,
  it2004, uk2007, ClueWeb09).
* :func:`powerlaw_configuration_graph` — configuration model with a
  power-law degree sequence; used where a target exponent matters.
* :func:`erdos_renyi_graph`, :func:`watts_strogatz_graph` — controls used
  in tests and ablations.
* :func:`grid_graph`, :func:`path_graph`, :func:`star_graph` — tiny
  deterministic topologies for unit tests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def barabasi_albert_graph(n: int, attach: int, seed: int = 0, name: str = "") -> Graph:
    """Barabási–Albert preferential attachment graph.

    Args:
        n: number of vertices.
        attach: number of edges each new vertex attaches with; the expected
            average degree is ``~2 * attach``.
        seed: RNG seed.
    """
    if attach < 1:
        raise GraphError("attach must be >= 1")
    if n <= attach:
        raise GraphError("n must exceed attach")
    rng = _rng(seed)
    # Repeated-endpoint list implements preferential attachment in O(m).
    targets = list(range(attach + 1))
    endpoint_pool: List[int] = []
    edges: List[Tuple[int, int]] = []
    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            edges.append((u, v))
            endpoint_pool.extend((u, v))
    for u in range(attach + 1, n):
        # Index into the repeated-endpoint list directly: O(1) per draw,
        # O(m) total, which is what lets the surrogate datasets reach
        # tens of thousands of vertices in pure Python.
        pool_len = len(endpoint_pool)
        picks = rng.integers(0, pool_len, size=4 * attach + 8)
        chosen = set()
        cursor = 0
        while len(chosen) < attach:
            if cursor == len(picks):
                picks = rng.integers(0, pool_len, size=4 * attach + 8)
                cursor = 0
            chosen.add(endpoint_pool[int(picks[cursor])])
            cursor += 1
        for v in chosen:
            edges.append((u, v))
            endpoint_pool.extend((u, v))
    return Graph(n, edges, name=name or f"ba-{n}-{attach}")


def erdos_renyi_graph(n: int, avg_degree: float, seed: int = 0, name: str = "") -> Graph:
    """G(n, m) random graph with the requested average degree."""
    if n < 1:
        raise GraphError("n must be positive")
    m = int(n * avg_degree / 2)
    rng = _rng(seed)
    heads = rng.integers(0, n, size=2 * m + 16)
    tails = rng.integers(0, n, size=2 * m + 16)
    keep = heads != tails
    pairs = np.stack([heads[keep], tails[keep]], axis=1)[: 2 * m]
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    uniq = np.unique(lo * n + hi)[:m]
    edge_array = np.stack([uniq // n, uniq % n], axis=1)
    return Graph.from_edge_array(n, edge_array, name=name or f"er-{n}")


def watts_strogatz_graph(
    n: int, k: int, rewire_prob: float, seed: int = 0, name: str = ""
) -> Graph:
    """Watts–Strogatz small-world ring lattice with rewiring."""
    if k % 2 or k < 2:
        raise GraphError("k must be a positive even integer")
    if not 0.0 <= rewire_prob <= 1.0:
        raise GraphError("rewire_prob must be in [0, 1]")
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < rewire_prob:
                v = int(rng.integers(0, n))
                if v == u:
                    v = (u + offset) % n
            edges.append((u, v))
    return Graph(n, edges, name=name or f"ws-{n}-{k}")


def copying_model_graph(
    n: int, out_degree: int, copy_prob: float = 0.7, seed: int = 0, name: str = ""
) -> Graph:
    """Web-graph *copying model* (Kumar et al.).

    Each new page links to ``out_degree`` targets; with probability
    ``copy_prob`` a target is copied from a randomly chosen prototype
    page's links, otherwise it is uniform random. Copying concentrates
    in-links on early pages, producing the extreme max-degree hubs seen in
    the paper's web crawls (e.g. it2004's max degree of 1.3M).
    """
    if out_degree < 1:
        raise GraphError("out_degree must be >= 1")
    if not 0.0 <= copy_prob <= 1.0:
        raise GraphError("copy_prob must be in [0, 1]")
    rng = _rng(seed)
    seed_size = out_degree + 1
    edges: List[Tuple[int, int]] = [
        (u, v) for u in range(seed_size) for v in range(u + 1, seed_size)
    ]
    out_links: List[List[int]] = [
        [v for v in range(seed_size) if v != u] for u in range(seed_size)
    ]
    for u in range(seed_size, n):
        prototype = out_links[int(rng.integers(0, u))]
        links: List[int] = []
        for j in range(out_degree):
            if prototype and rng.random() < copy_prob:
                v = prototype[int(rng.integers(0, len(prototype)))]
            else:
                v = int(rng.integers(0, u))
            links.append(v)
        deduped = sorted(set(links))
        out_links.append(deduped)
        edges.extend((u, v) for v in deduped)
    return Graph(n, edges, name=name or f"copy-{n}-{out_degree}")


def powerlaw_configuration_graph(
    n: int, exponent: float = 2.5, min_degree: int = 2, seed: int = 0, name: str = ""
) -> Graph:
    """Configuration-model graph with a truncated power-law degree sequence.

    Multi-edges and self-loops produced by the stub matching are dropped,
    so realized degrees are slightly below the target sequence — standard
    practice for simple-graph projections of the configuration model.
    """
    if exponent <= 1.0:
        raise GraphError("exponent must be > 1")
    rng = _rng(seed)
    # Inverse-CDF sample of a discrete power law on [min_degree, n^0.5].
    max_degree = max(min_degree + 1, int(np.sqrt(n)))
    u = rng.random(n)
    a = 1.0 - exponent
    lo, hi = float(min_degree) ** a, float(max_degree) ** a
    degrees = np.floor((lo + u * (hi - lo)) ** (1.0 / a)).astype(np.int64)
    if degrees.sum() % 2:
        degrees[int(rng.integers(0, n))] += 1
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    return Graph.from_edge_array(n, pairs, name=name or f"plc-{n}-{exponent}")


def grid_graph(rows: int, cols: int, name: str = "") -> Graph:
    """2D grid; the worst case for landmark coverage (long distances)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges, name=name or f"grid-{rows}x{cols}")


def path_graph(n: int, name: str = "") -> Graph:
    """Simple path 0-1-...-(n-1)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)], name=name or f"path-{n}")


def star_graph(n: int, name: str = "") -> Graph:
    """Star with centre 0 and ``n - 1`` leaves."""
    if n < 1:
        raise GraphError("star needs at least one vertex")
    return Graph(n, [(0, i) for i in range(1, n)], name=name or f"star-{n}")
