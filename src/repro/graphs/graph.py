"""The :class:`Graph` façade: an immutable, unweighted, undirected graph.

This is the object every public API in the library accepts. It wraps a
:class:`~repro.graphs.csr.CSRAdjacency` and adds validation, convenience
accessors and the byte accounting used for ``|G|`` in Table 1 of the paper
(8 bytes per directed edge, i.e. each undirected edge counted twice).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError, VertexError
from repro.graphs.csr import CSRAdjacency, build_csr, induced_subgraph_csr

_BYTES_PER_DIRECTED_EDGE = 8


class Graph:
    """An immutable, simple, undirected, unweighted graph.

    Vertices are the integers ``0 .. n-1``. Parallel edges and self loops
    are removed at construction, matching the paper's preprocessing of all
    twelve datasets ("we treated them as undirected and unweighted").

    Args:
        num_vertices: number of vertices ``n``.
        edges: iterable of ``(u, v)`` pairs with ``0 <= u, v < n``.
        name: optional dataset name carried through to reports.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        name: str = "graph",
    ) -> None:
        self._csr = build_csr(num_vertices, edges)
        self.name = name

    # -- Alternative constructors ------------------------------------------

    @classmethod
    def from_csr(cls, csr: CSRAdjacency, name: str = "graph") -> "Graph":
        """Wrap an existing CSR adjacency without copying."""
        graph = cls.__new__(cls)
        graph._csr = csr
        graph.name = name
        return graph

    @classmethod
    def from_edge_array(
        cls, num_vertices: int, edge_array: np.ndarray, name: str = "graph"
    ) -> "Graph":
        """Build from an ``(m, 2)`` numpy array of endpoints."""
        graph = cls.__new__(cls)
        graph._csr = build_csr(num_vertices, edge_array)
        graph.name = name
        return graph

    # -- Basic properties ---------------------------------------------------

    @property
    def csr(self) -> CSRAdjacency:
        return self._csr

    @property
    def num_vertices(self) -> int:
        """``n`` — the number of vertices."""
        return self._csr.num_vertices

    @property
    def num_edges(self) -> int:
        """``m`` — the number of undirected edges."""
        return self._csr.num_directed_edges // 2

    @property
    def size_bytes(self) -> int:
        """``|G|`` per Table 1: 8 bytes per edge direction (forward+reverse)."""
        return self._csr.num_directed_edges * _BYTES_PER_DIRECTED_EDGE

    def degree(self, v: int) -> int:
        self.validate_vertex(v)
        return self._csr.degree(v)

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an int64 array."""
        return self._csr.degrees()

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` (a read-only view)."""
        self.validate_vertex(v)
        return self._csr.neighbors(v)

    def has_edge(self, u: int, v: int) -> bool:
        self.validate_vertex(u)
        self.validate_vertex(v)
        row = self._csr.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < len(row) and int(row[pos]) == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self._csr.neighbors(u):
                if u < int(v):
                    yield u, int(v)

    def validate_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise VertexError(v, self.num_vertices)

    # -- Derived graphs -------------------------------------------------------

    def induced_subgraph(self, keep: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on the given vertices.

        Returns the subgraph (with vertices renumbered ``0..k-1``) and the
        array mapping new ids back to the original ids.
        """
        mask = np.zeros(self.num_vertices, dtype=bool)
        keep_arr = np.asarray(list(keep), dtype=np.int64)
        if keep_arr.size and (keep_arr.min() < 0 or keep_arr.max() >= self.num_vertices):
            raise GraphError("induced subgraph vertex out of range")
        mask[keep_arr] = True
        sub_csr, old_ids = induced_subgraph_csr(self._csr, mask)
        return Graph.from_csr(sub_csr, name=f"{self.name}[induced]"), old_ids

    def with_edges_added(
        self, new_edges: Iterable[Tuple[int, int]], name: Optional[str] = None
    ) -> "Graph":
        """A new graph with extra edges (graphs are immutable).

        Used by the dynamic-update extension and by tests.
        """
        heads = np.repeat(np.arange(self.num_vertices), np.diff(self._csr.indptr))
        existing = np.stack([heads, self._csr.indices], axis=1)
        extra = np.asarray(list(new_edges), dtype=np.int64).reshape(-1, 2)
        combined = np.concatenate([existing, extra], axis=0)
        return Graph.from_edge_array(
            self.num_vertices, combined, name=name or self.name
        )

    def with_edges_removed(
        self, removed: Iterable[Tuple[int, int]], name: Optional[str] = None
    ) -> "Graph":
        """A new graph with the given edges removed (graphs are immutable).

        The counterpart of :meth:`with_edges_added`, used by the dynamic
        oracle's ``delete_edge``. Works directly on the CSR arrays — no
        Python-level edge iteration.

        Raises:
            GraphError: if an endpoint is out of range or an edge to
                remove does not exist.
        """
        n = self.num_vertices
        removed_arr = np.asarray(list(removed), dtype=np.int64).reshape(-1, 2)
        if removed_arr.size and (
            removed_arr.min() < 0 or removed_arr.max() >= n
        ):
            raise GraphError("edge endpoint out of range")
        heads = np.repeat(np.arange(n), np.diff(self._csr.indptr))
        tails = self._csr.indices.astype(np.int64)
        keys = np.minimum(heads, tails) * n + np.maximum(heads, tails)
        removed_keys = (
            np.minimum(removed_arr[:, 0], removed_arr[:, 1]) * n
            + np.maximum(removed_arr[:, 0], removed_arr[:, 1])
        )
        missing = ~np.isin(removed_keys, keys)
        if missing.any():
            u, v = removed_arr[np.flatnonzero(missing)[0]]
            raise GraphError(f"edge ({u}, {v}) does not exist")
        keep = ~np.isin(keys, removed_keys)
        return Graph.from_edge_array(
            n,
            np.stack([heads[keep], tails[keep]], axis=1),
            name=name or self.name,
        )

    # -- Dunder helpers -------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(name={self.name!r}, n={self.num_vertices}, m={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self._csr.indptr, other._csr.indptr)
            and np.array_equal(self._csr.indices, other._csr.indices)
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges, self.name))
