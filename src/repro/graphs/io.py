"""Edge-list IO: the formats the paper's datasets ship in.

Supports the whitespace-separated edge-list format used by SNAP / KONECT /
LAW (one ``u v`` pair per line, ``#`` or ``%`` comments), plus a compact
binary format for caching generated surrogates between runs.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

_MAGIC = b"RPRG"
_VERSION = 1

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, name: str = "") -> Graph:
    """Read a whitespace-separated edge list.

    Vertex ids may be arbitrary non-negative integers; they are compacted
    to ``0..n-1`` preserving order of first appearance of the sorted id
    set (i.e. by numeric id), the usual convention for SNAP files.
    """
    path = Path(path)
    heads: List[int] = []
    tails: List[int] = []
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped[0] in "#%":
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_no}: expected 'u v', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(f"{path}:{line_no}: non-integer vertex id") from exc
            if u < 0 or v < 0:
                raise GraphError(f"{path}:{line_no}: negative vertex id")
            heads.append(u)
            tails.append(v)
    if not heads:
        return Graph(0, [], name=name or path.stem)
    raw = np.asarray([heads, tails], dtype=np.int64).T
    ids = np.unique(raw)
    compact = np.searchsorted(ids, raw)
    return Graph.from_edge_array(len(ids), compact, name=name or path.stem)


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write each undirected edge once as ``u v`` per line."""
    path = Path(path)
    with path.open("w") as handle:
        if header:
            handle.write(f"# {graph.name}: n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def write_binary(graph: Graph, path: PathLike) -> None:
    """Write the CSR arrays in a compact binary cache format."""
    path = Path(path)
    csr = graph.csr
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<II", _VERSION, 0))
        name_bytes = graph.name.encode("utf-8")
        handle.write(struct.pack("<I", len(name_bytes)))
        handle.write(name_bytes)
        handle.write(struct.pack("<QQ", csr.num_vertices, len(csr.indices)))
        handle.write(csr.indptr.astype("<i8").tobytes())
        handle.write(csr.indices.astype("<i4").tobytes())


def read_binary(path: PathLike) -> Graph:
    """Read a graph previously written by :func:`write_binary`."""
    path = Path(path)
    with path.open("rb") as handle:
        if handle.read(4) != _MAGIC:
            raise GraphError(f"{path}: not a repro binary graph file")
        version, _ = struct.unpack("<II", handle.read(8))
        if version != _VERSION:
            raise GraphError(f"{path}: unsupported version {version}")
        (name_len,) = struct.unpack("<I", handle.read(4))
        name = handle.read(name_len).decode("utf-8")
        n, nnz = struct.unpack("<QQ", handle.read(16))
        indptr = np.frombuffer(handle.read(8 * (n + 1)), dtype="<i8")
        indices = np.frombuffer(handle.read(4 * nnz), dtype="<i4")
    from repro.graphs.csr import CSRAdjacency

    csr = CSRAdjacency(indptr=indptr.astype(np.int64), indices=indices.astype(np.int32))
    return Graph.from_csr(csr, name=name)
