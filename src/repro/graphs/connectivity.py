"""Connected components and largest-component extraction.

The paper assumes graphs are connected (Section 2); our generators can
produce stragglers, so the dataset registry extracts the largest connected
component before handing graphs to any labelling method.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graphs.csr import frontier_neighbors
from repro.graphs.graph import Graph


def connected_components(graph: Graph) -> np.ndarray:
    """Label each vertex with a component id (0-based, dense).

    Runs repeated vectorized BFS sweeps; linear in ``n + m``.
    """
    n = graph.num_vertices
    component = np.full(n, -1, dtype=np.int64)
    next_component = 0
    for start in range(n):
        if component[start] != -1:
            continue
        component[start] = next_component
        frontier = np.asarray([start], dtype=np.int64)
        while frontier.size:
            neighbors = frontier_neighbors(graph.csr, frontier)
            fresh = neighbors[component[neighbors] == -1]
            if fresh.size == 0:
                break
            component[fresh] = next_component
            frontier = np.unique(fresh).astype(np.int64)
        next_component += 1
    return component


def largest_connected_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Extract the largest connected component, renumbered ``0..k-1``.

    Returns the component as a new :class:`Graph` plus the mapping from
    new vertex ids to original ids.
    """
    component = connected_components(graph)
    if graph.num_vertices == 0:
        return graph, np.empty(0, dtype=np.int64)
    sizes = np.bincount(component)
    biggest = int(np.argmax(sizes))
    keep = np.flatnonzero(component == biggest)
    sub, old_ids = graph.induced_subgraph(keep)
    sub.name = graph.name
    return sub, old_ids


def is_connected(graph: Graph) -> bool:
    """True iff the graph has exactly one connected component."""
    if graph.num_vertices == 0:
        return True
    return bool(connected_components(graph).max() == 0)
