"""Graph statistics in the exact shape of Table 1 of the paper."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.utils.formatting import format_bytes


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 1: n, m, m/n, average degree, max degree, |G|."""

    name: str
    network_type: str
    num_vertices: int
    num_edges: int
    size_bytes: int
    avg_degree: float
    max_degree: int

    @property
    def edge_vertex_ratio(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def as_row(self) -> list:
        """Row cells in Table 1's column order."""
        return [
            self.name,
            self.network_type,
            f"{self.num_vertices:,}",
            f"{self.num_edges:,}",
            f"{self.edge_vertex_ratio:.1f}",
            f"{self.avg_degree:.3f}",
            f"{self.max_degree}",
            format_bytes(self.size_bytes),
        ]


def compute_stats(graph: Graph, network_type: str = "synthetic") -> GraphStats:
    """Compute a :class:`GraphStats` row for a graph.

    ``|G|`` counts each edge in both adjacency directions at 8 bytes, the
    same accounting as the paper's Table 1 caption.
    """
    degrees = graph.degrees()
    return GraphStats(
        name=graph.name,
        network_type=network_type,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        size_bytes=graph.size_bytes,
        avg_degree=float(degrees.mean()) if graph.num_vertices else 0.0,
        max_degree=int(degrees.max()) if graph.num_vertices else 0,
    )
