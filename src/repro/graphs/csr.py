"""Compressed sparse row (CSR) adjacency for unweighted graphs.

Every traversal in this library runs over one of these: two numpy arrays,
``indptr`` (length ``n + 1``) and ``indices`` (length ``2m`` for an
undirected graph, since each edge is stored in both directions — the same
accounting the paper uses for ``|G|`` in Table 1).

The module also provides :func:`frontier_neighbors`, the vectorized gather
used by every level-synchronous BFS in the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True)
class CSRAdjacency:
    """Immutable CSR adjacency structure.

    Attributes:
        indptr: ``int64`` array of length ``n + 1``; the neighbours of
            vertex ``v`` are ``indices[indptr[v]:indptr[v + 1]]``.
        indices: ``int32`` array of neighbour ids, sorted within each row.
    """

    indptr: np.ndarray
    indices: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_directed_edges(self) -> int:
        return int(self.indptr[-1])

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]


def build_csr(n: int, edges: Iterable[Tuple[int, int]]) -> CSRAdjacency:
    """Build an undirected, deduplicated CSR adjacency from an edge list.

    Self-loops and duplicate/reversed duplicates are dropped, matching the
    paper's treatment of all datasets as simple undirected graphs.

    Args:
        n: number of vertices; edge endpoints must lie in ``[0, n)``.
        edges: iterable of ``(u, v)`` pairs.

    Raises:
        GraphError: if ``n`` is negative or an endpoint is out of range.
    """
    if n < 0:
        raise GraphError(f"vertex count must be non-negative, got {n}")
    edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edge_array.size == 0:
        edge_array = np.empty((0, 2), dtype=np.int64)
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise GraphError("edge list must be a sequence of (u, v) pairs")
    edge_array = edge_array.astype(np.int64, copy=False)
    if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= n):
        raise GraphError("edge endpoint out of range")

    # Drop self loops, canonicalize to u < v, and deduplicate.
    u, v = edge_array[:, 0], edge_array[:, 1]
    keep = u != v
    u, v = u[keep], v[keep]
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    if lo.size:
        keys = lo * n + hi
        _, unique_idx = np.unique(keys, return_index=True)
        lo, hi = lo[unique_idx], hi[unique_idx]

    heads = np.concatenate([lo, hi])
    tails = np.concatenate([hi, lo])
    order = np.lexsort((tails, heads))
    heads, tails = heads[order], tails[order]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, heads + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRAdjacency(indptr=indptr, indices=tails.astype(np.int32))


def frontier_neighbors(csr: CSRAdjacency, frontier: np.ndarray) -> np.ndarray:
    """Gather the concatenated neighbour lists of all frontier vertices.

    This is the vectorized core of every BFS here: for a frontier
    ``f_1..f_k`` it returns ``indices[indptr[f_1]:indptr[f_1+1]] ++ ...``
    without a Python-level loop, using the repeat/cumsum trick.
    """
    starts = csr.indptr[frontier]
    ends = csr.indptr[frontier + 1]
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=csr.indices.dtype)
    # For frontier member j, its slots in the output are
    # [c_{j-1}, c_j) where c is the cumulative count; the gather index for
    # global position p in that range is starts[j] + (p - c_{j-1}).
    cumulative = np.cumsum(counts)
    gather = np.repeat(ends - cumulative, counts) + np.arange(total, dtype=np.int64)
    return csr.indices[gather]


def bitset_neighbor_or(
    csr: CSRAdjacency,
    words: np.ndarray,
    out: np.ndarray = None,
    edge_block: int = None,
    block_hook=None,
) -> np.ndarray:
    """``out[v] = OR of words[u] over u in N(v)`` — a boolean-semiring
    adjacency mat-vec over per-vertex bitset words.

    This is the level step of every stacked (bit-parallel) BFS: with bit
    ``i`` of ``words[u]`` meaning "u is in BFS i's frontier", one call
    advances up to 64 BFSs across *all* edges at once via a single
    gather + segmented OR, instead of per-(BFS, edge) work.

    Args:
        csr: the adjacency.
        words: unsigned-integer array of length ``num_vertices``.
        out: optional preallocated output array (same shape/dtype).
        edge_block: when set, sweep the edge array in row-aligned blocks
            of at most this many directed edges instead of one pass, so
            the gather temporary is ``O(edge_block)`` rather than
            ``O(m)`` — the knob the out-of-core builder uses to keep a
            memmapped adjacency from being fully resident. Blocks split
            only at row boundaries, so the result is bitwise identical
            to the unblocked pass.
        block_hook: optional zero-argument callable invoked after each
            edge block (only on the blocked path) — the out-of-core
            builder uses it to drop the block's now-swept adjacency
            pages, keeping resident memory ``O(edge_block)`` even
            *within* a level.
    """
    n = csr.num_vertices
    if out is None:
        out = np.zeros(n, dtype=words.dtype)
    else:
        out[:] = 0
    total = len(csr.indices)
    if total == 0:
        return out
    # reduceat quirks around empty segments (they return a[start] instead
    # of the identity, and clipping starts truncates the *previous*
    # segment): reduce over the nonempty rows only, whose start offsets
    # are strictly increasing and tile the index array exactly.
    if edge_block is None or total <= edge_block:
        nonempty = np.flatnonzero(csr.indptr[1:] > csr.indptr[:-1])
        out[nonempty] = np.bitwise_or.reduceat(
            words[csr.indices], csr.indptr[nonempty]
        )
        return out
    start_v = 0
    while start_v < n:
        limit = int(csr.indptr[start_v]) + int(edge_block)
        end_v = int(np.searchsorted(csr.indptr, limit, side="right")) - 1
        end_v = min(max(end_v, start_v + 1), n)
        edge_lo = int(csr.indptr[start_v])
        edge_hi = int(csr.indptr[end_v])
        if edge_hi > edge_lo:
            block_ptr = csr.indptr[start_v : end_v + 1]
            nonempty = np.flatnonzero(block_ptr[1:] > block_ptr[:-1])
            gathered = words[csr.indices[edge_lo:edge_hi]]
            out[start_v + nonempty] = np.bitwise_or.reduceat(
                gathered, (block_ptr[nonempty] - edge_lo).astype(np.int64)
            )
        if block_hook is not None:
            block_hook()
        start_v = end_v
    return out


def induced_subgraph_csr(
    csr: CSRAdjacency, keep: np.ndarray
) -> Tuple[CSRAdjacency, np.ndarray]:
    """Build the CSR of the induced subgraph on ``keep`` (boolean mask).

    Returns the new CSR and an ``old_id`` array mapping new ids to old ids.
    Used by tests and by IS-L's hierarchy construction.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != (csr.num_vertices,):
        raise GraphError("keep mask must have one entry per vertex")
    old_ids = np.flatnonzero(keep)
    new_id = np.full(csr.num_vertices, -1, dtype=np.int64)
    new_id[old_ids] = np.arange(len(old_ids))

    heads_old = np.repeat(np.arange(csr.num_vertices), np.diff(csr.indptr))
    tails_old = csr.indices
    edge_keep = keep[heads_old] & keep[tails_old]
    heads = new_id[heads_old[edge_keep]]
    tails = new_id[tails_old[edge_keep]]
    mask = heads < tails  # each undirected edge appears once in this form
    sub = build_csr(len(old_ids), np.stack([heads[mask], tails[mask]], axis=1))
    return sub, old_ids
