"""Random vertex-pair sampling and distance distributions (Figure 6).

The paper samples 100,000 random vertex pairs per dataset and plots the
fraction of pairs at each distance. These helpers implement both the
sampler and the histogram.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph


def sample_vertex_pairs(
    graph: Graph, num_pairs: int, seed: int = 0, distinct: bool = True
) -> np.ndarray:
    """Sample ``num_pairs`` uniform random vertex pairs as an (k, 2) array.

    Pairs are drawn from ``V x V`` exactly as in the paper's Section 6.1;
    ``distinct=True`` redraws the (vanishingly rare) ``s == t`` pairs so
    that query benchmarks never measure the trivial case.
    """
    n = graph.num_vertices
    if n < 2:
        raise GraphError("need at least two vertices to sample pairs")
    if num_pairs < 0:
        raise GraphError("num_pairs must be non-negative")
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, n, size=(num_pairs, 2), dtype=np.int64)
    if distinct:
        same = pairs[:, 0] == pairs[:, 1]
        while same.any():
            pairs[same, 1] = rng.integers(0, n, size=int(same.sum()))
            same = pairs[:, 0] == pairs[:, 1]
    return pairs


def distance_distribution(
    pairs: np.ndarray, distance_fn: Callable[[int, int], float]
) -> Dict[int, float]:
    """Fraction of pairs at each finite distance (Figure 6's y-axis).

    Args:
        pairs: ``(k, 2)`` array of vertex pairs.
        distance_fn: exact distance oracle, e.g. ``oracle.query``.

    Returns:
        Mapping ``distance -> fraction of sampled pairs``; unreachable
        pairs are accumulated under the key ``-1``.
    """
    if len(pairs) == 0:
        return {}
    counts: Dict[int, int] = {}
    for s, t in pairs:
        d = distance_fn(int(s), int(t))
        key = -1 if d == float("inf") else int(d)
        counts[key] = counts.get(key, 0) + 1
    total = len(pairs)
    return {dist: c / total for dist, c in sorted(counts.items())}
