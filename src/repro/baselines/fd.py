"""FD — the hybrid method of Hayashi, Akiba, Kawarabayashi (CIKM 2016).

The paper's closest competitor ("most closely related to our work",
Section 7). FD selects a small landmark set ``R`` (20 in the paper's
setup) and precomputes a full shortest-path tree (SPT) from every
landmark, augmented with bit-parallel masks for up to 64 neighbours per
landmark. A query ``(s, t)``:

1. takes the upper bound ``min over r of d(r, s) + d(r, t)``, refined by
   the BP masks (the shared-neighbour −1/−2 shortcuts), then
2. runs a bounded bidirectional BFS on ``G \\ R`` and returns the minimum.

Contrast with HL (what Table 2/3 and Figure 9 measure):

* FD stores ``k`` entries for *every* vertex (ALS = ``20 + 64``), while
  HL's pruned labels average ~10 entries — the label-size gap of Table 3.
* FD's BP masks effectively add up to 64 sub-hubs per landmark, which is
  why its pair-coverage ratio beats HL's in Figure 9 even with the same
  landmark set.
* FD's construction does one *full* BFS plus one BP-BFS per landmark —
  no pruning — which is why HL constructs 2-5x faster (Table 2).

The original system also supports dynamic edge insertions; this
reproduction implements the static core that the paper benchmarks, plus
:meth:`insert_edge` for the decrease-only SPT repair, matching the
"fully dynamic" paper's insertion algorithm.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api.protocol import BatchFallback, Capability
from repro.baselines.bitparallel import BitParallelLabels, build_bit_parallel_labels
from repro.errors import NotBuiltError
from repro.graphs.graph import Graph
from repro.landmarks.selection import select_landmarks
from repro.search.bfs import UNREACHED, bfs_distances
from repro.search.bounded import bounded_bidirectional_distance
from repro.utils.timing import Stopwatch, TimeBudget

_SPT_ENTRY_BYTES = 5  # 32-bit vertex id + 8-bit distance per landmark entry


class FullyDynamicOracle(BatchFallback):
    """FD distance oracle: landmark SPTs + BP masks + bounded search.

    Note on capabilities: FD implements :meth:`insert_edge` (the FD
    paper's decrease-only repair) but **not** edge deletion, so it does
    not advertise ``Capability.DYNAMIC`` — that capability contracts
    both directions. Callers that only insert may still duck-type the
    method.

    Args:
        num_landmarks: size of ``R`` (the paper's comparison uses 20).
        use_bit_parallel: track up to 64 neighbours per landmark with BP
            masks (the paper's configuration); disable for ablations.
        budget_s: construction budget (DNF reporting).
    """

    name = "FD"
    CAPABILITIES = frozenset({Capability.BATCH})

    def capabilities(self) -> frozenset:
        return self.CAPABILITIES

    def __init__(
        self,
        num_landmarks: int = 20,
        use_bit_parallel: bool = True,
        budget_s: Optional[float] = None,
        landmark_strategy: str = "degree",
    ) -> None:
        self.num_landmarks = num_landmarks
        self.use_bit_parallel = use_bit_parallel
        self.budget_s = budget_s
        self.landmark_strategy = landmark_strategy
        self.graph: Optional[Graph] = None
        self.landmarks: Optional[List[int]] = None
        self.spt: Optional[np.ndarray] = None  # (k, n) distances
        self.bp: Optional[BitParallelLabels] = None
        self._landmark_mask: Optional[np.ndarray] = None
        self.construction_seconds = 0.0

    # -- Construction ---------------------------------------------------------

    def build(self, graph: Graph) -> "FullyDynamicOracle":
        budget = TimeBudget(self.budget_s, method=self.name)
        with Stopwatch() as sw:
            landmarks = select_landmarks(
                graph, self.num_landmarks, strategy=self.landmark_strategy
            )
            rows = []
            for r in landmarks:
                budget.check()
                rows.append(bfs_distances(graph, r))
            spt = np.stack(rows)
            bp = None
            if self.use_bit_parallel:
                budget.check()
                bp = build_bit_parallel_labels(graph, landmarks)
        self.graph = graph
        self.landmarks = landmarks
        self.spt = spt
        self.bp = bp
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[landmarks] = True
        self._landmark_mask = mask
        self.construction_seconds = sw.elapsed
        return self

    # -- Queries ---------------------------------------------------------------

    def upper_bound(self, s: int, t: int) -> float:
        """min over landmarks of ``d(r,s) + d(r,t)``, BP-refined."""
        spt = self._require_built()
        ds, dt = spt[:, s].astype(np.int64), spt[:, t].astype(np.int64)
        usable = (ds != UNREACHED) & (dt != UNREACHED)
        bound = float((ds[usable] + dt[usable]).min()) if usable.any() else float("inf")
        if self.bp is not None:
            bound = min(bound, self.bp.query(s, t))
        return bound

    def query(self, s: int, t: int) -> float:
        """Exact distance: BP-refined landmark bound + bounded search."""
        self._require_built()
        assert self.graph is not None and self._landmark_mask is not None
        self.graph.validate_vertex(s)
        self.graph.validate_vertex(t)
        if s == t:
            return 0.0
        bound = self.upper_bound(s, t)
        if self._landmark_mask[s] or self._landmark_mask[t]:
            # A landmark endpoint: the SPT rows are exact already.
            assert self.spt is not None and self.landmarks is not None
            if self._landmark_mask[s]:
                row = self.spt[self.landmarks.index(s)]
                d = float(row[t])
            else:
                row = self.spt[self.landmarks.index(t)]
                d = float(row[s])
            return d if d != float(UNREACHED) else float("inf")
        return bounded_bidirectional_distance(
            self.graph, s, t, bound, excluded=self._landmark_mask
        )

    def is_covered(self, s: int, t: int) -> bool:
        """Pair coverage as in Figure 9: the bound alone is already exact."""
        return self.query(s, t) == self.upper_bound(s, t)

    # -- Dynamic updates ----------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> None:
        """Edge insertion with decrease-only SPT repair.

        Distances can only shrink on insertion, so each landmark's SPT row
        is repaired by a pruned BFS seeded at whichever endpoint improves
        (the insertion algorithm of the FD paper). BP masks are rebuilt
        lazily because mask deltas are not decrease-only.
        """
        graph, spt = self.graph, self.spt
        if graph is None or spt is None:
            raise NotBuiltError("call build(graph) before updating")
        graph.validate_vertex(u)
        graph.validate_vertex(v)
        new_graph = graph.with_edges_added([(u, v)])
        for row in spt:
            du, dv = int(row[u]), int(row[v])
            if du == UNREACHED and dv == UNREACHED:
                continue
            # Seed the repair from the endpoint whose distance improves.
            if du > dv + 1:
                seeds = [(u, dv + 1)]
            elif dv > du + 1:
                seeds = [(v, du + 1)]
            else:
                continue
            frontier = []
            for vertex, new_dist in seeds:
                row[vertex] = new_dist
                frontier.append(vertex)
            depth_of = {vertex: nd for vertex, nd in seeds}
            while frontier:
                next_frontier = []
                for x in frontier:
                    for y in new_graph.neighbors(x):
                        y = int(y)
                        if int(row[y]) > depth_of[x] + 1:
                            row[y] = depth_of[x] + 1
                            depth_of[y] = depth_of[x] + 1
                            next_frontier.append(y)
                frontier = next_frontier
        self.graph = new_graph
        if self.bp is not None and self.landmarks is not None:
            self.bp = build_bit_parallel_labels(new_graph, self.landmarks)

    # -- Reporting ----------------------------------------------------------------

    def size_bytes(self) -> int:
        spt = self._require_built()
        total = spt.shape[0] * spt.shape[1] * _SPT_ENTRY_BYTES
        if self.bp is not None:
            total += self.bp.size_bytes()
        return total

    def average_label_size(self) -> float:
        """ALS in the paper's "20+64" notation, as a single number."""
        spt = self._require_built()
        als = float(spt.shape[0])
        if self.bp is not None:
            als += self.bp.average_entries()
        return als

    def als_display(self) -> str:
        """The exact "k+64" string Table 2 prints."""
        spt = self._require_built()
        if self.bp is None:
            return str(spt.shape[0])
        return f"{spt.shape[0]}+{int(round(self.bp.average_entries()))}"

    def _require_built(self) -> np.ndarray:
        if self.spt is None:
            raise NotBuiltError("call build(graph) before querying")
        return self.spt
