"""ALT — A* with landmark lower bounds (Goldberg & Harrelson, SODA 2005).

Related-work baseline (paper Section 7): "they precomputed labeling based
on landmarks to estimate the lower bounds, and used that estimate with a
bidirectional A* search... this method is known to work only for road
networks and do not scale well on complex networks". We implement the
(unidirectional, unit-weight) ALT variant to make that claim measurable:

* offline: exact distance arrays from ``k`` landmarks (like FD's SPTs);
* online: A* from ``s`` guided by the admissible heuristic
  ``h(v) = max over r of |d(r, v) − d(r, t)|`` (triangle inequality,
  Equation 2 of the paper).

On road networks the heuristic is sharp (distances are near-metric); on
small-world graphs almost every ``h(v)`` collapses to 0-2, so ALT
degenerates toward plain BFS — exactly the behaviour the related work
reports, and what `tests/test_alt.py` and the ablation bench measure.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.api.protocol import BatchFallback, Capability
from repro.errors import NotBuiltError
from repro.graphs.graph import Graph
from repro.landmarks.selection import select_landmarks
from repro.search.bfs import UNREACHED, bfs_distances
from repro.utils.timing import Stopwatch, TimeBudget

_ENTRY_BYTES = 5


class ALTOracle(BatchFallback):
    """A* with landmark-difference lower bounds (exact on unit weights)."""

    name = "ALT"
    CAPABILITIES = frozenset({Capability.BATCH})

    def capabilities(self) -> frozenset:
        return self.CAPABILITIES

    def __init__(
        self,
        num_landmarks: int = 16,
        budget_s: Optional[float] = None,
        landmark_strategy: str = "degree",
    ) -> None:
        self.num_landmarks = num_landmarks
        self.budget_s = budget_s
        self.landmark_strategy = landmark_strategy
        self.graph: Optional[Graph] = None
        self.landmark_dists: Optional[np.ndarray] = None  # (k, n)
        self.construction_seconds = 0.0
        self.last_settled = 0  # instrumentation: vertices popped by A*

    def build(self, graph: Graph) -> "ALTOracle":
        budget = TimeBudget(self.budget_s, method=self.name)
        with Stopwatch() as sw:
            landmarks = select_landmarks(
                graph, self.num_landmarks, strategy=self.landmark_strategy
            )
            rows = []
            for r in landmarks:
                budget.check()
                rows.append(bfs_distances(graph, r))
            self.landmark_dists = np.stack(rows).astype(np.int64)
        self.graph = graph
        self.construction_seconds = sw.elapsed
        return self

    def _heuristic_table(self, t: int) -> np.ndarray:
        """``h(v) = max_r |d(r,v) - d(r,t)|`` for every vertex (admissible)."""
        assert self.landmark_dists is not None
        table = self.landmark_dists
        target_col = table[:, t : t + 1]
        usable = (table != UNREACHED) & (target_col != UNREACHED)
        diffs = np.where(usable, np.abs(table - target_col), 0)
        return diffs.max(axis=0)

    def query(self, s: int, t: int) -> float:
        """Exact distance via A* under the landmark heuristic."""
        if self.graph is None or self.landmark_dists is None:
            raise NotBuiltError("call build(graph) before querying")
        graph = self.graph
        graph.validate_vertex(s)
        graph.validate_vertex(t)
        if s == t:
            self.last_settled = 0
            return 0.0
        h = self._heuristic_table(t)
        n = graph.num_vertices
        g_score = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        g_score[s] = 0
        heap: List = [(int(h[s]), 0, s)]
        settled = np.zeros(n, dtype=bool)
        popped = 0
        csr = graph.csr
        while heap:
            f, g, u = heapq.heappop(heap)
            if settled[u]:
                continue
            settled[u] = True
            popped += 1
            if u == t:
                self.last_settled = popped
                return float(g)
            for v in csr.neighbors(u):
                v = int(v)
                ng = g + 1
                if ng < g_score[v]:
                    g_score[v] = ng
                    heapq.heappush(heap, (ng + int(h[v]), ng, v))
        self.last_settled = popped
        return float("inf")

    def size_bytes(self) -> int:
        if self.landmark_dists is None:
            raise NotBuiltError("call build(graph) first")
        return int(self.landmark_dists.shape[0] * self.landmark_dists.shape[1] * _ENTRY_BYTES)

    def average_label_size(self) -> float:
        if self.landmark_dists is None:
            return 0.0
        return float(self.landmark_dists.shape[0])
