"""The common oracle protocol shared by HL and every baseline."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.graphs.graph import Graph


@runtime_checkable
class DistanceOracle(Protocol):
    """What the experiment harness requires of a distance-query method.

    ``build`` may raise
    :class:`~repro.errors.ConstructionBudgetExceeded`, which the harness
    reports as DNF; ``query`` must return exact distances (``inf`` when
    disconnected). ``size_bytes``/``average_label_size`` feed Tables 2-3;
    online methods report zero-size indexes.
    """

    name: str

    def build(self, graph: Graph) -> "DistanceOracle":
        """Precompute the index (may be a no-op for online methods)."""
        ...

    def query(self, s: int, t: int) -> float:
        """Exact shortest-path distance between ``s`` and ``t``."""
        ...

    def size_bytes(self) -> int:
        """Index size in bytes under the paper's accounting."""
        ...

    def average_label_size(self) -> float:
        """Average label entries per vertex (ALS column of Table 2)."""
        ...
