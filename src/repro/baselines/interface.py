"""Deprecated shim — the oracle protocol moved to :mod:`repro.api`.

The minimal ``DistanceOracle`` protocol that used to live here was
promoted into the capability-based API package
(:mod:`repro.api.protocol`), which adds ``capabilities()``
introspection and the optional batch/dynamic/snapshot/path layers.
This module keeps the old import path working for one release:

    from repro.baselines.interface import DistanceOracle   # deprecated

emits a :class:`DeprecationWarning` and hands back
:class:`repro.api.DistanceOracle`. New code should import from
:mod:`repro.api`.
"""

from __future__ import annotations

import warnings

_MOVED = {
    "DistanceOracle": "repro.api",
}


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.baselines.interface.{name} is deprecated; import it "
            f"from {_MOVED[name]} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.protocol import DistanceOracle

        return DistanceOracle
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(_MOVED)
