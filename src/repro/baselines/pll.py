"""Pruned Landmark Labelling — PLL (Akiba, Iwata, Yoshida, SIGMOD 2013).

The 2-hop-cover state of the art the paper compares against. PLL orders
vertices (by decreasing degree, the authors' recommendation), then runs a
*pruned BFS from every vertex* in that order: when the BFS from root
``v_k`` reaches a vertex ``u`` at distance ``d`` and the already-built
labels can certify ``d(v_k, u) <= d``, the branch is pruned; otherwise the
entry ``(k, d)`` is appended to ``L(u)``.

Two properties the paper leans on, both reproduced here and asserted by
the test suite:

* PLL is **order-dependent** (Example 3.10 / Figure 4): different vertex
  orders produce labellings of different sizes.
* PLL label sizes dominate HL's for the same landmarks (Corollary 3.14);
  at full scale its construction cost is what makes it DNF on 7 of the 12
  datasets (Table 2) — reproduced via the construction budget.

Optionally, the first ``bp_roots`` roots get bit-parallel labels
(Section 5.1; 50 in the paper's setup), which prune more and answer
queries with mask refinements — see :mod:`repro.baselines.bitparallel`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.api.protocol import BatchFallback, Capability
from repro.baselines.bitparallel import BitParallelLabels, build_bit_parallel_labels
from repro.errors import NotBuiltError
from repro.graphs.graph import Graph
from repro.utils.timing import Stopwatch, TimeBudget

_ENTRY_BYTES = 5  # 32-bit vertex id + 8-bit distance, as in the paper §5.2


class PrunedLandmarkLabelling(BatchFallback):
    """PLL distance oracle (full 2-hop cover over all vertices).

    Args:
        order: explicit vertex order, or ``None`` for decreasing degree.
        bp_roots: number of bit-parallel roots built before normal
            labelling (0 disables; the paper's comparison uses 50).
        budget_s: construction time budget (DNF reporting).
    """

    name = "PLL"
    CAPABILITIES = frozenset({Capability.BATCH})

    def capabilities(self) -> frozenset:
        return self.CAPABILITIES

    def __init__(
        self,
        order: Optional[Sequence[int]] = None,
        bp_roots: int = 0,
        budget_s: Optional[float] = None,
    ) -> None:
        self._explicit_order = list(order) if order is not None else None
        self.bp_roots = bp_roots
        self.budget_s = budget_s
        self.graph: Optional[Graph] = None
        self.labels: Optional[List[List[tuple]]] = None
        self.bp_labels: Optional[BitParallelLabels] = None
        self.construction_seconds = 0.0

    # -- Construction -----------------------------------------------------

    def build(self, graph: Graph) -> "PrunedLandmarkLabelling":
        budget = TimeBudget(self.budget_s, method=self.name)
        with Stopwatch() as sw:
            self._build_inner(graph, budget)
        self.construction_seconds = sw.elapsed
        return self

    def _build_inner(self, graph: Graph, budget: TimeBudget) -> None:
        n = graph.num_vertices
        if self._explicit_order is not None:
            order = list(self._explicit_order)
        else:
            order = [int(v) for v in np.argsort(-graph.degrees(), kind="stable")]
        labels: List[List[tuple]] = [[] for _ in range(n)]

        bp_label_obj = None
        bp_root_set: set = set()
        if self.bp_roots > 0:
            roots = order[: self.bp_roots]
            bp_label_obj = build_bit_parallel_labels(graph, roots)
            bp_root_set = set(roots)

        # hub_dist[h] caches the current root's label as a dense array for
        # O(|L(u)|) prune queries (the standard PLL implementation trick).
        hub_dist = np.full(n, np.iinfo(np.int32).max, dtype=np.int64)
        csr = graph.csr
        for rank, root in enumerate(order):
            budget.check()
            root_label = labels[root]
            for hub, d in root_label:
                hub_dist[hub] = d
            dist = np.full(n, -1, dtype=np.int32)
            dist[root] = 0
            frontier = [root]
            depth = 0
            while frontier:
                next_frontier: List[int] = []
                for u in frontier:
                    # Prune via existing labels (2-hop cover query), and via
                    # bit-parallel labels when enabled.
                    if u != root:
                        if self._pruned(labels[u], hub_dist, depth) or (
                            bp_label_obj is not None
                            and bp_label_obj.query(root, u) <= depth
                        ):
                            continue
                        labels[u].append((rank, depth))
                    for v in csr.neighbors(u):
                        v = int(v)
                        if dist[v] == -1:
                            dist[v] = depth + 1
                            next_frontier.append(v)
                frontier = next_frontier
                depth += 1
            for hub, _ in root_label:
                hub_dist[hub] = np.iinfo(np.int32).max
            # The root covers itself at distance 0 for later prune queries.
            labels[root].append((rank, 0))

        self.graph = graph
        self.labels = labels
        self.bp_labels = bp_label_obj
        self._order = order
        self._bp_root_set = bp_root_set

    @staticmethod
    def _pruned(label_u: List[tuple], hub_dist: np.ndarray, depth: int) -> bool:
        for hub, d in label_u:
            if d + hub_dist[hub] <= depth:
                return True
        return False

    # -- Queries ------------------------------------------------------------

    def query(self, s: int, t: int) -> float:
        """2-hop cover query: min over common hubs (plus BP refinement)."""
        if self.labels is None or self.graph is None:
            raise NotBuiltError("call build(graph) before querying")
        self.graph.validate_vertex(s)
        self.graph.validate_vertex(t)
        if s == t:
            return 0.0
        best = float("inf")
        ls, lt = self.labels[s], self.labels[t]
        i = j = 0
        while i < len(ls) and j < len(lt):
            hs, ds = ls[i]
            ht, dt = lt[j]
            if hs == ht:
                candidate = ds + dt
                if candidate < best:
                    best = candidate
                i += 1
                j += 1
            elif hs < ht:
                i += 1
            else:
                j += 1
        if self.bp_labels is not None:
            best = min(best, self.bp_labels.query(s, t))
        return float(best)

    # -- Reporting ------------------------------------------------------------

    def labelling_size(self) -> int:
        """Total number of normal label entries (Example 3.10's ``LS``)."""
        if self.labels is None:
            raise NotBuiltError("call build(graph) first")
        return sum(len(l) for l in self.labels)

    def size_bytes(self) -> int:
        if self.labels is None:
            raise NotBuiltError("call build(graph) first")
        total = self.labelling_size() * _ENTRY_BYTES
        if self.bp_labels is not None:
            total += self.bp_labels.size_bytes()
        return total

    def average_label_size(self) -> float:
        if self.graph is None or self.graph.num_vertices == 0:
            return 0.0
        return self.labelling_size() / self.graph.num_vertices
