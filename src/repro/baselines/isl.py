"""IS-L — IS-Label (Fu, Wu, Cheng, Wong; VLDB 2013).

The independent-set hierarchy baseline. Construction peels ``k`` layers
(the paper's setup uses ``k = 6`` for graphs over 1M vertices):

1. At level ``i``, compute an independent set ``I_i`` of the current
   graph ``G_i``, preferring low-degree vertices (cheap to remove and
   cheap to augment around).
2. Remove ``I_i``; for every removed vertex, connect its surviving
   neighbours pairwise with *augmented weighted edges* summing the two
   endpoint weights, which preserves all distances among the survivors.
3. Each removed vertex keeps its incident (neighbour, weight) pairs as
   its label — its gateway into the next level.

What remains after ``k`` rounds is the *core graph*, kept as a weighted
adjacency searched at query time (IS-L is a hybrid method, like HL).

A query ``(s, t)`` expands both endpoints' labels upward through the
hierarchy (a Dijkstra over the level-increasing DAG), producing distance
maps ``A(s)``, ``A(t)`` to ancestor vertices; the answer is the minimum
over (i) meeting below the core, ``min over h in A(s) ∩ A(t)``, and (ii)
paths through the core, closed by a bidirectional weighted search between
the reached core vertices.

The expensive part — exactly as the paper observes — is the quadratic
neighbour-pair augmentation around removed vertices ("very high cost for
computing independent sets on massive networks"); the construction-budget
mechanism reproduces its Table 2/3 DNF pattern on the bigger datasets.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.protocol import BatchFallback, Capability
from repro.errors import NotBuiltError
from repro.graphs.graph import Graph
from repro.utils.timing import Stopwatch, TimeBudget

_LABEL_ENTRY_BYTES = 8  # 32-bit vertex + 32-bit weight (weighted entries)


class ISLabelOracle(BatchFallback):
    """IS-Label distance oracle (hierarchy + core search hybrid).

    Args:
        num_levels: hierarchy depth ``k`` (paper setup: 6).
        max_is_degree: only vertices with current degree at most this
            bound enter the independent set (caps augmentation cost).
        budget_s: construction budget (DNF reporting).
    """

    name = "IS-L"
    CAPABILITIES = frozenset({Capability.BATCH})

    def capabilities(self) -> frozenset:
        return self.CAPABILITIES

    def __init__(
        self,
        num_levels: int = 6,
        max_is_degree: int = 16,
        budget_s: Optional[float] = None,
    ) -> None:
        self.num_levels = num_levels
        self.max_is_degree = max_is_degree
        self.budget_s = budget_s
        self.graph: Optional[Graph] = None
        # level_of[v]: peel level (num_levels for core vertices).
        self.level_of: Optional[np.ndarray] = None
        # labels[v]: list of (parent, weight) at removal time (empty for core).
        self.labels: Optional[List[List[Tuple[int, float]]]] = None
        # core adjacency: v -> list of (u, weight).
        self.core_adj: Optional[Dict[int, List[Tuple[int, float]]]] = None
        self.construction_seconds = 0.0

    # -- Construction ----------------------------------------------------------

    def build(self, graph: Graph) -> "ISLabelOracle":
        budget = TimeBudget(self.budget_s, method=self.name)
        with Stopwatch() as sw:
            self._build_inner(graph, budget)
        self.construction_seconds = sw.elapsed
        return self

    def _build_inner(self, graph: Graph, budget: TimeBudget) -> None:
        n = graph.num_vertices
        # Working weighted adjacency as dict-of-dicts (augmentation needs
        # random insertion; CSR stays immutable).
        adj: List[Dict[int, float]] = [dict() for _ in range(n)]
        for u in range(n):
            for v in graph.neighbors(u):
                adj[u][int(v)] = 1.0
        alive = np.ones(n, dtype=bool)
        level_of = np.full(n, self.num_levels, dtype=np.int32)
        labels: List[List[Tuple[int, float]]] = [[] for _ in range(n)]

        for level in range(self.num_levels):
            budget.check()
            selected = self._independent_set(adj, alive, budget)
            if not selected:
                break
            for v in selected:
                level_of[v] = level
            for v in selected:
                budget.check()
                neighbors = list(adj[v].items())
                labels[v] = [(u, w) for u, w in neighbors]
                # Distance-preserving augmentation among the survivors.
                for i in range(len(neighbors)):
                    u1, w1 = neighbors[i]
                    for j in range(i + 1, len(neighbors)):
                        u2, w2 = neighbors[j]
                        through = w1 + w2
                        current = adj[u1].get(u2)
                        if current is None or through < current:
                            adj[u1][u2] = through
                            adj[u2][u1] = through
                for u, _ in neighbors:
                    del adj[u][v]
                adj[v] = dict()
                alive[v] = False

        core_adj: Dict[int, List[Tuple[int, float]]] = {}
        for v in np.flatnonzero(alive):
            core_adj[int(v)] = [(u, w) for u, w in adj[int(v)].items()]
        self.graph = graph
        self.level_of = level_of
        self.labels = labels
        self.core_adj = core_adj

    def _independent_set(
        self, adj: List[Dict[int, float]], alive: np.ndarray, budget: TimeBudget
    ) -> List[int]:
        """Greedy low-degree-first independent set among alive vertices."""
        candidates = [
            (len(adj[int(v)]), int(v))
            for v in np.flatnonzero(alive)
            if len(adj[int(v)]) <= self.max_is_degree
        ]
        candidates.sort()
        blocked: set = set()
        chosen: List[int] = []
        for _, v in candidates:
            if v in blocked:
                continue
            chosen.append(v)
            blocked.add(v)
            blocked.update(adj[v].keys())
        budget.check()
        return chosen

    # -- Queries ------------------------------------------------------------------

    def _expand_to_ancestors(self, v: int) -> Dict[int, float]:
        """Dijkstra over the level-increasing label DAG from ``v``.

        Returns distances from ``v`` to every ancestor (vertices reachable
        by repeatedly following removal-time labels; includes ``v``).
        """
        assert self.labels is not None and self.level_of is not None
        dist: Dict[int, float] = {v: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, v)]
        settled: set = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            for parent, w in self.labels[u]:
                nd = d + w
                if nd < dist.get(parent, np.inf):
                    dist[parent] = nd
                    heapq.heappush(heap, (nd, parent))
        return dist

    def _core_search(
        self,
        sources: Dict[int, float],
        targets: Dict[int, float],
    ) -> float:
        """Weighted multi-source Dijkstra through the core graph."""
        assert self.core_adj is not None
        best_direct = min(
            (ds + targets[c] for c, ds in sources.items() if c in targets),
            default=np.inf,
        )
        if not sources or not targets:
            return float(best_direct)
        dist: Dict[int, float] = dict(sources)
        heap: List[Tuple[float, int]] = [(d, c) for c, d in sources.items()]
        heapq.heapify(heap)
        settled: set = set()
        best = best_direct
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled or d > dist.get(u, np.inf):
                continue
            settled.add(u)
            if u in targets:
                best = min(best, d + targets[u])
            if d >= best:
                break
            for v, w in self.core_adj.get(u, ()):
                nd = d + w
                if nd < dist.get(v, np.inf):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return float(best)

    def query(self, s: int, t: int) -> float:
        """Exact distance: meet in the DAG or pass through the core."""
        if self.labels is None or self.level_of is None or self.graph is None:
            raise NotBuiltError("call build(graph) before querying")
        self.graph.validate_vertex(s)
        self.graph.validate_vertex(t)
        if s == t:
            return 0.0
        ancestors_s = self._expand_to_ancestors(s)
        ancestors_t = self._expand_to_ancestors(t)
        # Case 1: the shortest path's peak lies below the core.
        below = min(
            (d + ancestors_t[h] for h, d in ancestors_s.items() if h in ancestors_t),
            default=np.inf,
        )
        # Case 2: the path climbs into the core; search between the
        # reached core vertices over the weighted core adjacency.
        core_level = self.num_levels
        core_s = {h: d for h, d in ancestors_s.items() if self.level_of[h] >= core_level}
        core_t = {h: d for h, d in ancestors_t.items() if self.level_of[h] >= core_level}
        through = self._core_search(core_s, core_t)
        return float(min(below, through))

    # -- Reporting -------------------------------------------------------------------

    def labelling_size(self) -> int:
        if self.labels is None:
            raise NotBuiltError("call build(graph) first")
        hierarchy = sum(len(l) for l in self.labels)
        core = sum(len(edges) for edges in (self.core_adj or {}).values())
        return hierarchy + core

    def size_bytes(self) -> int:
        return self.labelling_size() * _LABEL_ENTRY_BYTES

    def average_label_size(self) -> float:
        if self.graph is None or self.graph.num_vertices == 0:
            return 0.0
        return self.labelling_size() / self.graph.num_vertices
