"""Online (index-free) baselines: BFS, bidirectional BFS, Dijkstra.

These are the paper's lower envelope: zero construction time and index
size, but query times orders of magnitude above the labelling methods
(Table 2's Bi-BFS column; Figure 1(a)'s Dijkstra/Bi-BFS points).
"""

from __future__ import annotations

from typing import Optional

from repro.api.protocol import BatchFallback, Capability
from repro.errors import NotBuiltError
from repro.graphs.graph import Graph
from repro.search.bfs import bfs_distance
from repro.search.bidirectional import bidirectional_bfs_distance
from repro.search.dijkstra import dijkstra_distance


class _OnlineOracle(BatchFallback):
    """Shared plumbing for the index-free methods.

    Index-free means the size accounting is **contractually zero**
    (the protocol's total-function rule): ``size_bytes`` and
    ``average_label_size`` return 0 whether or not ``build`` has run —
    these are Table 2's actual cells for the online columns, never an
    error.
    """

    name = "online"
    CAPABILITIES = frozenset({Capability.BATCH})

    def __init__(self) -> None:
        self.graph: Optional[Graph] = None
        self.construction_seconds = 0.0

    def build(self, graph: Graph) -> "_OnlineOracle":
        self.graph = graph
        return self

    def capabilities(self) -> frozenset:
        return self.CAPABILITIES

    def _require_graph(self) -> Graph:
        if self.graph is None:
            raise NotBuiltError("call build(graph) before querying")
        return self.graph

    def size_bytes(self) -> int:
        return 0

    def average_label_size(self) -> float:
        return 0.0


class BFSOracle(_OnlineOracle):
    """Unidirectional BFS per query (the textbook online method)."""

    name = "BFS"

    def query(self, s: int, t: int) -> float:
        return bfs_distance(self._require_graph(), s, t)


class BiBFSOracle(_OnlineOracle):
    """Bidirectional BFS per query — ``Bi-BFS`` in Table 2."""

    name = "Bi-BFS"

    def query(self, s: int, t: int) -> float:
        return bidirectional_bfs_distance(self._require_graph(), s, t)


class DijkstraOracle(_OnlineOracle):
    """Early-terminating Dijkstra per query (Figure 1's classical method)."""

    name = "Dijkstra"

    def query(self, s: int, t: int) -> float:
        return dijkstra_distance(self._require_graph(), s, t)
