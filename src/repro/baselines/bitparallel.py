"""Bit-parallel (BP) BFS labels — Section 5.1's speed-up, reproduced.

The BP technique (Akiba et al.'s PLL, reused by FD) runs, for a root
``r``, a *single* BFS that simultaneously tracks up to 64 selected
neighbours ``C ⊆ N(r)``. Because each ``c ∈ C`` is adjacent to ``r``,
``d(c, v) ∈ {d(r, v) − 1, d(r, v), d(r, v) + 1}`` for every ``v``, so two
64-bit masks per vertex capture everything:

* ``S⁻¹(v)`` — the ``c`` with ``d(c, v) = d(r, v) − 1``;
* ``S⁰(v)``  — the ``c`` with ``d(c, v) = d(r, v)``.

Level-synchronous recurrences (derived from the shortest-path structure;
``w`` ranges over neighbours of ``v``):

* ``S⁻¹(v) = ∪ {S⁻¹(w) : d(w) = d(v) − 1}``, seeded with ``c ∈ S⁻¹(c)``;
* ``S⁰(v) = (∪ {S⁰(w) : d(w) = d(v) − 1} ∪ ∪ {S⁻¹(w) : d(w) = d(v)}) \\ S⁻¹(v)``.

A query through root ``r`` then refines ``d(r,s) + d(r,t)`` by −2 when
``S⁻¹(s) ∩ S⁻¹(t) ≠ ∅`` (a shortcut through a shared closer neighbour)
and by −1 when the −1/0 masks cross-intersect. We implement the masks as
numpy ``uint64`` arrays — identical semantics to the paper's 64-bit words.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.search.bfs import UNREACHED, bfs_distances

_BP_BYTES_PER_ROOT_PER_VERTEX = 1 + 8 + 8  # dist byte + two 64-bit masks


class BitParallelLabels:
    """BP labels for a set of roots: distances plus S⁻¹/S⁰ masks."""

    def __init__(
        self,
        roots: List[int],
        dists: List[np.ndarray],
        minus_masks: List[np.ndarray],
        zero_masks: List[np.ndarray],
        tracked_counts: List[int],
    ) -> None:
        self.roots = roots
        self.dists = dists
        self.minus_masks = minus_masks
        self.zero_masks = zero_masks
        self.tracked_counts = tracked_counts

    @property
    def num_roots(self) -> int:
        return len(self.roots)

    def query(self, s: int, t: int) -> float:
        """min over BP roots of the mask-refined two-hop distance."""
        best = np.inf
        for dist, s_minus, s_zero in zip(self.dists, self.minus_masks, self.zero_masks):
            ds, dt = int(dist[s]), int(dist[t])
            if ds == UNREACHED or dt == UNREACHED:
                continue
            candidate = ds + dt
            if s_minus[s] & s_minus[t]:
                candidate -= 2
            elif (s_minus[s] & s_zero[t]) or (s_zero[s] & s_minus[t]):
                candidate -= 1
            if candidate < best:
                best = candidate
        return float(best)

    def size_bytes(self) -> int:
        if not self.dists:
            return 0
        num_vertices = len(self.dists[0])
        return self.num_roots * num_vertices * _BP_BYTES_PER_ROOT_PER_VERTEX

    def average_entries(self) -> float:
        """Average tracked-neighbour count (the "+64" in Table 2's ALS)."""
        if not self.tracked_counts:
            return 0.0
        return float(np.mean(self.tracked_counts))


def build_bit_parallel_labels(
    graph: Graph,
    roots: Sequence[int],
    max_tracked: int = 64,
    rng_seed: Optional[int] = None,
) -> BitParallelLabels:
    """Run one BP-BFS per root.

    Args:
        graph: input graph.
        roots: BP root vertices (PLL uses the top-degree vertices, FD uses
            its landmarks).
        max_tracked: how many neighbours of each root to track (≤ 64).
        rng_seed: when set, tracked neighbours are sampled; by default the
            first ``max_tracked`` (highest-priority) neighbours are used.

    Returns:
        A :class:`BitParallelLabels` bundle.
    """
    if not 0 < max_tracked <= 64:
        raise ValueError("max_tracked must be in 1..64")
    dists, minus_masks, zero_masks, tracked_counts = [], [], [], []
    rng = np.random.default_rng(rng_seed) if rng_seed is not None else None
    for root in roots:
        graph.validate_vertex(int(root))
        neighbors = graph.neighbors(int(root))
        if rng is not None and len(neighbors) > max_tracked:
            tracked = rng.choice(neighbors, size=max_tracked, replace=False)
        else:
            tracked = neighbors[:max_tracked]
        dist, s_minus, s_zero = _bp_bfs(graph, int(root), np.asarray(tracked, dtype=np.int64))
        dists.append(dist)
        minus_masks.append(s_minus)
        zero_masks.append(s_zero)
        tracked_counts.append(len(tracked))
    return BitParallelLabels(
        roots=[int(r) for r in roots],
        dists=dists,
        minus_masks=minus_masks,
        zero_masks=zero_masks,
        tracked_counts=tracked_counts,
    )


def _bp_bfs(graph: Graph, root: int, tracked: np.ndarray):
    """One bit-parallel BFS; returns (dist, S⁻¹, S⁰) arrays."""
    n = graph.num_vertices
    dist = bfs_distances(graph, root)
    s_minus = np.zeros(n, dtype=np.uint64)
    s_zero = np.zeros(n, dtype=np.uint64)
    for bit, c in enumerate(tracked):
        s_minus[int(c)] = np.uint64(1) << np.uint64(bit)

    # Directed edge arrays (each undirected edge appears both ways).
    heads = np.repeat(np.arange(n), np.diff(graph.csr.indptr))
    tails = graph.csr.indices.astype(np.int64)
    reach = (dist[heads] != UNREACHED) & (dist[tails] != UNREACHED)
    heads, tails = heads[reach], tails[reach]
    parent_edges = dist[tails] == dist[heads] + 1  # head is the parent
    sibling_edges = dist[tails] == dist[heads]

    finite = dist[dist != UNREACHED]
    max_level = int(finite.max()) if finite.size else 0
    head_level = dist[heads]
    for level in range(1, max_level + 1):
        up = parent_edges & (head_level == level - 1)
        if up.any():
            np.bitwise_or.at(s_minus, tails[up], s_minus[heads[up]])
        side = sibling_edges & (head_level == level)
        if side.any():
            np.bitwise_or.at(s_zero, tails[side], s_minus[heads[side]])
        if up.any():
            np.bitwise_or.at(s_zero, tails[up], s_zero[heads[up]])
        level_vertices = np.flatnonzero(dist == level)
        s_zero[level_vertices] &= ~s_minus[level_vertices]
    return dist, s_minus, s_zero
