"""Baseline distance-query methods evaluated by the paper.

Every method — including HL itself — satisfies the
:class:`~repro.api.DistanceOracle` protocol (each advertises its
optional layers through ``capabilities()``), so the experiment harness
can sweep them uniformly:

* :class:`~repro.baselines.online.BFSOracle`,
  :class:`~repro.baselines.online.BiBFSOracle`,
  :class:`~repro.baselines.online.DijkstraOracle` — online searches.
* :class:`~repro.baselines.pll.PrunedLandmarkLabelling` — PLL (Akiba et
  al., SIGMOD 2013), the 2-hop-cover state of the art.
* :class:`~repro.baselines.fd.FullyDynamicOracle` — FD (Hayashi et al.,
  CIKM 2016), landmark SPTs + bit-parallel labels + bounded search.
* :class:`~repro.baselines.isl.ISLabelOracle` — IS-L (Fu et al., VLDB
  2013), independent-set hierarchy + core search.
"""

from repro.api.protocol import DistanceOracle
from repro.baselines.online import BFSOracle, BiBFSOracle, DijkstraOracle
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.baselines.fd import FullyDynamicOracle
from repro.baselines.isl import ISLabelOracle
from repro.baselines.alt import ALTOracle

__all__ = [
    "DistanceOracle",
    "BFSOracle",
    "BiBFSOracle",
    "DijkstraOracle",
    "PrunedLandmarkLabelling",
    "FullyDynamicOracle",
    "ISLabelOracle",
    "ALTOracle",
]
