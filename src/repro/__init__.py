"""Highway Cover Labelling — exact distance queries in complex networks.

A from-scratch reproduction of Farhan, Wang, Lin & McKay, *A Highly
Scalable Labelling Approach for Exact Distance Queries in Complex
Networks* (EDBT 2019).

Quickstart::

    from repro import build_oracle, barabasi_albert_graph

    graph = barabasi_albert_graph(1000, 4, seed=1)
    oracle = build_oracle(graph, "hl", num_landmarks=20)
    print(oracle.query(0, 999))

Every distance method (HL and all baselines) is constructed through
:func:`repro.api.open_oracle` / :func:`repro.api.build_oracle` and
speaks the capability-based :class:`repro.api.DistanceOracle` protocol;
:class:`repro.serving.DistanceService` serves hosted graphs to
concurrent callers, and :class:`repro.serving.ShardedDistanceService`
(``shards=N`` on the factories) scales one graph across worker
processes sharing a zero-copy snapshot. Direct
``HighwayCoverOracle(...)`` construction still works but the factories
are the supported entry point.

See ``README.md`` for the overview and the ``docs/`` tree for the
architecture, the code-to-paper map, and the serving-stack guide.
"""

from repro.api import (
    Capability,
    DistanceOracle,
    build_oracle,
    capabilities_of,
    make_oracle,
    open_oracle,
)
from repro.core.query import HighwayCoverOracle
from repro.core.construction import build_highway_cover_labelling
from repro.core.parallel import build_highway_cover_labelling_parallel
from repro.core.highway import Highway
from repro.core.labels import HighwayCoverLabelling
from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.paths import shortest_path
from repro.core.serialization import load_oracle, save_oracle
from repro.graphs.graph import Graph
from repro.graphs.generators import (
    barabasi_albert_graph,
    copying_model_graph,
    erdos_renyi_graph,
    powerlaw_configuration_graph,
    watts_strogatz_graph,
)
from repro.landmarks.selection import select_landmarks
from repro.serving import DistanceService, QueryCache, ShardedDistanceService

__version__ = "1.2.0"

__all__ = [
    "Capability",
    "DistanceOracle",
    "DistanceService",
    "QueryCache",
    "ShardedDistanceService",
    "open_oracle",
    "build_oracle",
    "make_oracle",
    "capabilities_of",
    "HighwayCoverOracle",
    "DynamicHighwayCoverOracle",
    "build_highway_cover_labelling",
    "build_highway_cover_labelling_parallel",
    "Highway",
    "HighwayCoverLabelling",
    "shortest_path",
    "load_oracle",
    "save_oracle",
    "Graph",
    "barabasi_albert_graph",
    "copying_model_graph",
    "erdos_renyi_graph",
    "powerlaw_configuration_graph",
    "watts_strogatz_graph",
    "select_landmarks",
    "__version__",
]
