"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError`, so that
callers can catch library failures with a single ``except`` clause without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph input (bad vertex ids, malformed edge lists, ...)."""


class VertexError(GraphError):
    """A vertex id is out of range for the graph it was used with."""

    def __init__(self, vertex: int, n: int) -> None:
        super().__init__(f"vertex {vertex} out of range for graph with {n} vertices")
        self.vertex = vertex
        self.n = n


class LandmarkError(ReproError):
    """Invalid landmark set (empty, duplicates, out-of-range ids, ...)."""


class NotBuiltError(ReproError):
    """An oracle was queried before :meth:`build` was called."""


class CapabilityError(ReproError):
    """An operation needs a capability the oracle does not advertise.

    Raised by capability-negotiating callers (e.g.
    :class:`~repro.serving.DistanceService`) instead of an
    ``AttributeError`` from duck-typing, so the failure names the missing
    :class:`~repro.api.Capability` explicitly.
    """


class ServiceClosedError(ReproError):
    """A query or update reached a :class:`~repro.serving.DistanceService`
    after (or while) it was closed."""


class ShardError(ReproError):
    """A shard worker process failed or died mid-request.

    Raised by :class:`~repro.serving.ShardedDistanceService` when a
    worker reports an unexpected error or its pipe closes; the message
    names the shard and the worker-side exception. Malformed requests
    (bad vertex ids, missing capabilities) are validated in the parent
    process and raise their usual typed errors instead.
    """


class WalError(ReproError):
    """A write-ahead log operation failed or the log file is corrupt.

    Raised by :class:`~repro.core.wal.WriteAheadLog` on bad
    magic/version, a checksum mismatch or impossible record length
    inside the valid region (real corruption — a *torn tail* from a
    crash mid-append is repaired silently instead), appends to a closed
    log, and replay records that do not fit the target graph.
    """


class KernelError(ReproError):
    """Invalid kernel backend selection.

    Raised for an unknown backend name — whether it arrived via the
    ``kernel=`` keyword of :func:`repro.api.make_oracle` or the
    ``REPRO_KERNEL`` environment variable.
    """


class KernelUnavailableError(KernelError):
    """An explicitly requested kernel backend cannot run here.

    For example ``kernel="numba"`` on a machine without numba installed.
    Auto-detection (``kernel=None``) never raises this; it silently
    falls back to the best available backend instead.
    """


class ProtocolError(ReproError):
    """A wire-protocol frame is malformed or violates the protocol.

    Raised by :mod:`repro.serving.net.wire` for bad magic, an
    unsupported protocol version, an unknown opcode/status, a frame
    exceeding the negotiated size limit, or a payload whose length does
    not match its opcode's layout. On the server a protocol violation
    is answered with ``Status.PROTOCOL_ERROR`` and the connection is
    closed (the stream offset can no longer be trusted); on the client
    it surfaces as this exception.
    """


class OverloadedError(ReproError):
    """The server shed this request under admission control.

    Carries ``retry_after`` — the server's backpressure hint, in
    seconds — so well-behaved clients (e.g.
    :class:`repro.serving.net.client.NetClient`) can wait it out and
    retry instead of hammering a saturated ingress queue. Maps onto the
    wire as ``Status.OVERLOADED``.
    """

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class StaleGenerationError(ReproError):
    """A request demanded a newer snapshot generation than is serving.

    Requests carry a *minimum acceptable generation* (0 = any); when
    the server's current generation is older — e.g. a client observed
    generation N+1 elsewhere and insists on read-your-writes — the
    request is rejected with ``Status.STALE_GENERATION`` and the
    serving generation, instead of silently answering from the stale
    snapshot. ``generation`` is the generation that *was* serving.
    """

    def __init__(self, message: str, generation: int = 0) -> None:
        super().__init__(message)
        self.generation = int(generation)


class ConstructionBudgetExceeded(ReproError):
    """A labelling construction exceeded its time budget.

    The experiment harness renders this as ``DNF`` (did not finish), which
    is how the paper reports methods that ran out of time or memory.
    """

    def __init__(self, method: str, budget_s: float) -> None:
        super().__init__(f"{method}: construction exceeded budget of {budget_s:.1f}s")
        self.method = method
        self.budget_s = budget_s


class CompressionError(ReproError):
    """A labelling cannot be encoded with the requested codec.

    For example HL(8) requires at most 256 landmarks and distances < 256.
    """
