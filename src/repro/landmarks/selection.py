"""Landmark selection strategies.

The paper selects the top-``k`` vertices by degree (Section 6.3) — the
standard choice for complex networks, where high-degree hubs lie on many
shortest paths. Landmark selection beyond degree is the paper's stated
future work, so this module also ships the usual contenders, exercised by
the ablation benchmark and the landmark-selection example:

* ``degree`` — top-k by degree (the paper's choice; deterministic,
  ties broken by vertex id).
* ``random`` — uniform sample (lower bound on quality).
* ``closeness`` — greedy approximate closeness: sample sources, keep the
  vertices with the smallest average distance.
* ``betweenness`` — approximate betweenness via sampled BFS shortest-path
  counting.
* ``degree_spread`` — top-degree but skipping vertices adjacent to an
  already chosen landmark, spreading hubs across the graph.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.errors import LandmarkError
from repro.graphs.graph import Graph
from repro.search.bfs import UNREACHED, bfs_distances


def top_degree_landmarks(graph: Graph, k: int) -> List[int]:
    """Top-``k`` vertex ids by decreasing degree (ties: smaller id first)."""
    degrees = graph.degrees()
    # argsort on (-degree, id): stable sort over id-ordered input.
    order = np.argsort(-degrees, kind="stable")
    return [int(v) for v in order[:k]]


def _random_landmarks(graph: Graph, k: int, seed: int = 0) -> List[int]:
    rng = np.random.default_rng(seed)
    return [int(v) for v in rng.choice(graph.num_vertices, size=k, replace=False)]


def _degree_spread_landmarks(graph: Graph, k: int, seed: int = 0) -> List[int]:
    degrees = graph.degrees()
    order = np.argsort(-degrees, kind="stable")
    chosen: List[int] = []
    blocked = np.zeros(graph.num_vertices, dtype=bool)
    for v in order:
        v = int(v)
        if blocked[v]:
            continue
        chosen.append(v)
        blocked[v] = True
        blocked[graph.neighbors(v)] = True
        if len(chosen) == k:
            return chosen
    # Fall back to plain degree order if the graph is too dense to spread.
    for v in order:
        v = int(v)
        if v not in chosen:
            chosen.append(v)
            if len(chosen) == k:
                break
    return chosen


def _closeness_landmarks(graph: Graph, k: int, seed: int = 0, samples: int = 16) -> List[int]:
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sources = rng.choice(n, size=min(samples, n), replace=False)
    total = np.zeros(n, dtype=np.float64)
    for s in sources:
        dist = bfs_distances(graph, int(s)).astype(np.float64)
        dist[dist == UNREACHED] = n  # penalize unreachable
        total += dist
    order = np.argsort(total, kind="stable")
    return [int(v) for v in order[:k]]


def _betweenness_landmarks(graph: Graph, k: int, seed: int = 0, samples: int = 16) -> List[int]:
    """Approximate betweenness: count shortest-path DAG memberships."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sources = rng.choice(n, size=min(samples, n), replace=False)
    score = np.zeros(n, dtype=np.float64)
    for s in sources:
        dist = bfs_distances(graph, int(s))
        # Count, for each vertex, how many sampled BFS trees place it as an
        # internal vertex of some shortest path: proxy = #children on
        # shortest-path DAG edges.
        heads = np.repeat(np.arange(n), np.diff(graph.csr.indptr))
        tails = graph.csr.indices
        on_dag = (
            (dist[heads] != UNREACHED)
            & (dist[tails] != UNREACHED)
            & (dist[tails] == dist[heads] + 1)
        )
        np.add.at(score, heads[on_dag], 1.0)
    order = np.argsort(-score, kind="stable")
    return [int(v) for v in order[:k]]


STRATEGIES: Dict[str, Callable[..., List[int]]] = {
    "degree": top_degree_landmarks,
    "random": _random_landmarks,
    "degree_spread": _degree_spread_landmarks,
    "closeness": _closeness_landmarks,
    "betweenness": _betweenness_landmarks,
}


def select_landmarks(
    graph: Graph, k: int, strategy: str = "degree", seed: int = 0
) -> List[int]:
    """Pick ``k`` landmark vertex ids with the named strategy.

    Args:
        graph: input graph.
        k: number of landmarks; must satisfy ``1 <= k <= n``.
        strategy: one of :data:`STRATEGIES`.
        seed: RNG seed for the randomized strategies.

    Raises:
        LandmarkError: on invalid ``k`` or unknown strategy.
    """
    if k < 1:
        raise LandmarkError(f"need at least one landmark, got k={k}")
    if k > graph.num_vertices:
        raise LandmarkError(
            f"k={k} exceeds the number of vertices ({graph.num_vertices})"
        )
    try:
        picker = STRATEGIES[strategy]
    except KeyError as exc:
        raise LandmarkError(
            f"unknown strategy {strategy!r}; options: {sorted(STRATEGIES)}"
        ) from exc
    if strategy == "degree":
        return picker(graph, k)
    return picker(graph, k, seed=seed)
