"""Landmark selection strategies (paper setup + its stated future work)."""

from repro.landmarks.selection import (
    STRATEGIES,
    select_landmarks,
    top_degree_landmarks,
)

__all__ = ["STRATEGIES", "select_landmarks", "top_degree_landmarks"]
