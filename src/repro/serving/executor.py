"""Thread-parallel query execution over the no-GIL kernels.

PR 7's compiled kernel backends (``cext``, ``numba``) drop the GIL for
every bounded search, which makes intra-process thread parallelism
profitable for the first time: several threads can expand BFS frontiers
on different CPU cores *simultaneously*, against one shared read-only
label store — the shared-nothing-reader pattern, with the "nothing"
being each thread's private :class:`~repro.core.kernels.Workspace`.
This module supplies the missing execution layer:

* :class:`QueryExecutor` — a reusable pool of worker threads that
  splits a ``query_many`` pair batch into contiguous chunks, answers
  every chunk on its own thread (each thread lazily materializes its
  own per-thread kernel workspace through the thread-local
  :func:`~repro.core.kernels.get_workspace`), and reassembles the
  results in submission order. ``query_many`` is row-independent and
  exact, so the reassembled answer is byte-identical to the sequential
  call — asserted by ``tests/test_executor.py`` and (optionally, with
  ``verify=True``) on every single run.
* :func:`resolve_threads` — the thread-count policy shared by both
  serving tiers: an explicit ``threads=`` argument wins, then the
  ``REPRO_THREADS`` environment variable, then auto-detection (one
  thread per CPU when the active kernel advertises ``releases_gil``,
  exactly one thread — i.e. plain sequential execution — otherwise,
  because GIL-holding backends only add contention).

Chunks are assigned to workers *statically* (chunk ``i`` runs on worker
``i``): chunks are equal-sized, so work stealing buys nothing, and the
static assignment makes per-thread accounting exact and the
thread/workspace mapping deterministic (the isolation test relies on
it). Worker threads are daemonic and created on first parallel run;
:meth:`QueryExecutor.close` retires them (also via context manager).

Both serving tiers compose with this layer: a
:class:`~repro.serving.DistanceService` entry drains its coalesced
micro-batches through an executor, and every
:class:`~repro.serving.ShardedDistanceService` worker process runs its
own — N processes × M threads. See ``docs/serving.md`` ("Thread
scaling") for guidance on choosing N and M.

Example::

    from repro.serving import QueryExecutor

    with QueryExecutor(threads=4, kernel="cext") as executor:
        distances = executor.run(oracle.query_many, pairs)
        print(executor.stats()["per_thread"])
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.kernels import KernelBackend, resolve_kernel

__all__ = ["QueryExecutor", "resolve_threads"]

#: Environment variable naming the default executor thread count (an
#: explicit request, like ``REPRO_KERNEL``): overridden by ``threads=``
#: arguments, overrides auto-detection.
ENV_VAR = "REPRO_THREADS"

#: Smallest chunk worth shipping to a worker thread: below this the
#: per-chunk fixed cost (bound vectorization setup, thread handoff)
#: dominates whatever the extra core could recover.
MIN_CHUNK = 64


def resolve_threads(
    threads: Optional[int] = None,
    kernel: Union[KernelBackend, str, None] = None,
) -> int:
    """Resolve an executor thread count (explicit > env > auto).

    Args:
        threads: explicit thread count; must be >= 1 when given.
        kernel: the kernel backend (instance, name, or ``None`` for the
            process default) whose ``releases_gil`` flag decides the
            auto case.

    Returns:
        ``threads`` when given; else ``int($REPRO_THREADS)`` when set;
        else ``os.cpu_count()`` if the resolved backend releases the
        GIL during searches, and 1 (sequential) if it does not — extra
        threads on a GIL-holding backend only add lock contention.

    Raises:
        ValueError: on a non-positive or non-integer request (argument
            or environment variable — setting ``REPRO_THREADS`` *is* an
            explicit request, so it fails loudly like ``REPRO_KERNEL``).
    """
    if threads is None:
        env = os.environ.get(ENV_VAR)
        if env:
            try:
                threads = int(env)
            except ValueError:
                raise ValueError(
                    f"{ENV_VAR}={env!r} is not an integer thread count"
                ) from None
    if threads is not None:
        threads = int(threads)
        if threads < 1:
            raise ValueError(f"threads must be at least 1, got {threads}")
        return threads
    backend = resolve_kernel(kernel)
    if not backend.releases_gil:
        return 1
    return max(1, os.cpu_count() or 1)


class _WorkerStats:
    """Per-worker accounting (chunks executed, busy seconds)."""

    __slots__ = ("chunks", "busy_s")

    def __init__(self) -> None:
        self.chunks = 0
        self.busy_s = 0.0


class _Worker(threading.Thread):
    """One pool thread: drains its private queue of ``(fn, chunk, slot)``.

    Owning a private queue (instead of sharing one) pins chunk ``i`` to
    worker ``i``, which makes per-thread utilization exact and the
    thread-to-workspace mapping deterministic.
    """

    def __init__(self, index: int, name: str) -> None:
        super().__init__(name=name, daemon=True)
        self.index = index
        self.inbox: "queue.SimpleQueue" = queue.SimpleQueue()
        self.stats = _WorkerStats()

    def run(self) -> None:
        """Drain tasks until the ``None`` retirement sentinel arrives."""
        while True:
            task = self.inbox.get()
            if task is None:
                return
            fn, chunk, results, slot, pending, done = task
            started = time.perf_counter()
            try:
                results[slot] = (True, fn(chunk))
            except BaseException as exc:  # noqa: BLE001 - re-raised by run()
                results[slot] = (False, exc)
            finally:
                self.stats.busy_s += time.perf_counter() - started
                self.stats.chunks += 1
                with pending[1]:
                    pending[0] -= 1
                    if pending[0] == 0:
                        done.notify_all()


class QueryExecutor:
    """A reusable thread pool answering ``query_many`` batches in chunks.

    Args:
        threads: worker thread count; ``None`` resolves through
            :func:`resolve_threads` (``REPRO_THREADS``, then one thread
            per CPU iff ``kernel`` releases the GIL).
        kernel: the kernel backend (name, instance, or ``None`` for the
            process default) the auto-detection consults; also reported
            by :meth:`stats`. Purely advisory — the *compute* kernel is
            whatever the supplied ``query_many`` callable uses.
        min_chunk: smallest chunk shipped to a worker; batches smaller
            than ``2 * min_chunk`` run sequentially on the caller's
            thread (the pool cannot recover its handoff cost on them).
        verify: when True, every parallel run *also* executes the
            sequential path and asserts the reassembled answer is
            byte-identical — the self-checking mode the benchmarks and
            CI smoke run in. Costs 2x; leave False in production.

    Thread safety: :meth:`run` may be called from any thread, but calls
    are serialized internally (one batch in flight at a time) — the
    serving tiers call it from exactly one drain thread anyway.
    """

    def __init__(
        self,
        threads: Optional[int] = None,
        kernel: Union[KernelBackend, str, None] = None,
        min_chunk: int = MIN_CHUNK,
        verify: bool = False,
    ) -> None:
        if min_chunk < 1:
            raise ValueError(f"min_chunk must be at least 1, got {min_chunk}")
        self.threads = resolve_threads(threads, kernel)
        self.kernel = (
            kernel.name if isinstance(kernel, KernelBackend) else kernel
        )
        self.min_chunk = int(min_chunk)
        self.verify = verify
        self._workers: List[_Worker] = []
        self._run_lock = threading.Lock()  # one batch in flight at a time
        self._lock = threading.Lock()  # guards counters/lifecycle
        self._closed = False
        self._started_at = time.perf_counter()
        self._parallel_batches = 0
        self._sequential_batches = 0

    @classmethod
    def for_oracle(cls, oracle, threads: Optional[int] = None, **options) -> "QueryExecutor":
        """An executor sized for ``oracle``'s query kernel.

        The auto case consults ``oracle.kernel_backend`` (the HL
        family's resolved backend). Oracles without that seam — the
        looped baselines, and composite services like
        :class:`~repro.serving.ShardedDistanceService` whose
        parallelism already lives in worker processes — get a
        sequential executor unless ``threads`` explicitly asks for a
        pool: their ``query_many`` holds the GIL (or is IPC-bound), so
        threading it would only add overhead.
        """
        if threads is None and not hasattr(oracle, "kernel_backend"):
            return cls(threads=1, **options)
        backend = getattr(oracle, "kernel_backend", None)
        return cls(threads=threads, kernel=backend, **options)

    # -- Execution -----------------------------------------------------------

    def run(self, query_many: Callable, pairs) -> np.ndarray:
        """Answer ``query_many(pairs)``, split across the worker threads.

        The batch is split into at most ``threads`` contiguous chunks
        of at least ``min_chunk`` rows; chunk ``i`` executes
        ``query_many(chunk)`` on worker thread ``i`` (whose kernel
        workspace is thread-local), and the per-chunk answers are
        concatenated in order. ``query_many`` callables returning a
        tuple of aligned arrays (e.g. ``(distances, covered)``) are
        reassembled per position.

        Batches too small to amortize the handoff — or any batch on a
        single-thread executor — run sequentially on the calling
        thread; the answer is identical either way.

        Raises:
            Whatever ``query_many`` raised on the first failing chunk
            (re-raised after every chunk finished, so no worker is left
            writing into a dead batch's results).
        """
        with self._run_lock:
            with self._lock:
                if self._closed:
                    raise RuntimeError("executor is closed")
                chunk_count = min(
                    self.threads, max(1, len(pairs) // self.min_chunk)
                )
                if chunk_count < 2:
                    self._sequential_batches += 1
                else:
                    self._ensure_workers()
                    self._parallel_batches += 1
            if chunk_count < 2:
                return query_many(pairs)
            chunks = np.array_split(pairs, chunk_count)
            results: List = [None] * chunk_count
            done = threading.Condition()
            pending = [chunk_count, done]
            for slot, chunk in enumerate(chunks):
                self._workers[slot].inbox.put(
                    (query_many, chunk, results, slot, pending, done)
                )
            with done:
                while pending[0]:
                    done.wait()
            for ok, value in results:
                if not ok:
                    raise value
            answer = self._reassemble([value for _, value in results])
            if self.verify:
                expected = query_many(pairs)
                self._assert_identical(answer, expected)
            return answer

    @staticmethod
    def _reassemble(parts: List):
        """Concatenate per-chunk results (arrays, or tuples of arrays)."""
        if isinstance(parts[0], tuple):
            return tuple(
                np.concatenate([np.asarray(p[i]) for p in parts])
                for i in range(len(parts[0]))
            )
        return np.concatenate([np.asarray(p) for p in parts])

    @staticmethod
    def _assert_identical(answer, expected) -> None:
        """``verify=True`` check: parallel must equal sequential, bytewise."""
        answers = answer if isinstance(answer, tuple) else (answer,)
        expecteds = expected if isinstance(expected, tuple) else (expected,)
        for got, want in zip(answers, expecteds):
            assert np.array_equal(
                np.asarray(got), np.asarray(want)
            ), "thread-parallel answers diverged from the sequential path"

    def _ensure_workers(self) -> None:
        if self._workers:
            return
        for index in range(self.threads):
            worker = _Worker(index, f"qexec-{index}")
            worker.start()
            self._workers.append(worker)
        self._started_at = time.perf_counter()

    # -- Observability -------------------------------------------------------

    def stats(self) -> dict:
        """Executor statistics.

        Keys: ``threads`` (pool size), ``kernel`` (the advisory kernel
        name, or ``None``), ``parallel_batches`` /
        ``sequential_batches`` (how many :meth:`run` calls used the
        pool vs. ran inline), and ``per_thread`` — one dict per worker
        with ``chunks``, ``busy_s`` and ``utilization`` (busy fraction
        since the pool started; all zeros until the first parallel
        run).
        """
        with self._lock:
            elapsed = max(time.perf_counter() - self._started_at, 1e-9)
            per_thread = [
                {
                    "chunks": w.stats.chunks,
                    "busy_s": w.stats.busy_s,
                    "utilization": w.stats.busy_s / elapsed,
                }
                for w in self._workers
            ]
            return {
                "threads": self.threads,
                "kernel": self.kernel,
                "parallel_batches": self._parallel_batches,
                "sequential_batches": self._sequential_batches,
                "per_thread": per_thread,
            }

    # -- Lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Retire the worker threads; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            worker.inbox.put(None)
        for worker in workers:
            worker.join()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "live" if self._workers else "idle"
        )
        return f"QueryExecutor(threads={self.threads}, {state})"
