"""The wire protocol: length-prefixed, versioned binary frames (sans-io).

This module is pure encode/decode — no sockets, no asyncio — so the
exact same code frames requests on the synchronous client, the asyncio
client, and the server (:mod:`repro.serving.net.server`). Keeping the
protocol sans-io is what makes it testable byte-for-byte without a
network in the loop.

Frame format
------------

Every message (request or response) is one *frame*::

    u32  length        # bytes of body that follow (little-endian)
    body:
      u16  magic       # 0x5250 ("RP")
      u8   version     # PROTOCOL_VERSION (currently 1)
      u8   kind        # request opcode (Op.*) or response status (Status.*)
      u32  request_id  # client-assigned, echoed verbatim in the response
      u64  generation  # request: minimum acceptable snapshot generation
                       #   (0 = any); response: the generation that answered
      payload          # kind-specific, see below

``request_id`` is what makes the protocol *pipelined*: a client may
have any number of requests in flight and match responses by id —
the server is free to answer out of order. ``generation`` gives
read-your-writes clients a staleness bound: a request whose minimum
generation exceeds the serving one is rejected with
``Status.STALE_GENERATION`` instead of silently answering from the old
snapshot; every response reports the generation it was answered at, so
callers can attribute each answer to an exact snapshot state.

Payload layouts (all little-endian)::

    Op.QUERY / Op.INSERT_EDGE / Op.DELETE_EDGE:   i64 s, i64 t
    Op.BATCH:                                     u32 count, count x (i64, i64)
    Op.STATS / Op.HEALTH:                         empty
    Status.OK for QUERY:                          f64 distance
    Status.OK for BATCH:                          u32 count, count x f64
    Status.OK for INSERT/DELETE:                  u64 affected-landmark count
    Status.OK for STATS / HEALTH:                 UTF-8 JSON object
    any error status:                             f64 retry_after, UTF-8 message

Status codes map 1:1 onto the library's typed exceptions in both
directions (:func:`status_for_error` / :func:`error_for_status`), so a
:class:`~repro.errors.VertexError` raised inside the server surfaces as
a ``GraphError`` at the remote caller, and an admission-control
rejection arrives as :class:`~repro.errors.OverloadedError` carrying
the server's ``retry_after`` hint.
"""

from __future__ import annotations

import struct
from typing import List, NamedTuple, Optional, Tuple

import numpy as np

from repro.errors import (
    CapabilityError,
    GraphError,
    NotBuiltError,
    OverloadedError,
    ProtocolError,
    ReproError,
    ServiceClosedError,
    StaleGenerationError,
    VertexError,
)

__all__ = [
    "Frame",
    "FrameDecoder",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "Op",
    "PROTOCOL_VERSION",
    "Status",
    "decode_distances",
    "decode_error",
    "decode_f64",
    "decode_pair",
    "decode_pairs",
    "decode_u64",
    "encode_distances",
    "encode_error",
    "encode_f64",
    "encode_frame",
    "encode_pair",
    "encode_pairs",
    "encode_u64",
    "error_for_status",
    "raise_for_frame",
    "status_for_error",
]

MAGIC = 0x5250  # "RP"
PROTOCOL_VERSION = 1

#: Default upper bound on one frame's body. Protects both sides from a
#: corrupt length prefix allocating gigabytes; the server additionally
#: uses it as an admission-control unit (a batch larger than this must
#: be split into multiple pipelined frames by the client).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct("<HBBIQ")  # magic, version, kind, request_id, generation
_LENGTH = struct.Struct("<I")
_PAIR = struct.Struct("<qq")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
HEADER_BYTES = _HEADER.size


class Op:
    """Request opcodes (the ``kind`` byte of a request frame)."""

    QUERY = 1
    BATCH = 2
    INSERT_EDGE = 3
    DELETE_EDGE = 4
    STATS = 5
    HEALTH = 6

    ALL = frozenset({QUERY, BATCH, INSERT_EDGE, DELETE_EDGE, STATS, HEALTH})


class Status:
    """Response status codes (the ``kind`` byte of a response frame).

    Disjoint from the opcode range so a frame's direction is evident
    from its kind alone.
    """

    OK = 64
    PROTOCOL_ERROR = 65
    OVERLOADED = 66
    STALE_GENERATION = 67
    BAD_REQUEST = 68
    UNSUPPORTED = 69
    SHUTTING_DOWN = 70
    INTERNAL = 71

    ALL = frozenset(
        {
            OK,
            PROTOCOL_ERROR,
            OVERLOADED,
            STALE_GENERATION,
            BAD_REQUEST,
            UNSUPPORTED,
            SHUTTING_DOWN,
            INTERNAL,
        }
    )


class Frame(NamedTuple):
    """One decoded frame: kind, request id, generation, raw payload."""

    kind: int
    request_id: int
    generation: int
    payload: bytes


def encode_frame(
    kind: int, request_id: int, generation: int, payload: bytes = b""
) -> bytes:
    """Serialize one frame (length prefix + header + payload) to bytes."""
    body = _HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, request_id, generation)
    return _LENGTH.pack(len(body) + len(payload)) + body + payload


class FrameDecoder:
    """Incremental frame parser: feed raw bytes, collect whole frames.

    Both clients and the server own one decoder per connection and feed
    it whatever the transport delivered; :meth:`feed` returns every
    frame completed by that chunk (zero or more — TCP does not respect
    frame boundaries).

    Raises:
        ProtocolError: on bad magic, an unsupported version, an unknown
            kind byte, or a length prefix exceeding ``max_frame_bytes``
            (a corrupt or hostile peer; the connection must be dropped —
            the stream offset is no longer trustworthy).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Consume ``data``; return the frames it completed, in order."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Frame]:
        if len(self._buffer) < _LENGTH.size:
            return None
        (body_len,) = _LENGTH.unpack_from(self._buffer, 0)
        if body_len < HEADER_BYTES:
            raise ProtocolError(
                f"frame body of {body_len} bytes is shorter than the "
                f"{HEADER_BYTES}-byte header"
            )
        if body_len > self.max_frame_bytes:
            raise ProtocolError(
                f"frame body of {body_len} bytes exceeds the "
                f"{self.max_frame_bytes}-byte limit"
            )
        if len(self._buffer) < _LENGTH.size + body_len:
            return None
        body = bytes(self._buffer[_LENGTH.size : _LENGTH.size + body_len])
        del self._buffer[: _LENGTH.size + body_len]
        magic, version, kind, request_id, generation = _HEADER.unpack_from(body, 0)
        if magic != MAGIC:
            raise ProtocolError(f"bad magic 0x{magic:04x} (want 0x{MAGIC:04x})")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} "
                f"(this build speaks {PROTOCOL_VERSION})"
            )
        if kind not in Op.ALL and kind not in Status.ALL:
            raise ProtocolError(f"unknown frame kind {kind}")
        return Frame(kind, request_id, generation, body[HEADER_BYTES:])


# -- Payload codecs ----------------------------------------------------------


def encode_pair(s: int, t: int) -> bytes:
    """Payload of a QUERY / INSERT_EDGE / DELETE_EDGE request."""
    return _PAIR.pack(int(s), int(t))


def decode_pair(payload: bytes) -> Tuple[int, int]:
    """Inverse of :func:`encode_pair`.

    Raises:
        ProtocolError: if the payload is not exactly two i64s.
    """
    if len(payload) != _PAIR.size:
        raise ProtocolError(
            f"pair payload must be {_PAIR.size} bytes, got {len(payload)}"
        )
    return _PAIR.unpack(payload)


def encode_pairs(pairs) -> bytes:
    """Payload of a BATCH request: u32 count + count x (i64, i64)."""
    array = np.ascontiguousarray(pairs, dtype="<i8")
    if array.ndim != 2 or array.shape[1] != 2:
        raise ProtocolError(
            f"batch payload needs an (n, 2) pair array, got shape {array.shape}"
        )
    return _U32.pack(array.shape[0]) + array.tobytes()


def decode_pairs(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_pairs`; returns an ``(n, 2)`` i64 array.

    Raises:
        ProtocolError: if the count does not match the payload length.
    """
    if len(payload) < _U32.size:
        raise ProtocolError("batch payload truncated before its count")
    (count,) = _U32.unpack_from(payload, 0)
    body = payload[_U32.size :]
    if len(body) != count * _PAIR.size:
        raise ProtocolError(
            f"batch payload advertises {count} pairs "
            f"({count * _PAIR.size} bytes) but carries {len(body)} bytes"
        )
    return np.frombuffer(body, dtype="<i8").reshape(count, 2).astype(np.int64)


def encode_distances(distances) -> bytes:
    """Payload of an OK response to BATCH: u32 count + count x f64."""
    array = np.ascontiguousarray(distances, dtype="<f8")
    return _U32.pack(array.shape[0]) + array.tobytes()


def decode_distances(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_distances`; returns a float64 vector.

    Raises:
        ProtocolError: if the count does not match the payload length.
    """
    if len(payload) < _U32.size:
        raise ProtocolError("distance payload truncated before its count")
    (count,) = _U32.unpack_from(payload, 0)
    body = payload[_U32.size :]
    if len(body) != count * _F64.size:
        raise ProtocolError(
            f"distance payload advertises {count} values but carries "
            f"{len(body)} bytes"
        )
    return np.frombuffer(body, dtype="<f8").astype(np.float64)


def encode_f64(value: float) -> bytes:
    """Payload of an OK response to QUERY: one f64."""
    return _F64.pack(float(value))


def decode_f64(payload: bytes) -> float:
    """Inverse of :func:`encode_f64`."""
    if len(payload) != _F64.size:
        raise ProtocolError(
            f"scalar payload must be {_F64.size} bytes, got {len(payload)}"
        )
    return _F64.unpack(payload)[0]


def encode_u64(value: int) -> bytes:
    """Payload of an OK response to INSERT/DELETE: one u64 count."""
    return _U64.pack(int(value))


def decode_u64(payload: bytes) -> int:
    """Inverse of :func:`encode_u64`."""
    if len(payload) != _U64.size:
        raise ProtocolError(
            f"u64 payload must be {_U64.size} bytes, got {len(payload)}"
        )
    return _U64.unpack(payload)[0]


def encode_error(message: str, retry_after: float = 0.0) -> bytes:
    """Payload of any error response: f64 retry_after + UTF-8 message."""
    return _F64.pack(float(retry_after)) + message.encode("utf-8")


def decode_error(payload: bytes) -> Tuple[float, str]:
    """Inverse of :func:`encode_error`; returns ``(retry_after, message)``."""
    if len(payload) < _F64.size:
        raise ProtocolError("error payload truncated before retry_after")
    (retry_after,) = _F64.unpack_from(payload, 0)
    return retry_after, payload[_F64.size :].decode("utf-8", "replace")


# -- Status <-> exception mapping --------------------------------------------

#: Exception class -> wire status, most specific first (checked with
#: isinstance, so order matters: OverloadedError before ReproError).
_ERROR_TO_STATUS = (
    (ProtocolError, Status.PROTOCOL_ERROR),
    (OverloadedError, Status.OVERLOADED),
    (StaleGenerationError, Status.STALE_GENERATION),
    (VertexError, Status.BAD_REQUEST),
    (GraphError, Status.BAD_REQUEST),
    (ValueError, Status.BAD_REQUEST),
    (CapabilityError, Status.UNSUPPORTED),
    (NotImplementedError, Status.UNSUPPORTED),
    (NotBuiltError, Status.UNSUPPORTED),
    (ServiceClosedError, Status.SHUTTING_DOWN),
)


def status_for_error(exc: BaseException) -> Tuple[int, float]:
    """Map an exception to ``(wire status, retry_after)``.

    The inverse of :func:`error_for_status`: every library exception
    lands on a specific status (unknown ones degrade to
    ``Status.INTERNAL``), and the overload hint travels with it.
    """
    for cls, status in _ERROR_TO_STATUS:
        if isinstance(exc, cls):
            retry_after = getattr(exc, "retry_after", 0.0)
            return status, float(retry_after)
    return Status.INTERNAL, 0.0


def error_for_status(
    status: int, message: str, retry_after: float = 0.0, generation: int = 0
) -> ReproError:
    """Reconstruct the typed exception a wire error status stands for.

    The inverse of :func:`status_for_error`: clients raise the same
    exception family the server-side failure belonged to, so remote
    callers catch :class:`~repro.errors.OverloadedError` (with its
    ``retry_after``) or :class:`~repro.errors.GraphError` exactly as
    in-process callers do.
    """
    if status == Status.PROTOCOL_ERROR:
        return ProtocolError(message)
    if status == Status.OVERLOADED:
        return OverloadedError(message, retry_after=retry_after)
    if status == Status.STALE_GENERATION:
        return StaleGenerationError(message, generation=generation)
    if status == Status.BAD_REQUEST:
        return GraphError(message)
    if status == Status.UNSUPPORTED:
        return CapabilityError(message)
    if status == Status.SHUTTING_DOWN:
        return ServiceClosedError(message)
    return ReproError(message)


def raise_for_frame(frame: Frame) -> Frame:
    """Return ``frame`` if it is an OK response; raise its error otherwise.

    Raises:
        ProtocolError: if the frame is not a response frame at all.
        ReproError: the typed exception for any error status (see
            :func:`error_for_status`).
    """
    if frame.kind == Status.OK:
        return frame
    if frame.kind not in Status.ALL:
        raise ProtocolError(
            f"expected a response frame, got request opcode {frame.kind}"
        )
    retry_after, message = decode_error(frame.payload)
    raise error_for_status(frame.kind, message, retry_after, frame.generation)
