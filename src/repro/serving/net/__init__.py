"""``repro.serving.net`` — the wire-protocol serving layer.

The network front door over the in-process serving tiers (see
``docs/networking.md`` for the full design):

* :mod:`repro.serving.net.wire` — the sans-io protocol: length-prefixed
  versioned binary frames, request/response codecs, and the
  bidirectional status-code <-> typed-exception mapping.
* :class:`NetServer` (:mod:`repro.serving.net.server`) — asyncio TCP
  server over any oracle-protocol backend: bounded-ingress admission
  control with retry-after backpressure, per-client accounting, and
  zero-downtime snapshot rollover driven by a
  :class:`SnapshotRollover` watcher over the durable
  :class:`~repro.core.serialization.SnapshotSpool`.
* :class:`NetClient` / :class:`AsyncNetClient`
  (:mod:`repro.serving.net.client`) — pipelined clients with reconnect
  (capped exponential backoff) and overload-retry cooperation.
* :mod:`repro.serving.net.loadgen` — the mixed read/write load
  generator behind ``repro net-bench`` and
  ``benchmarks/bench_net.py``: byte-identity against an in-process
  oracle per generation, QPS/latency percentiles, and a mid-run
  rollover with zero failed requests.
"""

from repro.serving.net.client import AsyncNetClient, NetClient
from repro.serving.net.server import NetServer, SnapshotRollover

__all__ = [
    "AsyncNetClient",
    "NetClient",
    "NetServer",
    "SnapshotRollover",
]
