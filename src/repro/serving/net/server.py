"""The network front door: an asyncio TCP server over a distance oracle.

This is the layer the ROADMAP's "millions of users" north star was
missing: everything below it — the coalescing
:class:`~repro.serving.DistanceService`, the process-sharded
:class:`~repro.serving.ShardedDistanceService`, the durable
:class:`~repro.core.serialization.SnapshotSpool` — is in-process; this
module puts a wire protocol (:mod:`repro.serving.net.wire`) in front of
any oracle-protocol backend and adds the two properties a front door
needs:

* **Admission control with backpressure.** Every accepted request
  occupies one slot of a bounded ingress (``max_queue`` requests /
  ``max_inflight_bytes`` of payload). A request that would exceed
  either bound is *rejected immediately* with
  ``Status.OVERLOADED`` carrying a ``retry_after`` hint — the server
  never buffers unboundedly and never stalls the event loop, so health
  checks and rejections stay fast even under saturation. Per-client
  accounting (accepted / rejected / bytes in / bytes out) is kept by
  peer address and reported by :meth:`NetServer.stats` and the wire
  ``STATS`` verb.
* **Zero-downtime snapshot rollover.** With a
  :class:`SnapshotRollover` attached, the server watches a
  :class:`~repro.core.serialization.SnapshotSpool` directory; when a
  writer publishes generation N+1, the server **loads it off the
  request path**, then takes the writer side of the reader/writer gate
  — which waits for in-flight queries against N to drain while new
  arrivals queue (they are *accepted*, just briefly held) — swaps the
  backend reference, bumps the serving generation, and releases the
  gate. Readers observe bounded staleness and a generation bump, never
  an error; the swapped-out backend is closed off-path. The same gate
  serializes wire-level ``INSERT_EDGE``/``DELETE_EDGE`` updates against
  query execution (mirroring the in-process facade's seqlock).

The backend is anything satisfying the oracle protocol (``query`` /
``query_many``; ``insert_edge``/``delete_edge`` when it advertises
:data:`~repro.api.Capability.DYNAMIC`; optional ``stats``) — a plain
:class:`~repro.core.query.HighwayCoverOracle`, a dynamic oracle, or a
:class:`~repro.serving.ShardedDistanceService` whose worker processes
then execute the actual label scans (the rollover swap is the "sharded
remap broadcast" in that case: the replacement service's workers map
the new generation before the old workers are torn down).

Example::

    from repro.serving.net import NetServer, SnapshotRollover

    server = NetServer(oracle, port=0)       # port 0: pick a free port
    with server.running_in_thread() as (host, port):
        ...                                  # NetClient(host, port)

CPU-bound oracle calls run on a private thread pool
(``worker_threads``), so the event loop only ever frames bytes and
bookkeeps admission — with a GIL-releasing kernel the pool genuinely
parallelizes label scans.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.errors import (
    CapabilityError,
    ProtocolError,
    ReproError,
    StaleGenerationError,
)
from repro.serving.net import wire
from repro.serving.net.wire import Frame, FrameDecoder, Op, Status

__all__ = ["NetServer", "SnapshotRollover"]


def _jsonable(value):
    """Best-effort conversion of a stats tree to JSON-safe primitives."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, Path):
        return str(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class SnapshotRollover:
    """Watch a snapshot spool directory and load new generations.

    The writer side of the rollover protocol is the existing
    :class:`~repro.core.serialization.SnapshotSpool`: a writer process
    repairs its index and calls ``spool.publish(oracle, graph=True)``,
    which atomically lands ``gen-<seq>.hl`` (plus a ``gen-<seq>.graph``
    sidecar of the exact graph the labels were built against). This
    class is the *reader* side: :meth:`scan` finds the newest complete
    generation, and :meth:`load` turns it into a ready backend — a
    zero-copy mmap single-process oracle by default, or a fresh
    ``shards``-worker :class:`~repro.serving.ShardedDistanceService`
    whose workers all map the new file (the sharded remap).

    Args:
        directory: the spool directory to watch.
        graph: fallback graph for generations without a ``.graph``
            sidecar (required in that case — the snapshot format stores
            labels, not the graph).
        mmap: map label arrays zero-copy (default) instead of copying.
        kernel: query kernel backend name applied to loaded oracles.
        shards: when >= 2, load each generation behind a sharded
            service with this many worker processes.
        poll_s: how often the server polls :meth:`scan`.
        prefix: generation filename prefix (the spool default).
    """

    def __init__(
        self,
        directory,
        graph=None,
        *,
        mmap: bool = True,
        kernel: Optional[str] = None,
        shards: Optional[int] = None,
        poll_s: float = 0.25,
        prefix: str = "gen",
    ) -> None:
        if shards is not None and shards < 2:
            raise ValueError("shards must be >= 2 (or None for single-process)")
        self.directory = Path(directory)
        self.graph = graph
        self.mmap = mmap
        self.kernel = kernel
        self.shards = shards
        self.poll_s = float(poll_s)
        self.prefix = prefix

    @staticmethod
    def seq_of(path) -> int:
        """The generation sequence number encoded in a spool filename."""
        stem = Path(path).stem
        try:
            return int(stem.rsplit("-", 1)[-1])
        except ValueError:
            raise ReproError(
                f"{path}: not a spool generation filename (want gen-<seq>.hl)"
            ) from None

    def scan(self) -> Optional[Tuple[int, Path]]:
        """Newest complete generation as ``(seq, path)``, or ``None``."""
        newest: Optional[Tuple[int, Path]] = None
        for path in self.directory.glob(f"{self.prefix}-*.hl"):
            try:
                seq = self.seq_of(path)
            except ReproError:  # pragma: no cover - foreign file
                continue
            if newest is None or seq > newest[0]:
                newest = (seq, path)
        return newest

    def graph_for(self, path):
        """The graph generation ``path`` was built against.

        Prefers the atomic ``.graph`` sidecar written by
        ``SnapshotSpool.publish(graph=True)`` — which tracks the
        writer's dynamic updates — and falls back to the static
        ``graph`` this watcher was constructed with.

        Raises:
            ReproError: when neither is available.
        """
        from repro.core.serialization import SnapshotSpool

        sidecar = SnapshotSpool.graph_sidecar_for(path)
        if sidecar.is_file():
            from repro.graphs.io import read_binary

            return read_binary(sidecar)
        if self.graph is None:
            raise ReproError(
                f"{path}: no .graph sidecar and no fallback graph configured"
            )
        return self.graph

    def load(self, path):
        """Load generation ``path`` into a ready backend (blocking).

        Called by the server *off* the request path — readers keep
        answering from generation N while N+1 loads here.
        """
        graph = self.graph_for(path)
        if self.shards is not None:
            from repro.serving.sharded import ShardedDistanceService

            return ShardedDistanceService.from_snapshot(
                graph, path, shards=self.shards, kernel=self.kernel,
                mmap=self.mmap,
            )
        from repro.core.serialization import load_oracle

        oracle = load_oracle(graph, path, mmap=self.mmap)
        if self.kernel is not None:
            oracle.set_kernel(self.kernel)
        return oracle


class _Gate:
    """Async reader/writer gate with writer priority (the drain point).

    Queries hold the read side for the duration of their backend call;
    updates and snapshot swaps take the write side, which blocks new
    readers and waits for in-flight ones to finish — exactly the
    in-process facade's seqlock semantics, transplanted to asyncio.
    """

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    async def acquire_read(self) -> None:
        """Enter the read side; parks while a writer holds or waits."""
        async with self._cond:
            while self._writer or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1

    async def release_read(self) -> None:
        """Leave the read side; wakes a draining writer when last out."""
        async with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    async def acquire_write(self) -> None:
        """Drain: block new readers, wait for in-flight ones to finish."""
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    async def release_write(self) -> None:
        """Reopen the gate after a swap; wakes everyone waiting."""
        async with self._cond:
            self._writer = False
            self._cond.notify_all()


class _ClientStats:
    """Per-peer accounting, reported by ``stats()`` and the STATS verb."""

    __slots__ = (
        "accepted", "rejected", "responses", "errors", "bytes_in", "bytes_out"
    )

    def __init__(self) -> None:
        self.accepted = 0
        self.rejected = 0
        self.responses = 0
        self.errors = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def as_dict(self) -> Dict[str, int]:
        """The ledger as a plain dict (for the STATS JSON payload)."""
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "responses": self.responses,
            "errors": self.errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }


class _Conn:
    """One live connection: writer stream, peer key, serialized sends."""

    __slots__ = ("writer", "peer", "lock", "stats")

    def __init__(self, writer, peer: str, stats: _ClientStats) -> None:
        self.writer = writer
        self.peer = peer
        self.lock = asyncio.Lock()
        self.stats = stats

    async def send(self, frame_bytes: bytes) -> None:
        """Write one encoded frame, serialized against concurrent sends."""
        async with self.lock:
            self.writer.write(frame_bytes)
            await self.writer.drain()
        self.stats.bytes_out += len(frame_bytes)


class NetServer:
    """Asyncio TCP server speaking the :mod:`repro.serving.net.wire` protocol.

    Args:
        backend: the oracle-protocol object that answers queries (and
            updates, when it advertises ``Capability.DYNAMIC``).
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (read :attr:`port` after
            start).
        max_queue: admission bound on concurrently accepted, unanswered
            requests; the (``max_queue + 1``)-th is rejected with
            ``Status.OVERLOADED``.
        max_inflight_bytes: admission bound on the summed payload bytes
            of accepted, unanswered requests.
        max_frame_bytes: largest frame body accepted before the
            connection is dropped as corrupt.
        retry_after_s: the backpressure hint carried by overload
            rejections.
        worker_threads: thread-pool size for CPU-bound backend calls
            (with a GIL-releasing kernel these genuinely parallelize).
        rollover: optional :class:`SnapshotRollover`; when given, the
            server polls its spool directory and promotes newer
            generations with the drain-swap-resume protocol.
        snapshot: the generation file the initial ``backend`` serves,
            if any — tells the watcher which sequence number is already
            live so it is not re-promoted at startup.
        generation: initial serving generation (>= 1; 0 means "any" on
            the wire and is reserved).
        owns_backend: close the initial backend on :meth:`stop`
            (backends swapped in by rollover are always owned and
            closed when swapped out).
    """

    def __init__(
        self,
        backend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 1024,
        max_inflight_bytes: int = 256 * 1024 * 1024,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
        retry_after_s: float = 0.05,
        worker_threads: int = 2,
        rollover: Optional[SnapshotRollover] = None,
        snapshot=None,
        generation: int = 1,
        owns_backend: bool = False,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if generation < 1:
            raise ValueError("generation must be >= 1 (0 is 'any' on the wire)")
        if worker_threads < 1:
            raise ValueError("worker_threads must be at least 1")
        self._backend = backend
        self.host = host
        self.port = port
        self.max_queue = int(max_queue)
        self.max_inflight_bytes = int(max_inflight_bytes)
        self.max_frame_bytes = int(max_frame_bytes)
        self.retry_after_s = float(retry_after_s)
        self.worker_threads = int(worker_threads)
        self.rollover = rollover
        self._snapshot = None if snapshot is None else Path(snapshot)
        self._snapshot_seq = (
            SnapshotRollover.seq_of(self._snapshot)
            if self._snapshot is not None and rollover is not None
            else -1
        )
        self._owns_backend = owns_backend
        self._generation = int(generation)
        self._gate = _Gate()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._rollover_task: Optional[asyncio.Task] = None
        self._tasks: set = set()
        self._conn_writers: set = set()
        self._queued = 0
        self._inflight_bytes = 0
        self._accepted = 0
        self._rejected = 0
        self._responses = 0
        self._errors = 0
        self._rollovers = 0
        self._rollover_errors = 0
        self._clients: Dict[str, _ClientStats] = {}
        self._started_at = time.perf_counter()
        self._stats_lock = threading.Lock()
        # Thread-runner state (running_in_thread / serve_in_thread).
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread_error: Optional[BaseException] = None

    # -- Lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.worker_threads, thread_name_prefix="netserver"
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.perf_counter()
        if self.rollover is not None:
            self._rollover_task = asyncio.ensure_future(self._rollover_loop())
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting, settle in-flight requests, release resources."""
        if self._rollover_task is not None:
            self._rollover_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._rollover_task
            self._rollover_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Let in-flight handlers settle (their connections may already
        # be gone; send failures are swallowed per-handler).
        pending = [t for t in self._tasks if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        # Hang up on idle peers so their reader coroutines exit before
        # the loop closes (otherwise loop teardown cancels them noisily).
        for writer in list(self._conn_writers):
            with contextlib.suppress(Exception):
                writer.close()
        deadline = self._loop.time() + 5.0
        while self._conn_writers and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._owns_backend:
            close = getattr(self._backend, "close", None)
            if callable(close):
                close()

    def run_forever(self) -> None:
        """Blocking entry point (the CLI's ``repro serve``): serve until
        interrupted (Ctrl-C)."""

        async def _main() -> None:
            host, port = await self.start()
            print(f"serving on {host}:{port} (generation {self._generation})")
            try:
                await asyncio.Event().wait()
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    def serve_in_thread(self) -> Tuple[str, int]:
        """Start the server on a dedicated event-loop thread.

        Returns the bound ``(host, port)``; pair with :meth:`shutdown`.
        This is how tests, the benchmark harness, and embedders host a
        server without giving up their main thread.
        """
        if self._thread is not None:
            raise ReproError("server thread already running")
        started = threading.Event()

        async def _main() -> None:
            self._stop_event = asyncio.Event()
            try:
                await self.start()
            except BaseException as exc:  # surfaced to the caller below
                self._thread_error = exc
                started.set()
                return
            started.set()
            await self._stop_event.wait()
            await self.stop()

        def _runner() -> None:
            asyncio.run(_main())

        self._thread_error = None
        self._thread = threading.Thread(
            target=_runner, name="netserver-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        if self._thread_error is not None:
            self._thread.join()
            self._thread = None
            raise self._thread_error
        return self.host, self.port

    def shutdown(self) -> None:
        """Stop a :meth:`serve_in_thread` server and join its thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)
        self._thread = None

    @contextlib.contextmanager
    def running_in_thread(self):
        """Context manager around :meth:`serve_in_thread` / :meth:`shutdown`.

        Yields the bound ``(host, port)``.
        """
        address = self.serve_in_thread()
        try:
            yield address
        finally:
            self.shutdown()

    # -- Rollover ------------------------------------------------------------

    async def _rollover_loop(self) -> None:
        """Poll the spool; promote any generation newer than the serving one."""
        while True:
            await asyncio.sleep(self.rollover.poll_s)
            try:
                found = self.rollover.scan()
                if found is not None and found[0] > self._snapshot_seq:
                    await self._promote(found[0], found[1])
            except asyncio.CancelledError:
                raise
            except BaseException:  # noqa: BLE001 - keep serving generation N
                with self._stats_lock:
                    self._rollover_errors += 1

    async def _promote(self, seq: int, path: Path) -> None:
        """The zero-downtime swap: load off-path, drain, swap, resume."""
        # 1. Load generation N+1 while N keeps answering (the loop's
        #    default executor, NOT the query pool — a slow load must not
        #    occupy a query slot).
        new_backend = await self._loop.run_in_executor(
            None, self.rollover.load, path
        )
        # 2. Drain: writer side of the gate waits for in-flight queries;
        #    new arrivals are accepted and held at the read gate.
        await self._gate.acquire_write()
        old_backend, old_owned = self._backend, self._owns_backend
        self._backend = new_backend
        self._owns_backend = True
        self._snapshot = path
        self._snapshot_seq = seq
        with self._stats_lock:
            self._generation += 1
            self._rollovers += 1
        # 3. Resume — queries held at the gate proceed against N+1.
        await self._gate.release_write()
        # 4. Retire the old backend off-path (worker teardown for a
        #    sharded backend can take a while).
        if old_owned:
            close = getattr(old_backend, "close", None)
            if callable(close):
                await self._loop.run_in_executor(None, close)

    # -- Connection handling -------------------------------------------------

    def _client_stats(self, peer: str) -> _ClientStats:
        with self._stats_lock:
            stats = self._clients.get(peer)
            if stats is None:
                stats = self._clients[peer] = _ClientStats()
            return stats

    async def _on_connection(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        peer = (
            f"{peername[0]}:{peername[1]}"
            if isinstance(peername, tuple)
            else str(peername)
        )
        conn = _Conn(writer, peer, self._client_stats(peer))
        decoder = FrameDecoder(self.max_frame_bytes)
        self._conn_writers.add(writer)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                conn.stats.bytes_in += len(data)
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # The stream offset can no longer be trusted:
                    # answer once (request id 0) and drop the peer.
                    conn.stats.errors += 1
                    with contextlib.suppress(Exception):
                        await conn.send(
                            wire.encode_frame(
                                Status.PROTOCOL_ERROR,
                                0,
                                self._generation,
                                wire.encode_error(str(exc)),
                            )
                        )
                    break
                for frame in frames:
                    await self._admit(conn, frame)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_writers.discard(writer)
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _admit(self, conn: _Conn, frame: Frame) -> None:
        """Admission control: accept into the bounded ingress or reject."""
        if frame.kind not in Op.ALL:
            # A response status in the request direction: per-frame
            # violation, the stream itself is still aligned.
            conn.stats.errors += 1
            await conn.send(
                wire.encode_frame(
                    Status.PROTOCOL_ERROR,
                    frame.request_id,
                    self._generation,
                    wire.encode_error(
                        f"kind {frame.kind} is not a request opcode"
                    ),
                )
            )
            return
        size = len(frame.payload)
        with self._stats_lock:
            over = (
                self._queued >= self.max_queue
                or self._inflight_bytes + size > self.max_inflight_bytes
            )
            if not over:
                self._queued += 1
                self._inflight_bytes += size
                self._accepted += 1
                conn.stats.accepted += 1
            else:
                self._rejected += 1
                conn.stats.rejected += 1
        if over:
            await conn.send(
                wire.encode_frame(
                    Status.OVERLOADED,
                    frame.request_id,
                    self._generation,
                    wire.encode_error(
                        f"ingress full ({self.max_queue} requests / "
                        f"{self.max_inflight_bytes} bytes); retry after "
                        f"{self.retry_after_s}s",
                        retry_after=self.retry_after_s,
                    ),
                )
            )
            return
        task = asyncio.ensure_future(self._handle(conn, frame))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _handle(self, conn: _Conn, frame: Frame) -> None:
        """Execute one admitted request and send its response."""
        error = False
        try:
            try:
                response = await self._dispatch(frame)
            except BaseException as exc:  # noqa: BLE001 - mapped to status
                error = True
                status, retry_after = wire.status_for_error(exc)
                response = wire.encode_frame(
                    status,
                    frame.request_id,
                    self._generation,
                    wire.encode_error(str(exc), retry_after),
                )
        finally:
            with self._stats_lock:
                self._queued -= 1
                self._inflight_bytes -= len(frame.payload)
        with self._stats_lock:
            self._responses += 1
            if error:
                self._errors += 1
        conn.stats.responses += 1
        if error:
            conn.stats.errors += 1
        with contextlib.suppress(Exception):
            # The peer may have vanished; accounting above still holds.
            await conn.send(response)

    async def _dispatch(self, frame: Frame) -> bytes:
        op = frame.kind
        if frame.generation and frame.generation > self._generation:
            raise StaleGenerationError(
                f"request requires generation >= {frame.generation}, "
                f"serving {self._generation}",
                generation=self._generation,
            )
        if op == Op.HEALTH:
            return wire.encode_frame(
                Status.OK,
                frame.request_id,
                self._generation,
                json.dumps(self._health()).encode("utf-8"),
            )
        if op == Op.STATS:
            generation, payload = await self._run_shared(self._stats_payload)
            return wire.encode_frame(
                Status.OK, frame.request_id, generation, payload
            )
        if op == Op.QUERY:
            s, t = wire.decode_pair(frame.payload)
            generation, value = await self._run_shared(
                lambda: self._backend.query(s, t)
            )
            return wire.encode_frame(
                Status.OK, frame.request_id, generation, wire.encode_f64(value)
            )
        if op == Op.BATCH:
            pairs = wire.decode_pairs(frame.payload)
            generation, distances = await self._run_shared(
                lambda: self._backend.query_many(pairs)
            )
            return wire.encode_frame(
                Status.OK,
                frame.request_id,
                generation,
                wire.encode_distances(distances),
            )
        if op in (Op.INSERT_EDGE, Op.DELETE_EDGE):
            u, v = wire.decode_pair(frame.payload)
            method = "insert_edge" if op == Op.INSERT_EDGE else "delete_edge"
            generation, affected = await self._run_update(method, u, v)
            count = len(affected) if hasattr(affected, "__len__") else int(
                affected if affected is not None else 0
            )
            return wire.encode_frame(
                Status.OK, frame.request_id, generation, wire.encode_u64(count)
            )
        raise ProtocolError(f"unhandled opcode {op}")  # pragma: no cover

    async def _run_shared(self, fn):
        """Run a read-path backend call under the read gate, off-loop.

        Returns ``(generation, result)`` with the generation captured
        *while the gate was held* — the exact snapshot state that
        answered, which is what lets clients attribute every response
        to one generation across rollovers.
        """
        await self._gate.acquire_read()
        try:
            generation = self._generation
            result = await self._loop.run_in_executor(self._pool, fn)
        finally:
            await self._gate.release_read()
        return generation, result

    async def _run_update(self, method: str, u: int, v: int):
        """Run a wire-level edge update under the write gate, off-loop."""
        from repro.api.protocol import Capability, capabilities_of

        if Capability.DYNAMIC not in capabilities_of(self._backend):
            raise CapabilityError(
                f"backend {self._backend!r} does not advertise "
                f"Capability.DYNAMIC; serve with dynamic=True for wire updates"
            )
        await self._gate.acquire_write()
        try:
            affected = await self._loop.run_in_executor(
                self._pool, getattr(self._backend, method), int(u), int(v)
            )
            with self._stats_lock:
                self._generation += 1
            generation = self._generation
        finally:
            await self._gate.release_write()
        return generation, affected

    # -- Observability -------------------------------------------------------

    def _health(self) -> Dict:
        with self._stats_lock:
            return {
                "ok": True,
                "generation": self._generation,
                "snapshot": None if self._snapshot is None else str(self._snapshot),
                "queued": self._queued,
                "inflight_bytes": self._inflight_bytes,
                "uptime_s": time.perf_counter() - self._started_at,
            }

    def _stats_payload(self) -> bytes:
        return json.dumps(_jsonable(self.stats())).encode("utf-8")

    def stats(self) -> Dict:
        """Server statistics (also served by the wire ``STATS`` verb).

        Keys: ``generation`` / ``snapshot`` / ``snapshot_seq`` /
        ``rollovers`` / ``rollover_errors`` (the rollover state),
        ``accepted`` / ``rejected`` / ``responses`` / ``errors``
        (request counters; ``rejected`` counts admission-control
        rejections, which are *not* in ``responses``), ``queued`` /
        ``inflight_bytes`` (current ingress occupancy against
        ``max_queue`` / ``max_inflight_bytes``), ``clients`` (per-peer
        accounting dicts), ``uptime_s``, and ``backend`` (the hosted
        backend's own ``stats()`` when it has one).
        """
        with self._stats_lock:
            stats = {
                "address": [self.host, self.port],
                "generation": self._generation,
                "snapshot": None if self._snapshot is None else str(self._snapshot),
                "snapshot_seq": self._snapshot_seq,
                "rollovers": self._rollovers,
                "rollover_errors": self._rollover_errors,
                "accepted": self._accepted,
                "rejected": self._rejected,
                "responses": self._responses,
                "errors": self._errors,
                "queued": self._queued,
                "inflight_bytes": self._inflight_bytes,
                "max_queue": self.max_queue,
                "max_inflight_bytes": self.max_inflight_bytes,
                "retry_after_s": self.retry_after_s,
                "worker_threads": self.worker_threads,
                "uptime_s": time.perf_counter() - self._started_at,
                "clients": {
                    peer: cs.as_dict() for peer, cs in self._clients.items()
                },
            }
        backend_stats = getattr(self._backend, "stats", None)
        stats["backend"] = backend_stats() if callable(backend_stats) else None
        return stats

    @property
    def generation(self) -> int:
        """The serving generation (bumps on every rollover and update)."""
        with self._stats_lock:
            return self._generation

    @property
    def backend(self):
        """The currently serving backend (swapped by rollover)."""
        return self._backend

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetServer({self.host}:{self.port}, "
            f"generation={self._generation})"
        )
