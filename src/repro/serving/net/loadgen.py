"""Load generator for the network front door (``repro net-bench``).

Drives a live :class:`~repro.serving.net.server.NetServer` with a
sustained mixed read/write workload and proves the two properties the
front door exists for:

* **Byte-identity per generation.** Every wire response carries the
  snapshot generation that answered it; the harness checks each batch
  against an in-process ``query_many`` oracle *of that exact
  generation* — so answers are asserted bitwise-correct even while the
  serving snapshot changes underneath the load.
* **Zero-downtime rollover.** Mid-run, a writer thread repairs its
  dynamic oracle (edge inserts — the write half of the workload) and
  publishes new generations through the durable
  :class:`~repro.core.serialization.SnapshotSpool`; the server drains
  and swaps while reader threads keep hammering. The run asserts zero
  failed requests across the swap.

The same harness powers ``benchmarks/bench_net.py`` (which records a
QPS/p50/p99-per-round curve to ``benchmarks/results/net.txt``), the CLI
``repro net-bench``, and CI's net-smoke job. An optional reconnect
phase restarts the server on the same port mid-harness and reuses the
existing clients, exercising the capped-exponential-backoff reconnect
path end to end.
"""

from __future__ import annotations

import tempfile
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ReproError

__all__ = ["run_net_bench"]


def _pick_new_edges(graph, rng: np.random.Generator, count: int) -> List:
    """Deterministically sample ``count`` vertex pairs not yet edges."""
    edges = []
    n = graph.num_vertices
    have = set()
    while len(edges) < count:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or graph.has_edge(u, v) or (u, v) in have or (v, u) in have:
            continue
        have.add((u, v))
        edges.append((u, v))
    return edges


class _ReaderResult:
    """One reader thread's recorded batches and failures."""

    __slots__ = ("rounds", "failures")

    def __init__(self) -> None:
        #: list of (round_index, pool_indices, distances, generations,
        #: latency_seconds)
        self.rounds: List[tuple] = []
        self.failures: List[BaseException] = []


def run_net_bench(
    *,
    n: int = 2000,
    degree: int = 3,
    landmarks: int = 16,
    pool_size: int = 400,
    readers: int = 4,
    rounds: int = 24,
    batch_size: int = 64,
    rollovers: int = 2,
    edges_per_rollover: int = 3,
    shards: Optional[int] = None,
    kernel: Optional[str] = None,
    worker_threads: int = 2,
    max_queue: int = 1024,
    poll_s: float = 0.05,
    reconnect_phase: bool = True,
    seed: int = 0,
    out=None,
    verbose: bool = True,
) -> Dict:
    """Run the mixed read/write wire benchmark; return the report dict.

    Builds an HL oracle on a synthetic BA graph, publishes generation 0
    into a spool, serves it through a :class:`NetServer` with a
    rollover watcher, then runs ``readers`` client threads (each
    issuing ``rounds`` pipelined BATCH requests of ``batch_size`` pairs
    from a fixed pool) while a writer thread performs ``rollovers``
    repair+publish cycles mid-load. Asserts (into the report, raising
    :class:`~repro.errors.ReproError` on violation):

    * zero failed requests (overload rejections are retried by the
      client and counted, not failed);
    * every response byte-identical to the in-process ``query_many``
      answer of the generation that served it;
    * at least ``rollovers`` generation swaps observed mid-load;
    * client-side sent counters reconcile with the server's per-client
      accepted+rejected accounting.

    Args:
        out: optional path; when given the human-readable report lines
            are also written there (``benchmarks/results/net.txt``).
        reconnect_phase: restart the server on the same port and drive
            one more round through the *same* clients, exercising
            reconnect-with-backoff; answers re-asserted.
        verbose: print the report lines as they are produced.
    """
    from repro.api.factory import build_oracle, open_oracle
    from repro.core.serialization import SnapshotSpool, load_oracle
    from repro.graphs.generators import barabasi_albert_graph
    from repro.graphs.sampling import sample_vertex_pairs
    from repro.serving.net.client import NetClient
    from repro.serving.net.server import NetServer, SnapshotRollover

    lines: List[str] = []

    def say(text: str) -> None:
        """Record a report line (and echo it when verbose)."""
        lines.append(text)
        if verbose:
            print(text)

    rng = np.random.default_rng(seed)
    graph = barabasi_albert_graph(n, degree, seed=7, name="net-bench")
    base = build_oracle(graph, "hl", num_landmarks=landmarks, kernel=kernel)
    pool = sample_vertex_pairs(graph, pool_size, seed=seed)

    spool_dir = tempfile.mkdtemp(prefix="repro-net-bench-")
    spool = SnapshotSpool(spool_dir)
    gen0 = spool.publish(base, graph=True)

    # The writer's dynamic mirror (starts at generation-0 state) and the
    # per-generation in-process ground truth.
    mirror = open_oracle(graph, index=gen0, dynamic=True)
    expected: Dict[int, np.ndarray] = {1: base.query_many(pool)}

    backend = load_oracle(graph, gen0, mmap=True)
    if kernel is not None:
        backend.set_kernel(kernel)
    rollover = SnapshotRollover(
        spool.directory, graph=graph, poll_s=poll_s, shards=shards,
        kernel=kernel,
    )
    server = NetServer(
        backend,
        rollover=rollover,
        snapshot=gen0,
        owns_backend=True,
        max_queue=max_queue,
        worker_threads=worker_threads,
    )
    host, port = server.serve_in_thread()
    say(
        f"net-bench: n={n} k={landmarks} pool={pool_size} readers={readers} "
        f"rounds={rounds} batch={batch_size} rollovers={rollovers} "
        f"shards={shards or 1} addr={host}:{port}"
    )

    progress = {"rounds_done": 0}
    progress_lock = threading.Lock()
    writer_done = threading.Event()
    results = [_ReaderResult() for _ in range(readers)]
    clients = [NetClient(host, port) for _ in range(readers)]
    writer_failures: List[BaseException] = []
    swap_rounds: List[int] = []

    def reader_main(index: int) -> None:
        """One reader client: pipelined batches until the writer is done."""
        client = clients[index]
        record = results[index]
        reader_rng = np.random.default_rng(seed + 1000 + index)
        try:
            round_index = 0
            # Run the configured rounds, then keep the load going until
            # the writer has driven every rollover — this is what makes
            # the swaps land *mid-load* regardless of relative speed.
            while round_index < rounds or not writer_done.is_set():
                if round_index >= rounds * 200:  # runaway guard
                    break
                idxs = reader_rng.integers(0, len(pool), size=batch_size)
                t0 = time.perf_counter()
                distances, gens = client.query_many(
                    pool[idxs], batch_size=batch_size, with_generations=True
                )
                latency = time.perf_counter() - t0
                record.rounds.append(
                    (round_index, idxs, distances, gens, latency)
                )
                with progress_lock:
                    progress["rounds_done"] += 1
                round_index += 1
        except BaseException as exc:  # noqa: BLE001 - reported as a failure
            record.failures.append(exc)

    def writer_main() -> None:
        """The write half: repair + publish, waiting for each swap."""
        probe = NetClient(host, port)
        try:
            total_rounds = readers * rounds
            for r in range(1, rollovers + 1):
                # Stagger publishes across the run so every swap lands
                # mid-load, not before or after it.
                threshold = (r * total_rounds) // (rollovers + 1)
                while True:
                    with progress_lock:
                        done = progress["rounds_done"]
                    if done >= threshold:
                        break
                    time.sleep(0.002)
                for u, v in _pick_new_edges(
                    mirror.graph, rng, edges_per_rollover
                ):
                    mirror.insert_edge(u, v)
                expected[r + 1] = mirror.query_many(pool)
                spool.publish(mirror, graph=True)
                deadline = time.monotonic() + 30.0
                while probe.health()["generation"] < r + 1:
                    if time.monotonic() > deadline:
                        raise ReproError(
                            f"rollover {r} not promoted within 30s"
                        )
                    time.sleep(poll_s)
                with progress_lock:
                    swap_rounds.append(progress["rounds_done"])
        except BaseException as exc:  # noqa: BLE001 - reported as a failure
            writer_failures.append(exc)
        finally:
            writer_done.set()
            probe.close()

    threads = [
        threading.Thread(target=reader_main, args=(i,), name=f"net-reader-{i}")
        for i in range(readers)
    ]
    writer = threading.Thread(target=writer_main, name="net-writer")
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    writer.start()
    for t in threads:
        t.join()
    writer.join()
    wall = time.perf_counter() - wall_start

    server_stats = server.stats()

    # -- Verification ---------------------------------------------------------
    failures = [exc for r in results for exc in r.failures] + writer_failures
    total_pairs = 0
    mismatched = 0
    generations_seen = set()
    per_round: Dict[int, List[tuple]] = {}
    for record in results:
        for round_index, idxs, distances, gens, latency in record.rounds:
            total_pairs += len(idxs)
            for g in np.unique(gens):
                generations_seen.add(int(g))
                mask = gens == g
                truth = expected.get(int(g))
                if truth is None or not np.array_equal(
                    distances[mask], truth[idxs[mask]]
                ):
                    mismatched += int(mask.sum())
            per_round.setdefault(round_index, []).append(
                (latency, len(idxs), set(int(g) for g in np.unique(gens)))
            )

    # The QPS / p50 / p99 curve, per reader round (the rollover is
    # visible in the generation column). Long runs are strided down to
    # ~24 rows, but every round where the generation set changes is
    # always shown so each swap appears in the curve.
    round_ids = sorted(per_round)
    gen_of = {
        ri: sorted(set().union(*(e[2] for e in per_round[ri])))
        for ri in round_ids
    }
    stride = max(1, len(round_ids) // 24)
    shown = set(round_ids[::stride]) | {round_ids[-1]}
    for pos in range(1, len(round_ids)):
        if gen_of[round_ids[pos]] != gen_of[round_ids[pos - 1]]:
            shown.add(round_ids[pos])
    say("round  requests      QPS    p50_ms    p99_ms  generations")
    for round_index in sorted(shown):
        entries = per_round[round_index]
        lats = np.array([e[0] for e in entries])
        requests = sum(e[1] for e in entries)
        gens = sorted(set().union(*(e[2] for e in entries)))
        qps = requests / max(lats.mean(), 1e-9)
        say(
            f"{round_index:5d}  {requests:8d}  {qps:7,.0f}  "
            f"{np.percentile(lats, 50) * 1e3:8.2f}  "
            f"{np.percentile(lats, 99) * 1e3:8.2f}  {gens}"
        )

    all_lats = np.array(
        [lat for record in results for (_, _, _, _, lat) in record.rounds]
    )
    overall_qps = total_pairs / wall if wall else float("inf")
    retries = sum(c.overload_retries for c in clients)
    say(
        f"total: {total_pairs} pairs in {wall:.2f}s = {overall_qps:,.0f} "
        f"pair/s; batch p50={np.percentile(all_lats, 50) * 1e3:.2f}ms "
        f"p99={np.percentile(all_lats, 99) * 1e3:.2f}ms; "
        f"overload_retries={retries}"
    )
    say(
        f"rollover: {server_stats['rollovers']} swaps "
        f"(generations seen: {sorted(generations_seen)}; "
        f"swap landed after reader-rounds {swap_rounds}); "
        f"failed requests: {len(failures)}"
    )
    say(
        f"byte-identity: {total_pairs - mismatched}/{total_pairs} pairs "
        f"match the in-process query_many answer of their generation"
    )

    # Client/server accounting reconciliation. The per-peer ledgers must
    # sum to the server totals, and every frame our reader clients sent
    # must appear there (the writer's health probe adds frames on top,
    # so the ledger is >= the reader count, never below it).
    sent = sum(c.sent for c in clients)
    ledger = sum(
        cs["accepted"] + cs["rejected"]
        for cs in server_stats["clients"].values()
    )
    accounting_ok = (
        server_stats["accepted"] + server_stats["rejected"] == ledger
        and ledger >= sent
    )
    say(
        f"accounting: reader frames sent={sent}, server ledger "
        f"accepted+rejected={ledger} (probe included) -> "
        f"{'OK' if accounting_ok else 'MISMATCH'}"
    )

    # -- Reconnect phase ------------------------------------------------------
    reconnect_ok = None
    reconnects = 0
    if reconnect_phase and not failures:
        server.shutdown()
        latest = spool.latest()
        new_backend = rollover.load(latest)
        final_generation = max(expected)
        server = NetServer(
            new_backend,
            snapshot=latest,
            rollover=rollover,
            generation=final_generation,
            owns_backend=True,
            max_queue=max_queue,
            worker_threads=worker_threads,
        )
        server.host, server.port = host, port
        deadline = time.monotonic() + 10.0
        while True:
            try:
                server.serve_in_thread()
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
        reconnect_ok = True
        truth = expected[final_generation]
        idxs = np.arange(0, len(pool), max(1, len(pool) // batch_size))
        for client in clients:
            distances, gens = client.query_many(
                pool[idxs], with_generations=True
            )
            if not np.array_equal(distances, truth[idxs]):
                reconnect_ok = False
        reconnects = sum(c.reconnects for c in clients)
        say(
            f"reconnect: server restarted on {host}:{port}; "
            f"{reconnects} client reconnects, answers "
            f"{'exact' if reconnect_ok else 'MISMATCHED'}"
        )

    for client in clients:
        client.close()
    server.shutdown()
    spool.close(force=True)

    report = {
        "requests": total_pairs,
        "qps": overall_qps,
        "p50_ms": float(np.percentile(all_lats, 50) * 1e3),
        "p99_ms": float(np.percentile(all_lats, 99) * 1e3),
        "failures": len(failures),
        "failure_examples": [repr(e) for e in failures[:3]],
        "mismatched": mismatched,
        "rollovers": server_stats["rollovers"],
        "generations_seen": sorted(generations_seen),
        "overload_retries": retries,
        "accounting_ok": accounting_ok,
        "reconnect_ok": reconnect_ok,
        "reconnects": reconnects,
        "lines": lines,
    }

    if out is not None:
        from pathlib import Path

        Path(out).write_text("\n".join(lines) + "\n", encoding="utf-8")
        say(f"recorded -> {out}")

    problems = []
    if failures:
        problems.append(
            f"{len(failures)} failed requests (first: {failures[0]!r})"
        )
    if mismatched:
        problems.append(f"{mismatched} pairs differ from in-process answers")
    if server_stats["rollovers"] < rollovers:
        problems.append(
            f"only {server_stats['rollovers']}/{rollovers} rollovers promoted"
        )
    want_gens = {1, rollovers + 1} if rollovers else {1}
    if not want_gens <= generations_seen:
        problems.append(
            f"load did not span the rollovers: saw generations "
            f"{sorted(generations_seen)}, wanted at least {sorted(want_gens)}"
        )
    if not accounting_ok:
        problems.append("client/server accounting mismatch")
    if reconnect_ok is False:
        problems.append("reconnect phase answers mismatched")
    if problems:
        raise ReproError("net-bench failed: " + "; ".join(problems))
    return report
