"""Clients for the wire protocol: synchronous and asyncio, pipelined.

Both clients are thin shells around the sans-io codec
(:mod:`repro.serving.net.wire`) — the protocol logic (framing, request
ids, status-to-exception mapping) is shared; only the byte transport
differs:

* :class:`NetClient` — blocking sockets, for scripts, the CLI
  (``repro query --remote``), and thread-based load generators.
* :class:`AsyncNetClient` — asyncio streams with a demultiplexing
  reader task, so any number of coroutines can have requests in flight
  on one connection.

Shared behaviour:

* **Pipelined batches.** ``query_many`` splits large pair arrays into
  ``batch_size`` chunks and keeps up to ``window`` BATCH frames in
  flight; responses are matched by request id (the server may answer
  out of order) and reassembled in submission order.
* **Reconnect with capped exponential backoff.** A dead connection
  (server restart, network blip) is re-dialed with delays
  ``backoff_base * 2^k`` capped at ``backoff_cap``; idempotent reads
  are re-sent transparently, while edge updates are *never* auto-resent
  (the update may have applied before the acknowledgement was lost —
  re-sending could double-apply).
* **Backpressure cooperation.** An ``OVERLOADED`` rejection is retried
  after the server's ``retry_after`` hint, up to
  ``max_overload_retries`` times, after which the
  :class:`~repro.errors.OverloadedError` propagates to the caller.
* **Generation tracking.** Every response carries the snapshot
  generation that answered it; :attr:`NetClient.generation` exposes
  the latest observed one, and per-call ``min_generation`` turns it
  into a read-your-writes bound (the server rejects with
  ``STALE_GENERATION`` rather than answer from an older snapshot).

Example::

    from repro.serving.net import NetClient

    with NetClient(host, port) as client:
        client.query(3, 250)
        client.query_many([(0, 1), (2, 9)])
        client.stats()["generation"]
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import OverloadedError, ReproError
from repro.serving.net import wire
from repro.serving.net.wire import Frame, FrameDecoder, Op

__all__ = ["AsyncNetClient", "NetClient"]

_RECV_BYTES = 65536


class _ClientBase:
    """Connection-agnostic protocol state shared by both clients."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        connect_attempts: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        max_overload_retries: int = 64,
        min_generation: int = 0,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
    ) -> None:
        if connect_attempts < 1:
            raise ValueError("connect_attempts must be at least 1")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.connect_attempts = int(connect_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.max_overload_retries = int(max_overload_retries)
        self.min_generation = int(min_generation)
        self.max_frame_bytes = int(max_frame_bytes)
        self._next_id = 1
        self.generation = 0
        #: Counters for reconciling against server-side accounting.
        self.sent = 0
        self.received = 0
        self.reconnects = 0
        self.overload_retries = 0

    def _take_id(self) -> int:
        request_id = self._next_id
        # Wrap before the u32 ceiling; id 0 is reserved for
        # connection-level errors the server cannot attribute.
        self._next_id = request_id + 1 if request_id < 0xFFFFFFFF else 1
        return request_id

    def _backoff_delays(self) -> List[float]:
        return [
            min(self.backoff_base * (2 ** k), self.backoff_cap)
            for k in range(self.connect_attempts - 1)
        ]

    def _note_response(self, frame: Frame) -> None:
        self.received += 1
        if frame.generation > self.generation:
            self.generation = frame.generation


class NetClient(_ClientBase):
    """Blocking client for :class:`~repro.serving.net.server.NetServer`.

    Thread safety: one ``NetClient`` serves one thread; give each
    thread its own instance (they are cheap — one socket each).

    Args:
        host / port: the server address.
        timeout: socket timeout for connect/send/receive, seconds.
        connect_attempts: total dial attempts (first + retries) before
            a connection error propagates.
        backoff_base / backoff_cap: reconnect delays are
            ``backoff_base * 2^k`` seconds, capped at ``backoff_cap``.
        max_overload_retries: how many ``OVERLOADED`` rejections to wait
            out (per call) before surfacing the error.
        min_generation: default minimum acceptable snapshot generation
            stamped on every request (0 = any; see module docstring).
    """

    def __init__(self, host: str, port: int, **options) -> None:
        super().__init__(host, port, **options)
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(self.max_frame_bytes)
        self._stash: Dict[int, Frame] = {}

    # -- Connection management ----------------------------------------------

    def connect(self) -> "NetClient":
        """Dial the server (with backoff); idempotent if already connected."""
        if self._sock is not None:
            return self
        delays = self._backoff_delays()
        for attempt in range(self.connect_attempts):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                self._decoder = FrameDecoder(self.max_frame_bytes)
                self._stash.clear()
                return self
            except OSError:
                if attempt >= len(delays):
                    raise
                time.sleep(delays[attempt])
        raise ReproError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Close the socket; the client may be reused (it re-dials)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _drop_connection(self) -> None:
        self.close()
        self.reconnects += 1

    def __enter__(self) -> "NetClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- Frame transport -----------------------------------------------------

    def _send_frame(
        self, op: int, payload: bytes, min_generation: Optional[int]
    ) -> int:
        self.connect()
        request_id = self._take_id()
        generation = (
            self.min_generation if min_generation is None else min_generation
        )
        self._sock.sendall(
            wire.encode_frame(op, request_id, generation, payload)
        )
        self.sent += 1
        return request_id

    def _recv_response(self, request_id: int) -> Frame:
        """Block until the response for ``request_id`` arrives.

        Out-of-order responses (pipelining) are stashed for their own
        waiters.
        """
        while True:
            frame = self._stash.pop(request_id, None)
            if frame is not None:
                self._note_response(frame)
                return frame
            data = self._sock.recv(_RECV_BYTES)
            if not data:
                raise ConnectionResetError("server closed the connection")
            for frame in self._decoder.feed(data):
                self._stash[frame.request_id] = frame

    def _request(
        self,
        op: int,
        payload: bytes,
        *,
        min_generation: Optional[int] = None,
        idempotent: bool = True,
    ) -> Frame:
        """One request/response round trip with reconnect + overload retry."""
        overloads = 0
        delays = self._backoff_delays()
        dial_attempt = 0
        while True:
            try:
                request_id = self._send_frame(op, payload, min_generation)
                frame = self._recv_response(request_id)
            except (OSError, EOFError, ConnectionError):
                self._drop_connection()
                if not idempotent:
                    raise
                if dial_attempt >= len(delays):
                    raise
                time.sleep(delays[dial_attempt])
                dial_attempt += 1
                continue
            try:
                return wire.raise_for_frame(frame)
            except OverloadedError as exc:
                overloads += 1
                self.overload_retries += 1
                if overloads > self.max_overload_retries:
                    raise
                time.sleep(exc.retry_after or self.backoff_base)

    # -- Verbs ---------------------------------------------------------------

    def query(
        self, s: int, t: int, *, min_generation: Optional[int] = None
    ) -> float:
        """One exact distance over the wire (``Op.QUERY``)."""
        frame = self._request(
            Op.QUERY, wire.encode_pair(s, t), min_generation=min_generation
        )
        return wire.decode_f64(frame.payload)

    def query_many(
        self,
        pairs,
        *,
        batch_size: int = 4096,
        window: int = 8,
        min_generation: Optional[int] = None,
        with_generations: bool = False,
    ):
        """Bulk exact distances, pipelined (``Op.BATCH``).

        The pair array is split into ``batch_size`` chunks with up to
        ``window`` frames in flight; answers are reassembled in
        submission order. With ``with_generations=True`` returns
        ``(distances, generations)`` where ``generations[i]`` is the
        snapshot generation that answered pair ``i`` — the hook load
        generators use to assert byte-identity across a mid-run
        rollover.
        """
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if len(pairs) == 0:
            empty = np.empty(0, dtype=float)
            return (empty, np.empty(0, dtype=np.int64)) if with_generations else empty
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if window < 1:
            raise ValueError("window must be at least 1")
        chunks = [
            pairs[lo : lo + batch_size]
            for lo in range(0, len(pairs), batch_size)
        ]
        results: List[Optional[np.ndarray]] = [None] * len(chunks)
        generations = np.zeros(len(chunks), dtype=np.int64)
        overloads = 0
        delays = self._backoff_delays()
        dial_attempt = 0
        todo = list(range(len(chunks)))
        while todo or any(r is None for r in results):
            inflight: Dict[int, int] = {}
            try:
                while todo or inflight:
                    while todo and len(inflight) < window:
                        index = todo.pop(0)
                        request_id = self._send_frame(
                            Op.BATCH,
                            wire.encode_pairs(chunks[index]),
                            min_generation,
                        )
                        inflight[request_id] = index
                    request_id = next(iter(inflight))
                    frame = self._recv_response(request_id)
                    index = inflight.pop(request_id)
                    try:
                        wire.raise_for_frame(frame)
                    except OverloadedError as exc:
                        overloads += 1
                        self.overload_retries += 1
                        if overloads > self.max_overload_retries:
                            raise
                        time.sleep(exc.retry_after or self.backoff_base)
                        todo.append(index)
                        continue
                    results[index] = wire.decode_distances(frame.payload)
                    generations[index] = frame.generation
            except (OSError, EOFError, ConnectionError):
                # Reads are idempotent: reconnect and re-send whatever
                # was unanswered (stale in-flight ids died with the
                # connection — the decoder and stash were reset).
                self._drop_connection()
                if dial_attempt >= len(delays):
                    raise
                time.sleep(delays[dial_attempt])
                dial_attempt += 1
                todo = [i for i, r in enumerate(results) if r is None]
        distances = np.concatenate([np.asarray(r, dtype=float) for r in results])
        if with_generations:
            per_pair = np.concatenate(
                [
                    np.full(len(chunk), generations[i], dtype=np.int64)
                    for i, chunk in enumerate(chunks)
                ]
            )
            return distances, per_pair
        return distances

    def insert_edge(self, u: int, v: int) -> int:
        """Insert an edge over the wire; returns the affected-landmark count.

        Never auto-retried on connection loss (the update may already
        have applied); the caller decides how to recover.
        """
        frame = self._request(
            Op.INSERT_EDGE, wire.encode_pair(u, v), idempotent=False
        )
        return wire.decode_u64(frame.payload)

    def delete_edge(self, u: int, v: int) -> int:
        """Delete an edge over the wire; same contract as :meth:`insert_edge`."""
        frame = self._request(
            Op.DELETE_EDGE, wire.encode_pair(u, v), idempotent=False
        )
        return wire.decode_u64(frame.payload)

    def stats(self) -> Dict:
        """The server's :meth:`~repro.serving.net.server.NetServer.stats`."""
        frame = self._request(Op.STATS, b"")
        return json.loads(frame.payload.decode("utf-8"))

    def health(self) -> Dict:
        """Liveness probe: generation, ingress occupancy, uptime."""
        frame = self._request(Op.HEALTH, b"")
        return json.loads(frame.payload.decode("utf-8"))


class AsyncNetClient(_ClientBase):
    """Asyncio client: many coroutines, one pipelined connection.

    A background reader task demultiplexes responses to per-request
    futures, so concurrent ``await client.query(...)`` calls from any
    number of tasks share the connection without head-of-line blocking
    on each other's round trips. The surface mirrors
    :class:`NetClient` (``query`` / ``query_many`` / ``insert_edge`` /
    ``delete_edge`` / ``stats`` / ``health``), ``await``-ed.
    """

    def __init__(self, host: str, port: int, **options) -> None:
        super().__init__(host, port, **options)
        self._reader = None
        self._writer = None
        self._reader_task = None
        self._pending: Dict[int, "object"] = {}

    async def connect(self) -> "AsyncNetClient":
        """Dial the server (with backoff); idempotent if connected."""
        import asyncio

        if self._writer is not None:
            return self
        delays = self._backoff_delays()
        for attempt in range(self.connect_attempts):
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            except OSError:
                if attempt >= len(delays):
                    raise
                await asyncio.sleep(delays[attempt])
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        """Tear down the connection and the reader task."""
        import asyncio
        import contextlib

        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader_task
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()
            self._writer = None
            self._reader = None
        self._fail_pending(ConnectionResetError("client closed"))

    async def __aenter__(self) -> "AsyncNetClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        import asyncio

        decoder = FrameDecoder(self.max_frame_bytes)
        try:
            while True:
                data = await self._reader.read(_RECV_BYTES)
                if not data:
                    raise ConnectionResetError("server closed the connection")
                for frame in decoder.feed(data):
                    future = self._pending.pop(frame.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - fanned out to waiters
            self._fail_pending(exc)

    async def _roundtrip(
        self, op: int, payload: bytes, min_generation: Optional[int]
    ) -> Frame:
        import asyncio

        await self.connect()
        request_id = self._take_id()
        generation = (
            self.min_generation if min_generation is None else min_generation
        )
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            wire.encode_frame(op, request_id, generation, payload)
        )
        await self._writer.drain()
        self.sent += 1
        frame = await asyncio.wait_for(future, self.timeout)
        self._note_response(frame)
        return frame

    async def _request(
        self,
        op: int,
        payload: bytes,
        *,
        min_generation: Optional[int] = None,
        idempotent: bool = True,
    ) -> Frame:
        import asyncio

        overloads = 0
        delays = self._backoff_delays()
        dial_attempt = 0
        while True:
            try:
                frame = await self._roundtrip(op, payload, min_generation)
            except (OSError, EOFError, ConnectionError):
                await self.close()
                self.reconnects += 1
                if not idempotent or dial_attempt >= len(delays):
                    raise
                await asyncio.sleep(delays[dial_attempt])
                dial_attempt += 1
                continue
            try:
                return wire.raise_for_frame(frame)
            except OverloadedError as exc:
                overloads += 1
                self.overload_retries += 1
                if overloads > self.max_overload_retries:
                    raise
                await asyncio.sleep(exc.retry_after or self.backoff_base)

    async def query(
        self, s: int, t: int, *, min_generation: Optional[int] = None
    ) -> float:
        """One exact distance over the wire (``Op.QUERY``)."""
        frame = await self._request(
            Op.QUERY, wire.encode_pair(s, t), min_generation=min_generation
        )
        return wire.decode_f64(frame.payload)

    async def query_many(
        self,
        pairs,
        *,
        batch_size: int = 4096,
        min_generation: Optional[int] = None,
    ) -> np.ndarray:
        """Bulk exact distances; chunks pipeline concurrently."""
        import asyncio

        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if len(pairs) == 0:
            return np.empty(0, dtype=float)
        chunks = [
            pairs[lo : lo + batch_size]
            for lo in range(0, len(pairs), batch_size)
        ]
        frames = await asyncio.gather(
            *(
                self._request(
                    Op.BATCH,
                    wire.encode_pairs(chunk),
                    min_generation=min_generation,
                )
                for chunk in chunks
            )
        )
        return np.concatenate(
            [wire.decode_distances(f.payload) for f in frames]
        )

    async def insert_edge(self, u: int, v: int) -> int:
        """Insert an edge over the wire (never auto-retried)."""
        frame = await self._request(
            Op.INSERT_EDGE, wire.encode_pair(u, v), idempotent=False
        )
        return wire.decode_u64(frame.payload)

    async def delete_edge(self, u: int, v: int) -> int:
        """Delete an edge over the wire (never auto-retried)."""
        frame = await self._request(
            Op.DELETE_EDGE, wire.encode_pair(u, v), idempotent=False
        )
        return wire.decode_u64(frame.payload)

    async def stats(self) -> Dict:
        """The server's stats dict, fetched over the wire."""
        frame = await self._request(Op.STATS, b"")
        return json.loads(frame.payload.decode("utf-8"))

    async def health(self) -> Dict:
        """Liveness probe: generation, ingress occupancy, uptime."""
        frame = await self._request(Op.HEALTH, b"")
        return json.loads(frame.payload.decode("utf-8"))
