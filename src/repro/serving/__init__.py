"""``repro.serving`` — the multi-graph, thread-safe serving facade.

:class:`DistanceService` hosts named graphs behind the capability-based
oracle API, coalescing concurrent point queries into vectorized
micro-batches and serializing dynamic updates against readers. See
:mod:`repro.serving.service` for the design notes and
``benchmarks/bench_serving.py`` for the recorded throughput evidence.
"""

from repro.serving.service import DistanceService

__all__ = ["DistanceService"]
