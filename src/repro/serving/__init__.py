"""``repro.serving`` — the thread- and process-level serving tiers.

Two cooperating layers (see ``docs/serving.md`` for the full design):

* :class:`DistanceService` — the in-process, multi-graph facade:
  coalesces concurrent point queries into vectorized micro-batches and
  serializes dynamic updates against readers. See
  :mod:`repro.serving.service` and ``benchmarks/bench_serving.py``.
* :class:`ShardedDistanceService` — the multi-process tier: N worker
  processes map one immutable v2 snapshot zero-copy (shared page
  cache), point queries are cached (:class:`QueryCache`) and
  hash-routed, bulk batches scatter/gather in order, and dynamic
  updates broadcast to every worker. See :mod:`repro.serving.sharded`
  and ``benchmarks/bench_sharding.py``.

Both tiers execute their batches through :class:`QueryExecutor`
(:mod:`repro.serving.executor`) — a reusable thread pool that splits
``query_many`` batches into chunks when the active kernel releases the
GIL, composing N processes × M threads. See
``benchmarks/bench_serving.py --thread-scaling``.
"""

from repro.serving.cache import QueryCache
from repro.serving.executor import QueryExecutor, resolve_threads
from repro.serving.service import DistanceService
from repro.serving.sharded import ShardedDistanceService

__all__ = [
    "DistanceService",
    "QueryCache",
    "QueryExecutor",
    "ShardedDistanceService",
    "resolve_threads",
]
