"""The serving facade: many graphs, many threads, one ``DistanceService``.

The ROADMAP's north star is serving heavy interactive traffic, and the
paper's own pitch is exact distances "in the order of milliseconds" on
billion-edge networks. This module supplies the missing serving layer on
top of the capability-based oracle API (:mod:`repro.api`):

* **Registry.** One service hosts any number of named graphs, each
  backed by any :class:`~repro.api.DistanceOracle`; oracles are
  registered pre-built or opened declaratively through
  :func:`repro.api.open_oracle`.
* **Micro-batch coalescing.** Point queries from concurrent threads
  (blocking :meth:`~DistanceService.query`, or pipelined
  :meth:`~DistanceService.query_async` returning a future) are enqueued
  and answered by a per-graph batch worker that drains the queue into
  one vectorized
  :meth:`~repro.core.query.HighwayCoverOracle.query_many` call — a
  time/size-bounded micro-batch (``max_batch`` / ``max_wait_ms``; the
  window is pinned to the *oldest waiting query's* enqueue time, so a
  stream of stragglers can never stretch a batch past one window). One
  interpreter-level call per *batch* instead of per query is where the
  throughput multiple over a per-query lock comes from
  (``benchmarks/bench_serving.py`` records it); answers are
  byte-identical to calling ``oracle.query`` sequentially because
  ``query_many`` is (asserted by the batch-engine suite).
* **Thread-parallel execution.** Each entry drains its micro-batches
  (and bulk :meth:`~DistanceService.query_many` calls) through a
  :class:`~repro.serving.QueryExecutor`: when the hosted oracle's
  kernel releases the GIL (``cext`` / ``numba``), the batch splits
  into chunks answered on a pool of ``threads`` worker threads —
  byte-identical, reassembled in order. ``threads=None`` auto-sizes
  the pool (``REPRO_THREADS``, else one thread per CPU iff the kernel
  releases the GIL, else sequential); GIL-bound backends and hosted
  composites (the sharded service, whose parallelism already lives in
  worker processes) fall back to sequential execution gracefully.
* **Update serialization.** Dynamic edge updates
  (:data:`~repro.api.Capability.DYNAMIC`) never overlap query
  execution: a seqlock-style version counter guards each entry — the
  version is bumped to *odd* while a writer mutates and back to *even*
  when the swap completes, writers wait for in-flight batches to drain
  (and take priority over new ones), and queries enqueued meanwhile are
  answered after the swap against the updated index. ``version(name)``
  exposes the counter, so external observers can detect and retry
  around in-progress updates.
* **Observability.** :meth:`DistanceService.stats` reports per-graph
  QPS, batch count and occupancy (mean queries coalesced per batch),
  and p50/p99 query latency over a sliding window.

Example::

    from repro.serving import DistanceService

    with DistanceService() as service:
        service.open("social", graph, num_landmarks=20)
        d = service.query("social", 3, 250)     # thread-safe, coalesced
        print(service.stats("social")["qps"])
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Dict, List, Optional

import numpy as np

from repro.api.protocol import Capability, capabilities_of
from repro.errors import (
    CapabilityError,
    ReproError,
    ServiceClosedError,
    VertexError,
)

__all__ = ["DistanceService"]

#: Sliding-window size for per-query latency percentiles.
_LATENCY_WINDOW = 8192


class _Pending:
    """One enqueued point query waiting for its micro-batch."""

    __slots__ = ("s", "t", "future", "enqueued_at")

    def __init__(self, s: int, t: int) -> None:
        self.s = s
        self.t = t
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


class _Entry:
    """One hosted graph: oracle, queue, worker, executor, seqlock state."""

    def __init__(
        self,
        name: str,
        oracle,
        max_batch: int,
        max_wait_s: float,
        threads: Optional[int] = None,
    ) -> None:
        from repro.serving.executor import QueryExecutor

        self.name = name
        self.oracle = oracle
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        #: Thread-parallel chunk executor for this entry's batches; a
        #: 1-thread pool degenerates to inline sequential execution.
        self.executor = QueryExecutor.for_oracle(oracle, threads=threads)
        #: True when the service constructed the oracle itself (via
        #: ``open``) and therefore owns its lifecycle.
        self.owns_oracle = False
        self.lock = threading.Lock()
        self.has_work = threading.Condition(self.lock)
        self.gate = threading.Condition(self.lock)
        self.queue: deque = deque()
        self.closed = False
        # Seqlock-style version: even = stable, odd = update in progress.
        self.version = 0
        self.writers_waiting = 0
        self.active_readers = 0
        self.update_lock = threading.Lock()  # one writer at a time
        # Counters (guarded by self.lock).
        self.queries_total = 0
        self.bulk_queries_total = 0
        self.batches_total = 0
        self.updates_total = 0
        self.batch_size_sum = 0
        self.max_batch_seen = 0
        self.latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        self.started_at = time.perf_counter()
        self.worker = threading.Thread(
            target=self._worker_loop, name=f"distsvc-{name}", daemon=True
        )
        self.worker.start()

    # -- Reader/writer gate (the seqlock) -----------------------------------

    def _begin_read(self) -> None:
        """Block while an update is pending or applying, then pin a reader."""
        with self.lock:
            while self.writers_waiting or self.version % 2:
                self.gate.wait()
            self.active_readers += 1

    def _end_read(self) -> None:
        with self.lock:
            self.active_readers -= 1
            if self.active_readers == 0:
                self.gate.notify_all()

    # -- Micro-batch worker --------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._execute_batch(batch)

    def _collect_batch(self) -> Optional[List[_Pending]]:
        """Wait for work, hold the coalescing window, drain one batch."""
        with self.lock:
            while not self.queue and not self.closed:
                self.has_work.wait()
            if self.closed and not self.queue:
                return None
            # Coalescing window: a lone query lingers briefly so that
            # concurrent arrivals share its batch; a queue that already
            # has company is drained immediately. The deadline is pinned
            # to the *oldest waiting query's* enqueue time — never
            # recomputed from "now" on a wakeup — so (a) a stream of
            # stragglers cannot stretch the batch past one max_wait_s
            # window, and (b) a query that already waited out its window
            # while the worker drained the previous batch executes
            # immediately instead of paying a second window.
            if len(self.queue) < 2 and self.max_wait_s > 0 and not self.closed:
                deadline = self.queue[0].enqueued_at + self.max_wait_s
                while len(self.queue) < self.max_batch and not self.closed:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self.has_work.wait(remaining)
            batch = []
            while self.queue and len(batch) < self.max_batch:
                batch.append(self.queue.popleft())
            return batch

    def _execute_batch(self, batch: List[_Pending]) -> None:
        # Mark every future running (a running future cannot be
        # cancelled, so the set_result below cannot raise); a client
        # that cancelled while queued is dropped here instead of
        # killing the worker thread.
        batch = [p for p in batch if p.future.set_running_or_notify_cancel()]
        if not batch:
            return
        self._begin_read()
        try:
            try:
                pairs = np.empty((len(batch), 2), dtype=np.int64)
                for i, pending in enumerate(batch):
                    pairs[i, 0] = pending.s
                    pairs[i, 1] = pending.t
                distances = self.executor.run(self.oracle.query_many, pairs)
                outcomes = [
                    (pending, float(value), None)
                    for pending, value in zip(batch, distances)
                ]
            except BaseException:
                # One bad pair must not poison its batch-mates: fall
                # back to per-query answers so only the offending
                # caller sees the exception.
                outcomes = []
                for pending in batch:
                    try:
                        outcomes.append(
                            (pending, float(self.oracle.query(pending.s, pending.t)), None)
                        )
                    except BaseException as exc:
                        outcomes.append((pending, None, exc))
        finally:
            self._end_read()
        done = time.perf_counter()
        with self.lock:
            self.queries_total += len(batch)
            self.batches_total += 1
            self.batch_size_sum += len(batch)
            self.max_batch_seen = max(self.max_batch_seen, len(batch))
            for pending in batch:
                self.latencies.append(done - pending.enqueued_at)
        for pending, value, error in outcomes:
            if error is not None:
                pending.future.set_exception(error)
            else:
                pending.future.set_result(value)

    # -- Shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Drain the worker, then fail anything still queued."""
        with self.lock:
            self.closed = True
            self.has_work.notify_all()
        self.worker.join()
        self.executor.close()
        # The worker drained what it could; fail anything still queued.
        with self.lock:
            leftovers = list(self.queue)
            self.queue.clear()
        for pending in leftovers:  # pragma: no cover - shutdown race
            if pending.future.set_running_or_notify_cancel():
                pending.future.set_exception(
                    ServiceClosedError(f"graph {self.name!r}: service closed")
                )


class DistanceService:
    """Thread-safe facade serving exact distance queries on hosted graphs.

    Args:
        max_batch: upper bound on queries coalesced into one
            ``query_many`` micro-batch.
        max_wait_ms: how long a lone query lingers for company before its
            batch executes anyway (the latency cost of coalescing; 0
            disables the window, degenerating to one batch per query
            under sequential load). The window is measured from the
            oldest waiting query's enqueue time.
        threads: executor thread count per hosted graph — each entry's
            micro-batches and bulk ``query_many`` calls run through a
            :class:`~repro.serving.QueryExecutor` of this size. ``None``
            auto-sizes: ``REPRO_THREADS`` if set, else one thread per
            CPU when the entry's kernel releases the GIL, else 1
            (sequential; GIL-bound backends and process-sharded
            composites gain nothing from more threads here).

    Thread safety: every public method may be called from any thread.
    Point queries block until their micro-batch is answered; dynamic
    updates block until the swap completes and are serialized against
    query execution (see the module docstring).
    """

    def __init__(
        self,
        max_batch: int = 512,
        max_wait_ms: float = 2.0,
        threads: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if threads is not None and threads < 1:
            raise ValueError("threads must be at least 1 (or None for auto)")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self.threads = threads
        self._entries: Dict[str, _Entry] = {}
        self._registry_lock = threading.Lock()
        self._closed = False

    # -- Registry -------------------------------------------------------------

    def register(self, name: str, oracle) -> None:
        """Host a pre-built oracle under ``name``.

        The oracle must advertise :data:`~repro.api.Capability.BATCH`
        (every oracle in this library does — the baselines through the
        ``BatchFallback`` layer).
        """
        if getattr(oracle, "graph", None) is None:
            raise ReproError(
                f"graph {name!r}: register a *built* oracle (call build first)"
            )
        if Capability.BATCH not in capabilities_of(oracle):
            raise CapabilityError(
                f"graph {name!r}: oracle {oracle!r} does not advertise "
                f"Capability.BATCH, which serving requires"
            )
        with self._registry_lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if name in self._entries:
                raise ReproError(f"graph {name!r} is already registered")
            self._entries[name] = _Entry(
                name, oracle, self.max_batch, self.max_wait_s, self.threads
            )

    def open(self, name: str, source, **open_options) -> None:
        """Open an oracle via :func:`repro.api.open_oracle` and host it.

        Oracles opened this way are service-owned: :meth:`close` also
        closes them (which shuts down worker processes when the entry is
        backed by a :class:`~repro.serving.ShardedDistanceService`,
        e.g. ``service.open(name, graph, shards=4)``). Pre-built oracles
        hosted via :meth:`register` stay caller-owned.
        """
        from repro.api.factory import open_oracle

        oracle = open_oracle(source, **open_options)
        try:
            self.register(name, oracle)
        except BaseException:
            # The freshly opened oracle has no owner yet — close it
            # here or its resources (sharded worker processes, snapshot
            # spools) would leak on a duplicate name / closed service.
            oracle_close = getattr(oracle, "close", None)
            if callable(oracle_close):
                oracle_close()
            raise
        with self._registry_lock:
            self._entries[name].owns_oracle = True

    def names(self) -> List[str]:
        """Hosted graph names, sorted."""
        with self._registry_lock:
            return sorted(self._entries)

    def oracle(self, name: str):
        """The hosted oracle (for capability introspection; not for
        mutating behind the service's back)."""
        return self._entry(name).oracle

    def _entry(self, name: str) -> _Entry:
        with self._registry_lock:
            try:
                return self._entries[name]
            except KeyError:
                raise ReproError(
                    f"unknown graph {name!r}; hosted: {sorted(self._entries)}"
                ) from None

    # -- Queries --------------------------------------------------------------

    def query(self, name: str, s: int, t: int) -> float:
        """Exact distance on graph ``name`` — blocking, coalesced.

        Identical to ``oracle.query(s, t)``; under concurrency the call
        is answered as part of a vectorized micro-batch.
        """
        return self.query_async(name, s, t).result()

    def query_async(self, name: str, s: int, t: int) -> Future:
        """Enqueue a point query; returns a ``concurrent.futures.Future``.

        The pipelined form of :meth:`query`: a frontend thread
        multiplexing many clients submits a window of queries before
        collecting results, which lets the micro-batcher coalesce far
        beyond one query per thread — where the big throughput
        multiplier comes from (``benchmarks/bench_serving.py``). The
        future resolves to the exact distance, or raises whatever the
        underlying oracle raised for this query.
        """
        entry = self._entry(name)
        s, t = int(s), int(t)
        # Fail malformed queries in the caller's thread, before they
        # can join (and thereby delay) anyone else's micro-batch.
        num_vertices = entry.oracle.graph.num_vertices
        for vertex in (s, t):
            if not 0 <= vertex < num_vertices:
                raise VertexError(vertex, num_vertices)
        pending = _Pending(s, t)
        with entry.lock:
            if entry.closed:
                raise ServiceClosedError(f"graph {name!r}: service closed")
            entry.queue.append(pending)
            entry.has_work.notify()
        return pending.future

    def query_many(self, name: str, pairs) -> np.ndarray:
        """Bulk exact distances — bypasses coalescing, still update-safe.

        Bulk queries count toward ``stats()``'s ``queries``/``qps`` (and
        the separate ``bulk_queries`` counter) but not toward the
        micro-batch occupancy or latency percentiles, which describe
        the coalescing path only.
        """
        entry = self._entry(name)
        entry._begin_read()
        try:
            distances = np.asarray(
                entry.executor.run(entry.oracle.query_many, pairs), dtype=float
            )
        finally:
            entry._end_read()
        with entry.lock:
            entry.queries_total += len(distances)
            entry.bulk_queries_total += len(distances)
        return distances

    # -- Dynamic updates -------------------------------------------------------

    def insert_edge(self, name: str, u: int, v: int):
        """Insert an edge on graph ``name`` (requires ``Capability.DYNAMIC``)."""
        return self._update(name, "insert_edge", u, v)

    def delete_edge(self, name: str, u: int, v: int):
        """Delete an edge on graph ``name`` (requires ``Capability.DYNAMIC``)."""
        return self._update(name, "delete_edge", u, v)

    def _update(self, name: str, op: str, u: int, v: int):
        entry = self._entry(name)
        if Capability.DYNAMIC not in capabilities_of(entry.oracle):
            raise CapabilityError(
                f"graph {name!r}: oracle {entry.oracle!r} does not advertise "
                f"Capability.DYNAMIC; open it with dynamic=True"
            )
        with entry.update_lock:  # one writer at a time
            with entry.lock:
                entry.writers_waiting += 1
                while entry.active_readers:
                    entry.gate.wait()
                entry.version += 1  # odd: update in progress
            try:
                # Queries keep *enqueueing* during the repair; none
                # executes until the version goes even again.
                result = getattr(entry.oracle, op)(int(u), int(v))
            finally:
                with entry.lock:
                    entry.version += 1  # even: swap published
                    entry.writers_waiting -= 1
                    entry.updates_total += 1
                    entry.gate.notify_all()
        return result

    def version(self, name: str) -> int:
        """The entry's seqlock version (odd while an update is applying)."""
        entry = self._entry(name)
        with entry.lock:
            return entry.version

    # -- Snapshots -------------------------------------------------------------

    def save(self, name: str, path, version: int = 2) -> int:
        """Persist graph ``name``'s index (requires ``Capability.SNAPSHOT``).

        Runs under the reader gate, so the snapshot never interleaves
        with a dynamic update.
        """
        entry = self._entry(name)
        if Capability.SNAPSHOT not in capabilities_of(entry.oracle):
            raise CapabilityError(
                f"graph {name!r}: oracle {entry.oracle!r} does not advertise "
                f"Capability.SNAPSHOT"
            )
        entry._begin_read()
        try:
            return entry.oracle.save(path, version=version)
        finally:
            entry._end_read()

    # -- Observability ---------------------------------------------------------

    def stats(self, name: Optional[str] = None) -> Dict:
        """Serving statistics — per graph, or keyed by name when ``None``.

        Keys: ``queries`` / ``bulk_queries`` / ``batches`` / ``updates``
        (counts; ``queries`` includes the bulk path), ``qps`` (queries
        per second since registration), ``batch_occupancy`` (mean
        queries per micro-batch — >1 means coalescing is live),
        ``max_batch`` (largest batch seen), ``p50_ms`` / ``p99_ms``
        (coalesced-query latency percentiles over a sliding window),
        ``version``, ``kernel`` (the oracle's requested query kernel
        name, or ``None`` when it auto-detects / has no kernel seam),
        and ``executor`` (the entry's
        :meth:`~repro.serving.QueryExecutor.stats` dict: pool size,
        parallel/sequential batch counts, per-thread utilization).
        """
        if name is None:
            return {n: self.stats(n) for n in self.names()}
        entry = self._entry(name)
        with entry.lock:
            elapsed = max(time.perf_counter() - entry.started_at, 1e-9)
            latencies = np.array(entry.latencies, dtype=float)
            occupancy = (
                entry.batch_size_sum / entry.batches_total
                if entry.batches_total
                else 0.0
            )
            return {
                "queries": entry.queries_total,
                "bulk_queries": entry.bulk_queries_total,
                "batches": entry.batches_total,
                "updates": entry.updates_total,
                "qps": entry.queries_total / elapsed,
                "batch_occupancy": occupancy,
                "max_batch": entry.max_batch_seen,
                "p50_ms": float(np.percentile(latencies, 50) * 1e3)
                if latencies.size
                else 0.0,
                "p99_ms": float(np.percentile(latencies, 99) * 1e3)
                if latencies.size
                else 0.0,
                "version": entry.version,
                "kernel": getattr(entry.oracle, "kernel", None),
                "executor": entry.executor.stats(),
            }

    # -- Lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop all batch workers; idempotent.

        Oracles the service opened itself (:meth:`open`) are closed
        too, releasing any resources they hold (sharded worker
        processes, snapshot spools); oracles hosted via
        :meth:`register` belong to the caller and are left running.
        """
        with self._registry_lock:
            self._closed = True
            entries = list(self._entries.values())
        for entry in entries:
            entry.close()
        for entry in entries:
            oracle_close = getattr(entry.oracle, "close", None)
            if entry.owns_oracle and callable(oracle_close):
                oracle_close()

    def __enter__(self) -> "DistanceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
