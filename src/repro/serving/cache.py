"""A bounded, version-invalidated LRU cache for point distance queries.

Production distance workloads are heavily skewed — a small set of hot
``(u, v)`` pairs (celebrity vertices, trending content) dominates the
query stream — so an in-front cache answers a large share of traffic
without touching any shard worker. :class:`QueryCache` is the layer
:class:`~repro.serving.ShardedDistanceService` consults before routing:

* **Bounded LRU.** At most ``capacity`` entries; a hit refreshes the
  entry's recency, an insert beyond capacity evicts the least recently
  used pair.
* **Normalized keys.** The graphs are undirected and distances exact,
  hence symmetric: ``(u, v)`` and ``(v, u)`` share one entry.
* **Writer-version invalidation.** The cache carries the writer's
  version counter. ``invalidate()`` (called after every
  ``insert_edge`` / ``delete_edge`` broadcast completes) bumps the
  version and drops every entry, and :meth:`put` *rejects* values
  stamped with a stale version — a query dispatched before an update
  but completing after it can never re-plant a pre-update distance.
* **Thread safety.** All methods take one internal lock; callers never
  need external synchronization.

Example:
    >>> cache = QueryCache(capacity=2)
    >>> cache.put(3, 5, 2.0, cache.version)
    True
    >>> cache.get(5, 3)
    2.0
    >>> cache.invalidate()
    >>> cache.get(3, 5) is None
    True
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["QueryCache"]


class QueryCache:
    """Bounded LRU over ``(u, v) -> distance`` with version invalidation.

    Args:
        capacity: maximum number of cached pairs; at least 1. A capacity
            of 0 is allowed and disables caching (every ``get`` misses,
            every ``put`` is dropped) without callers having to branch.

    Raises:
        ValueError: if ``capacity`` is negative.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        self._lock = threading.Lock()
        self._version = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._stale_rejects = 0

    @staticmethod
    def _key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u <= v else (v, u)

    @property
    def version(self) -> int:
        """The current writer version; stamp :meth:`put` calls with it."""
        with self._lock:
            return self._version

    def get(self, u: int, v: int) -> Optional[float]:
        """The cached distance for the pair, or ``None`` on a miss.

        A hit refreshes the entry's LRU recency.
        """
        key = self._key(int(u), int(v))
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, u: int, v: int, distance: float, version: int) -> bool:
        """Insert a distance computed under writer version ``version``.

        Returns:
            ``True`` if the entry was stored; ``False`` if it was
            rejected because ``version`` is stale (an update completed
            between dispatch and completion) or the cache is disabled
            (``capacity == 0``). Rejection is the correctness mechanism:
            a stale put must never resurrect a pre-update distance.
        """
        if self.capacity == 0:
            return False
        key = self._key(int(u), int(v))
        with self._lock:
            if version != self._version:
                self._stale_rejects += 1
                return False
            self._entries[key] = float(distance)
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    def invalidate(self) -> None:
        """Drop every entry and bump the version (writer-side hook).

        Called by the sharded service after an ``insert_edge`` /
        ``delete_edge`` broadcast has been acknowledged by every worker;
        from that point on, puts stamped with the old version are
        rejected and all reads repopulate against the updated index.
        """
        with self._lock:
            self._entries.clear()
            self._version += 1
            self._invalidations += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def items(self) -> Dict[Tuple[int, int], float]:
        """A snapshot copy of the current entries (for audits and tests)."""
        with self._lock:
            return dict(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counters: hits, misses, evictions, invalidations, stale_rejects,
        size, capacity, version."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "stale_rejects": self._stale_rejects,
                "size": len(self._entries),
                "capacity": self.capacity,
                "version": self._version,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryCache(size={len(self)}, capacity={self.capacity}, "
            f"version={self._version})"
        )
