"""Multi-process sharded serving: N workers, one zero-copy snapshot.

:class:`~repro.serving.DistanceService` coalesces concurrent threads
into vectorized micro-batches, but Python's GIL caps one process at a
single core of label-scan throughput per graph. This module is the
horizontal step: :class:`ShardedDistanceService` spawns ``shards``
worker *processes*, every one of which opens the **same immutable v2
snapshot** with ``np.memmap`` — PR 3's 64-byte-aligned format makes
that a zero-copy operation, so N workers share one page-cache copy of
the label arrays instead of holding N RAM copies.

Request flow
------------

* **Point queries** (:meth:`~ShardedDistanceService.query`, pipelined
  :meth:`~ShardedDistanceService.query_async`) first consult the
  in-front :class:`~repro.serving.cache.QueryCache`; misses are
  **hash-routed** by the normalized ``(source, target)`` pair to a
  fixed worker, so a hot pair always lands on the same warm shard. Each
  shard's dispatcher thread drains its pending queries into one
  ``query_many`` task per round trip — the IPC latency itself is the
  coalescing window.
* **Bulk queries** (:meth:`~ShardedDistanceService.query_many`) are
  split into per-worker sub-batches, answered in parallel, and
  reassembled in submission order — byte-identical to the
  single-process path because ``query_many`` is row-independent and
  every worker's snapshot-restored oracle is byte-identical to the
  builder's (pinned by the serialization suite).
* **Dynamic updates** (:meth:`~ShardedDistanceService.insert_edge` /
  :meth:`~ShardedDistanceService.delete_edge`) are applied by the
  parent's writer oracle (the O(affected) dynamic repair), then
  **broadcast to every worker** and acknowledged before the call
  returns. Two propagation modes:

  - ``update_mode="remap"`` (default): the writer publishes a fresh
    snapshot generation through
    :class:`~repro.core.serialization.SnapshotSpool` and workers
    re-map it zero-copy — workers stay memory-constant and never
    repeat the repair work.
  - ``update_mode="repair"``: workers hold dynamic (in-RAM) oracles
    and re-run the O(affected) repair locally — no snapshot I/O, at
    the cost of N repeated repairs and N RAM copies.

  Either way the writer version counter is bumped and the
  :class:`QueryCache` invalidated only after every worker acknowledged,
  so a post-update read can never observe a pre-update distance.

The service satisfies the capability protocol (``query`` /
``query_many`` / ``insert_edge`` / ``delete_edge`` / ``save`` /
``shortest_path`` / ``size_bytes`` / ``capabilities``), so it slots
anywhere an oracle does — including behind a thread-coalescing
:class:`~repro.serving.DistanceService` entry (``service.open(name,
graph, shards=4)``). Construct it through
:func:`repro.api.make_oracle` / :func:`repro.api.open_oracle` with
``shards=N``.

Example::

    from repro.api import open_oracle

    sharded = open_oracle(graph, index="index.hl", shards=4)
    sharded.query(3, 250)            # cached + hash-routed
    sharded.query_many(pairs)        # scattered over 4 processes
    sharded.insert_edge(17, 99)      # broadcast, re-mapped, cache flushed
    sharded.close()
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from collections import deque
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.api.protocol import Capability
from repro.errors import (
    ReproError,
    ServiceClosedError,
    ShardError,
    VertexError,
)
from repro.graphs.graph import Graph
from repro.serving.cache import QueryCache

__all__ = ["ShardedDistanceService", "route_of"]

#: Odd multiplier for the pair hash (Knuth-style); any odd constant
#: works, this one spreads consecutive vertex ids well.
_HASH_MULT = 0x9E3779B1


def route_of(s: int, t: int, shards: int) -> int:
    """The worker index the normalized pair ``(s, t)`` hash-routes to.

    Deterministic and symmetric (``route_of(s, t) == route_of(t, s)``),
    so a hot pair always lands on the same warm worker regardless of
    query direction.
    """
    u, v = (s, t) if s <= t else (t, s)
    return ((u * _HASH_MULT) ^ v) % shards


# -- Worker process ----------------------------------------------------------


def _worker_main(conn, graph: Graph, snapshot_path: str, use_mmap: bool,
                 dynamic: bool,
                 kernel: Optional[str] = None,
                 threads: Optional[int] = None,
                 ) -> None:  # pragma: no cover - runs in child
    """Entry point of one shard worker process.

    Opens the shared snapshot (zero-copy when ``use_mmap``), optionally
    promotes to the dynamic oracle (``update_mode="repair"``), selects
    the requested query kernel (``kernel`` travels as a name — backends
    hold unpicklable handles and resolve per process), builds the
    worker's :class:`~repro.serving.QueryExecutor` (``threads`` worker
    threads; ``None`` auto-sizes to the CPU count when the kernel
    releases the GIL — N processes × M threads compose), then answers
    request tuples from the parent until told to stop. Replies are
    ``("ok", payload)`` or ``("err", type_name, message)`` — never a
    pickled exception (library exceptions with multi-arg constructors
    do not survive pickling).

    (Excluded from coverage: the body executes in a forked/spawned
    child the parent's tracer cannot see; its behaviour is asserted
    end-to-end by ``tests/test_sharded.py``.)
    """
    from repro.core.serialization import load_oracle
    from repro.serving.executor import QueryExecutor

    try:
        oracle = load_oracle(graph, snapshot_path, mmap=use_mmap)
        if dynamic:
            from repro.api.factory import _promote_dynamic

            oracle = _promote_dynamic(oracle)
        if kernel is not None:
            oracle.set_kernel(kernel)
        executor = QueryExecutor.for_oracle(oracle, threads=threads)
    except BaseException as exc:  # noqa: BLE001 - forwarded to parent
        # Startup failed (unreadable snapshot, promotion error): answer
        # every request — the parent's fail-fast ping first — with the
        # real diagnostic instead of dying into an opaque EOFError that
        # only reaches the child's stderr.
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            if message[0] == "stop":
                conn.close()
                return
            conn.send(("err", type(exc).__name__, str(exc)))
    while True:
        try:
            message = conn.recv()
        except EOFError:  # parent died or closed the pipe
            return
        tag = message[0]
        if tag == "stop":
            executor.close()
            conn.close()
            return
        try:
            if tag == "query_many":
                conn.send(
                    ("ok",
                     np.asarray(executor.run(oracle.query_many, message[1])))
                )
            elif tag == "update":
                _, op, u, v, new_path = message
                if new_path is None:
                    # Repair mode: this worker's dynamic oracle redoes the
                    # O(affected) splice locally.
                    affected = getattr(oracle, op)(u, v)
                    conn.send(("ok", affected))
                else:
                    # Re-map mode: drop the old mapping, apply the edge
                    # update to the worker's graph, map the new generation.
                    mutate = (
                        "with_edges_added"
                        if op == "insert_edge"
                        else "with_edges_removed"
                    )
                    new_graph = getattr(oracle.graph, mutate)([(u, v)])
                    oracle = load_oracle(new_graph, new_path, mmap=use_mmap)
                    if kernel is not None:
                        oracle.set_kernel(kernel)
                    conn.send(("ok", None))
            elif tag == "ping":
                conn.send(("ok", {"pid": os.getpid()}))
            elif tag == "stats":
                conn.send(("ok", executor.stats()))
            else:  # pragma: no cover - protocol bug guard
                conn.send(("err", "ProtocolError", f"unknown tag {tag!r}"))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            conn.send(("err", type(exc).__name__, str(exc)))


# -- Parent-side shard handle ------------------------------------------------


class _PointItem:
    """One pending hash-routed point query."""

    __slots__ = ("s", "t", "future", "cache_version")

    def __init__(self, s: int, t: int, cache_version: int) -> None:
        self.s = s
        self.t = t
        self.future: Future = Future()
        self.cache_version = cache_version


class _TaskItem:
    """One pending bulk task (a ``query_many`` chunk or an update)."""

    __slots__ = ("payload", "future")

    def __init__(self, payload: tuple) -> None:
        self.payload = payload
        self.future: Future = Future()


class _Shard:
    """Parent-side handle: process, pipe, outbox, dispatcher thread.

    The dispatcher is the only thread that touches the pipe. It takes
    items off the outbox in FIFO order — a maximal run of point queries
    becomes one ``query_many`` round trip (micro-batching over IPC), a
    bulk task is sent alone — and resolves the items' futures from the
    reply. One request is in flight per shard at a time; queries that
    arrive while it executes accumulate and share the next batch.
    """

    def __init__(self, index: int, process, conn, max_batch: int,
                 on_point_done) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.max_batch = max_batch
        self.on_point_done = on_point_done
        self.lock = threading.Lock()
        self.has_work = threading.Condition(self.lock)
        self.outbox: deque = deque()
        self.closed = False
        self.dead = False
        self.batches = 0
        self.point_queries = 0
        self.dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"shard-{index}", daemon=True
        )
        self.dispatcher.start()

    def submit(self, item) -> Future:
        """Enqueue a point or task item for this shard; returns its future."""
        with self.lock:
            if self.closed:
                raise ServiceClosedError("sharded service is closed")
            if self.dead:
                raise ShardError(
                    f"shard {self.index}: worker died or is out of sync"
                )
            self.outbox.append(item)
            self.has_work.notify()
        return item.future

    def poison(self) -> None:
        """Mark this shard unusable (worker died or missed an update).

        Subsequent :meth:`submit` calls raise :class:`ShardError` —
        failing loudly is the guarantee that a shard which missed an
        update broadcast can never silently serve stale distances.
        """
        with self.lock:
            self.dead = True

    def _next_work(self):
        """Block for work; return a point-query list or a single task."""
        with self.lock:
            while not self.outbox and not self.closed:
                self.has_work.wait()
            if not self.outbox:
                return None
            if isinstance(self.outbox[0], _TaskItem):
                return self.outbox.popleft()
            points: List[_PointItem] = []
            while (
                self.outbox
                and isinstance(self.outbox[0], _PointItem)
                and len(points) < self.max_batch
            ):
                points.append(self.outbox.popleft())
            return points

    def _roundtrip(self, payload: tuple):
        """Send one request and wait for its reply (dispatcher only).

        Raises:
            ShardError: if the worker reported an error or its pipe
                closed (the shard is marked dead in that case).
        """
        try:
            self.conn.send(payload)
            reply = self.conn.recv()
        except (EOFError, OSError) as exc:
            with self.lock:
                self.dead = True
            raise ShardError(
                f"shard {self.index}: worker died ({exc!r})"
            ) from exc
        if reply[0] == "err":
            raise ShardError(
                f"shard {self.index} ({reply[1]}): {reply[2]}"
            )
        return reply[1]

    def _dispatch_loop(self) -> None:
        while True:
            work = self._next_work()
            if work is None:
                return
            if isinstance(work, _TaskItem):
                if not work.future.set_running_or_notify_cancel():
                    continue
                try:
                    work.future.set_result(self._roundtrip(work.payload))
                except BaseException as exc:  # noqa: BLE001
                    work.future.set_exception(exc)
                continue
            points = [
                p for p in work if p.future.set_running_or_notify_cancel()
            ]
            if not points:
                continue
            pairs = np.empty((len(points), 2), dtype=np.int64)
            for i, p in enumerate(points):
                pairs[i, 0] = p.s
                pairs[i, 1] = p.t
            try:
                distances = self._roundtrip(("query_many", pairs))
            except BaseException as exc:  # noqa: BLE001
                for p in points:
                    p.future.set_exception(exc)
                continue
            with self.lock:
                self.batches += 1
                self.point_queries += len(points)
            for p, value in zip(points, distances):
                self.on_point_done(p, float(value))

    def close(self) -> None:
        """Stop the dispatcher, tell the worker to exit, reap both."""
        with self.lock:
            self.closed = True
            self.has_work.notify_all()
        self.dispatcher.join()
        leftovers = []
        with self.lock:
            while self.outbox:
                item = self.outbox.popleft()
                leftovers.append(item)
        for item in leftovers:
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(
                    ServiceClosedError("sharded service is closed")
                )
        try:
            self.conn.send(("stop",))
        except (OSError, BrokenPipeError):  # pragma: no cover - worker gone
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=10)
        self.conn.close()


# -- The sharded service -----------------------------------------------------


class ShardedDistanceService:
    """Exact distance serving over N worker processes sharing one snapshot.

    Satisfies the :class:`~repro.api.DistanceOracle` protocol (plus the
    BATCH / DYNAMIC / SNAPSHOT / PATHS capability layers), so it can be
    hosted by :class:`~repro.serving.DistanceService` or used directly.
    Construct through :func:`repro.api.make_oracle` /
    :func:`repro.api.open_oracle` with ``shards=N``, or instantiate and
    :meth:`build` like any oracle.

    Args:
        shards: number of worker processes (>= 1).
        method: registered snapshot-capable method name built in the
            parent when no ``index`` is given (the HL family).
        index: optional existing snapshot to serve; workers map it
            directly. Without it, :meth:`build` constructs the index and
            publishes generation 0 into the spool.
        update_mode: ``"remap"`` (default — workers re-map a freshly
            published snapshot generation after each update, staying
            zero-copy) or ``"repair"`` (workers hold dynamic in-RAM
            oracles and repeat the O(affected) repair locally).
        mmap: workers map label arrays zero-copy (default) instead of
            reading them into RAM. Requires v2 snapshots (the default
            everywhere).
        cache_size: capacity of the in-front :class:`QueryCache`
            (0 disables caching).
        max_batch: cap on point queries coalesced into one worker round
            trip.
        start_method: multiprocessing start method; default prefers
            ``"fork"`` (cheap, copy-on-write graph) and falls back to
            the platform default.
        spool_dir: where snapshot generations are written; default is a
            private temporary directory removed on :meth:`close`.
        kernel: query kernel backend name (:mod:`repro.core.kernels`)
            every worker (and the parent's writer) selects; ``None``
            lets each process auto-detect. Travels as a name — backends
            are per-process singletons and never cross the pipe.
        threads: per-worker :class:`~repro.serving.QueryExecutor`
            thread count — every worker process answers its
            ``query_many`` chunks on a pool of this many threads, so N
            shards × M threads compose into N·M concurrent bounded
            searches when the kernel releases the GIL. ``None``
            auto-sizes per worker (``REPRO_THREADS``, else the CPU
            count iff the resolved kernel releases the GIL, else 1).
        wal: optional write-ahead-log path making the writer's updates
            crash-durable. Every ``insert_edge``/``delete_edge`` is
            logged (and fsynced, under the default policy) *before* the
            writer repairs; in ``remap`` mode the log is truncated as
            soon as the freshly published generation — written together
            with a ``gen-*.graph`` sidecar of the post-update graph —
            is durably on disk, so the log only ever holds the
            in-flight window. An existing log is replayed into the
            writer on :meth:`build` (restart = snapshot + replay)
            before generation 0 is published. In ``repair`` mode there
            is no per-update publish, so the log holds all churn since
            the last explicit :meth:`save`.
        wal_fsync: log durability policy (``"always"`` / ``"batch"`` /
            ``"never"``); see :data:`repro.core.wal.FSYNC_POLICIES`.
        **build_options: forwarded to the method factory when building
            (``num_landmarks=``, ``engine=``, ...).

    Raises:
        ValueError: on a non-positive shard count, unknown update mode,
            a method without snapshot support, or build options passed
            alongside an existing ``index`` (which never consults them).
    """

    name = "HL-sharded"
    CAPABILITIES = frozenset(
        {
            Capability.BATCH,
            Capability.DYNAMIC,
            Capability.SNAPSHOT,
            Capability.PATHS,
        }
    )

    def __init__(
        self,
        shards: int = 2,
        *,
        method: str = "hl",
        index=None,
        update_mode: str = "remap",
        mmap: bool = True,
        cache_size: int = 65536,
        max_batch: int = 1024,
        start_method: Optional[str] = None,
        spool_dir=None,
        kernel: Optional[str] = None,
        threads: Optional[int] = None,
        wal=None,
        wal_fsync: str = "always",
        **build_options,
    ) -> None:
        from repro.api.factory import resolve_method

        if shards < 1:
            raise ValueError("shards must be at least 1")
        if update_mode not in ("remap", "repair"):
            raise ValueError(
                f"unknown update_mode {update_mode!r}; use 'remap' or 'repair'"
            )
        spec = resolve_method(method)
        if Capability.SNAPSHOT not in spec.capabilities:
            raise ValueError(
                f"method {spec.name!r} has no snapshot format; sharded "
                f"serving requires one (the HL family)"
            )
        if index is not None and build_options:
            # Same contract as the single-process open_oracle path: a
            # restored snapshot never consults the method constructor,
            # so passing its options would be silently ignored.
            raise ValueError(
                f"constructor options {sorted(build_options)} are ignored "
                f"when serving index={str(index)!r}; drop them"
            )
        if kernel is not None:
            from repro.core.kernels import resolve_kernel

            # Fail fast in the parent; workers re-resolve by name.
            resolve_kernel(kernel)
        if threads is not None and threads < 1:
            raise ValueError("threads must be at least 1 (or None for auto)")
        self.shards = int(shards)
        self.method = spec.name
        self.update_mode = update_mode
        self.mmap = mmap
        self.kernel = kernel
        self.threads = threads
        self.max_batch = max_batch
        self.cache = QueryCache(cache_size)
        self._build_options = build_options
        self._index = None if index is None else Path(index)
        self._start_method = start_method
        self._spool_dir = spool_dir
        self._wal_path = None if wal is None else Path(wal)
        self._wal_fsync = wal_fsync
        self._wal = None
        self._writer = None  # parent-side oracle; dynamic after 1st update
        self._writer_dynamic = False
        self._snapshot_path: Optional[Path] = None
        self._spool = None
        self._workers: List[_Shard] = []
        self._update_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._version = 0
        self._updates_total = 0
        self._bulk_queries_total = 0

    # -- Lifecycle -----------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls, graph: Graph, index, *, shards: int = 2, **options
    ) -> "ShardedDistanceService":
        """Serve an existing snapshot from ``shards`` worker processes.

        Equivalent to ``ShardedDistanceService(shards, index=index,
        **options).build(graph)`` — every worker maps ``index``
        zero-copy, no construction happens.
        """
        return cls(shards, index=index, **options).build(graph)

    def build(self, graph: Graph) -> "ShardedDistanceService":
        """Build (or load) the index in the parent and spawn the workers.

        With ``index=`` the snapshot is served as-is (the parent keeps a
        zero-copy view for accounting and witness paths); otherwise the
        configured method builds the index here and generation 0 is
        published into the spool.

        With ``wal=``, an existing log is replayed into the writer
        first (crash recovery: ``graph``/``index`` must describe the
        state the log was started against), a fresh post-replay
        generation is published — so workers never map a pre-replay
        index — and the log is truncated once that generation is
        durable.

        Returns:
            ``self``, ready to query.

        Raises:
            ReproError: if already built/started.
        """
        from repro.core.serialization import SnapshotSpool, load_oracle

        if self._workers or self._closed:
            raise ReproError("sharded service is already started (or closed)")
        self._spool = SnapshotSpool(self._spool_dir)
        try:
            if self._index is not None:
                self._writer = load_oracle(graph, self._index, mmap=self.mmap)
                if self.kernel is not None:
                    self._writer.set_kernel(self.kernel)
                self._snapshot_path = self._index
            else:
                from repro.api.factory import make_oracle

                self._writer = make_oracle(
                    self.method, kernel=self.kernel, **self._build_options
                ).build(graph)
                self._snapshot_path = None
            if self._wal_path is not None:
                self._recover_from_wal()
            if self._snapshot_path is None:
                self._snapshot_path = self._spool.publish(
                    self._writer, graph=self._wal_path is not None
                )
                if self._wal is not None:
                    # Generation 0 durably contains every replayed
                    # record — the log may be cut.
                    self._wal.truncate()
            self._spawn_workers(self._writer.graph)
        except BaseException:
            # A failed build/spawn (bad snapshot, dead startup ping,
            # Pipe/Process error) must not leak the shards already
            # running or the spool directory.
            self.close()
            raise
        return self

    def _recover_from_wal(self) -> None:
        """Open the log, replay its churn into the writer, attach it.

        Replaying can change the writer's state, so the snapshot the
        workers map must be re-published afterwards:
        ``_snapshot_path`` is reset to force a post-replay publish
        (generation 0 of this incarnation) even when ``index=`` was
        given.
        """
        from repro.core.wal import WriteAheadLog, replay_into

        self._ensure_dynamic_writer()
        wal = WriteAheadLog(self._wal_path, fsync=self._wal_fsync)
        try:
            replayed = replay_into(self._writer, wal.records())
        except BaseException:
            wal.close()
            raise
        self._writer.attach_wal(wal)
        self._wal = wal
        if replayed:
            self._snapshot_path = None

    def _spawn_workers(self, graph: Graph) -> None:
        if self._start_method is not None:
            ctx = mp.get_context(self._start_method)
        elif "fork" in mp.get_all_start_methods():
            ctx = mp.get_context("fork")
        else:  # pragma: no cover - non-fork platforms
            ctx = mp.get_context()
        dynamic_workers = self.update_mode == "repair"
        for index in range(self.shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    graph,
                    str(self._snapshot_path),
                    self.mmap,
                    dynamic_workers,
                    self.kernel,
                    self.threads,
                ),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(
                _Shard(index, process, parent_conn, self.max_batch,
                       self._finish_point)
            )
        # Fail fast if a worker could not open the snapshot.
        for future in [
            shard.submit(_TaskItem(("ping",))) for shard in self._workers
        ]:
            future.result()

    def close(self) -> None:
        """Stop dispatchers, terminate workers, remove the spool; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self._workers:
            shard.close()
        if self._wal is not None:
            self._wal.close()
        if self._spool is not None:
            # force=True is safe here and only here: every worker that
            # mapped a spool generation has just been joined, so no
            # process holds a mapping the removal could orphan. Any
            # other close order must retire generations first (the
            # spool refuses otherwise).
            self._spool.close(force=True)

    def __enter__(self) -> "ShardedDistanceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- Oracle surface ------------------------------------------------------

    @property
    def graph(self) -> Optional[Graph]:
        """The current graph (tracks dynamic updates); ``None`` before build."""
        return None if self._writer is None else self._writer.graph

    def capabilities(self) -> frozenset:
        """BATCH, DYNAMIC, SNAPSHOT and PATHS — the full layer stack."""
        return self.CAPABILITIES

    def query(self, s: int, t: int) -> float:
        """One exact distance: cache, then the hash-routed worker.

        Byte-identical to single-process ``oracle.query`` (the worker
        answers through the same batch engine the thread-coalescing
        service uses).
        """
        return self.query_async(s, t).result()

    def query_async(self, s: int, t: int) -> Future:
        """Pipelined point query; the future resolves to the distance.

        A cache hit resolves immediately; a miss is hash-routed by the
        normalized pair and coalesced with other in-flight queries on
        that shard. Malformed vertex ids raise here, in the caller's
        thread.

        Raises:
            VertexError: if either endpoint is out of range.
            ServiceClosedError: after :meth:`close`.
        """
        self._require_started()
        s, t = int(s), int(t)
        n = self.graph.num_vertices
        for vertex in (s, t):
            if not 0 <= vertex < n:
                raise VertexError(vertex, n)
        cached = self.cache.get(s, t)
        future: Future = Future()
        if cached is not None:
            future.set_result(cached)
            return future
        item = _PointItem(s, t, self.cache.version)
        shard = self._workers[route_of(s, t, self.shards)]
        shard.submit(item)
        return item.future

    def _finish_point(self, item: _PointItem, value: float) -> None:
        """Dispatcher callback: populate the cache, resolve the future.

        The put is stamped with the cache version read at dispatch time,
        so an answer computed against a pre-update index can never land
        in a post-update cache.
        """
        self.cache.put(item.s, item.t, value, item.cache_version)
        item.future.set_result(value)

    def query_many(self, pairs) -> np.ndarray:
        """Bulk exact distances, scattered over the workers.

        The batch is validated once, split into ``shards`` contiguous
        sub-batches, answered in parallel worker processes, and
        reassembled in submission order — byte-identical to
        single-process ``oracle.query_many``.

        Raises:
            GraphError: on malformed pairs or out-of-range vertices.
            ShardError: if a worker fails mid-batch.
        """
        from repro.core.batch_engine import as_pair_array

        self._require_started()
        pairs = as_pair_array(pairs, self.graph.num_vertices)
        with self._stats_lock:
            self._bulk_queries_total += len(pairs)
        if len(pairs) == 0:
            return np.empty(0, dtype=float)
        chunks = np.array_split(pairs, min(self.shards, len(pairs)))
        # Submit all chunks under the update lock: an update broadcast
        # holds the same lock through its last acknowledgement, and each
        # shard's queue is FIFO, so every chunk of this call lands either
        # entirely before or entirely after any update on every shard —
        # a bulk answer can never mix pre- and post-update distances.
        # Only submission is gated; execution overlaps freely.
        with self._update_lock:
            futures = [
                self._workers[i].submit(_TaskItem(("query_many", chunk)))
                for i, chunk in enumerate(chunks)
            ]
        return np.concatenate([np.asarray(f.result(), dtype=float) for f in futures])

    # -- Dynamic updates -----------------------------------------------------

    def insert_edge(self, u: int, v: int) -> List[int]:
        """Insert an edge everywhere: writer repair, broadcast, cache flush.

        Returns:
            The affected-landmark list from the writer's O(affected)
            repair (mirrors
            :meth:`~repro.core.dynamic.DynamicHighwayCoverOracle.insert_edge`).
        """
        return self._update("insert_edge", u, v)

    def delete_edge(self, u: int, v: int) -> List[int]:
        """Delete an edge everywhere; same protocol as :meth:`insert_edge`."""
        return self._update("delete_edge", u, v)

    def _update(self, op: str, u: int, v: int) -> List[int]:
        self._require_started()
        u, v = int(u), int(v)
        with self._update_lock:
            self._ensure_dynamic_writer()
            # A writer-side rejection (edge exists / missing) raises
            # here, before anything changed — no invalidation needed.
            affected = getattr(self._writer, op)(u, v)
            try:
                if self.update_mode == "remap":
                    try:
                        new_path = self._spool.publish(
                            self._writer, graph=self._wal is not None
                        )
                    except BaseException:
                        # The writer repaired but no worker can follow:
                        # every shard is now behind. Poison them all so
                        # stale answers fail loudly instead of serving.
                        for shard in self._workers:
                            shard.poison()
                        raise
                    if self._wal is not None:
                        # The new generation (and its graph sidecar) is
                        # durably on disk — save_oracle fsyncs before
                        # renaming — so the logged record for this
                        # update, and everything before it, is now
                        # redundant. Crash between publish and this
                        # truncate is covered by idempotent replay.
                        self._wal.truncate()
                    task = ("update", op, u, v, str(new_path))
                else:
                    new_path = None
                    task = ("update", op, u, v, None)
                # Broadcast; every worker acknowledges before we publish
                # the new version to readers. A shard whose submit or
                # ack fails is poisoned — it may still hold the
                # pre-update index, and a poisoned shard refuses all
                # future work rather than silently answering (and
                # re-caching) stale distances. A failure must not stop
                # the broadcast: the remaining shards still get the
                # update, so every live shard either applies it or is
                # poisoned — never left behind unmarked.
                futures = []
                first_error: Optional[BaseException] = None
                for shard in self._workers:
                    try:
                        futures.append((shard, shard.submit(_TaskItem(task))))
                    except BaseException as exc:  # noqa: BLE001
                        shard.poison()
                        if first_error is None:
                            first_error = exc
                for shard, future in futures:
                    try:
                        future.result()
                    except BaseException as exc:  # noqa: BLE001
                        shard.poison()
                        if first_error is None:
                            first_error = exc
                # Swap the snapshot path even on a partial failure: the
                # shards that acked have re-mapped to the new
                # generation (failed ones are poisoned), so it is the
                # live file — leaving the old path would misreport
                # stats() and orphan the new generation in the spool.
                if new_path is not None:
                    old_path, self._snapshot_path = self._snapshot_path, new_path
                    # Only retire generations the spool owns — never a
                    # user-supplied index file. Unlinking is safe even
                    # if a poisoned worker still maps the old file: the
                    # mapping keeps the inode alive until it is dropped.
                    if self._spool is not None and Path(old_path).parent == Path(
                        self._spool.directory
                    ):
                        self._spool.retire(old_path)
                if first_error is not None:
                    raise first_error
            finally:
                # The writer has already repaired — the pre-update world
                # is gone even on a failed broadcast, so the version
                # bump and cache flush happen regardless; the error (if
                # any) still propagates, and the failed shards are
                # poisoned above.
                with self._stats_lock:
                    self._version += 1
                    self._updates_total += 1
                self.cache.invalidate()
        return affected

    def _ensure_dynamic_writer(self) -> None:
        """Promote the parent's oracle to the dynamic variant once.

        A snapshot-restored (possibly mmap'ed) writer converts to the
        update-optimal landmark-major store on first update — copying,
        which also detaches any mapped arrays, since repairs must write.
        """
        if self._writer_dynamic:
            return
        from repro.api.factory import _promote_dynamic
        from repro.core.dynamic import DynamicHighwayCoverOracle

        if not isinstance(self._writer, DynamicHighwayCoverOracle):
            self._writer = _promote_dynamic(self._writer)
        self._writer_dynamic = True

    def version(self) -> int:
        """The writer version counter (bumps once per acknowledged update)."""
        with self._stats_lock:
            return self._version

    # -- Remaining capability layers (delegated to the parent's oracle) ------

    def save(self, path, version: int = 2) -> int:
        """Persist the current index (``Capability.SNAPSHOT``); returns bytes.

        Serialized against updates, so the snapshot is always a
        published generation, never a half-applied repair.
        """
        self._require_started()
        with self._update_lock:
            return self._writer.save(path, version=version)

    def shortest_path(self, s: int, t: int) -> Optional[List[int]]:
        """A witness path for ``query(s, t)`` (``Capability.PATHS``).

        Taken under the update lock — the writer's label store is
        spliced in place during updates, and a torn read could yield a
        wrong witness.
        """
        self._require_started()
        with self._update_lock:
            return self._writer.shortest_path(s, t)

    def size_bytes(self) -> int:
        """Index size in bytes (one logical copy; workers map, not copy)."""
        self._require_started()
        with self._update_lock:
            return self._writer.size_bytes()

    def average_label_size(self) -> float:
        """Average label entries per vertex (Table 2's ALS)."""
        self._require_started()
        with self._update_lock:
            return self._writer.average_label_size()

    @property
    def construction_seconds(self) -> float:
        """Build time of the parent's index (0.0 for snapshot-restored)."""
        return 0.0 if self._writer is None else self._writer.construction_seconds

    # -- Observability -------------------------------------------------------

    def stats(self, timeout_s: float = 5.0) -> Dict:
        """Serving statistics.

        The per-worker executor report is collected over IPC and is
        **timeout-bounded**: a shard that does not answer its ``stats``
        round trip within ``timeout_s`` seconds (hung worker, or one
        buried under a long bulk task) degrades to ``None`` in
        ``executor_per_shard`` and its index is named in
        ``stale_shards`` — one stuck shard can delay this call by at
        most ``timeout_s``, never block it indefinitely. All locally
        held counters in the report are always current.

        Keys: ``shards``, ``point_queries`` / ``bulk_queries`` /
        ``batches`` (worker round trips on the point path),
        ``batch_occupancy`` (mean point queries per round trip),
        ``updates``, ``version``, ``snapshot`` (current generation
        path), ``kernel`` (the requested query kernel name, or ``None``
        for per-process auto-detection), ``threads`` (the requested
        per-worker executor pool size, or ``None`` for per-worker
        auto-sizing), ``wal`` / ``wal_records`` (the attached
        write-ahead log and its pending record count, or ``None``/0),
        ``per_shard`` (point queries routed to each worker),
        ``executor_per_shard`` (each worker's live
        :meth:`~repro.serving.QueryExecutor.stats` dict — pool size,
        parallel/sequential batch counts, per-thread utilization —
        or ``None`` for a dead/poisoned/timed-out shard),
        ``stale_shards`` (indices whose executor report timed out) and
        ``cache`` (the :meth:`QueryCache.stats` dict).
        """
        per_shard = []
        batches = 0
        points = 0
        executor_futures = []
        for shard in self._workers:
            with shard.lock:
                per_shard.append(shard.point_queries)
                batches += shard.batches
                points += shard.point_queries
            try:
                executor_futures.append(shard.submit(_TaskItem(("stats",))))
            except (ShardError, ServiceClosedError):
                executor_futures.append(None)
        executor_per_shard = []
        stale_shards = []
        deadline = time.perf_counter() + float(timeout_s)
        for index, future in enumerate(executor_futures):
            if future is None:
                executor_per_shard.append(None)
                continue
            # One shared deadline across shards: the whole collection is
            # bounded by timeout_s, not timeout_s per hung shard.
            remaining = max(0.0, deadline - time.perf_counter())
            try:
                executor_per_shard.append(future.result(timeout=remaining))
            except TimeoutError:
                executor_per_shard.append(None)
                stale_shards.append(index)
            except (ShardError, ServiceClosedError):
                executor_per_shard.append(None)
        with self._stats_lock:
            stats = {
                "shards": self.shards,
                "point_queries": points + self.cache.stats()["hits"],
                "bulk_queries": self._bulk_queries_total,
                "batches": batches,
                "batch_occupancy": points / batches if batches else 0.0,
                "updates": self._updates_total,
                "version": self._version,
                "snapshot": str(self._snapshot_path),
                "kernel": self.kernel,
                "threads": self.threads,
                "wal": None if self._wal is None else str(self._wal.path),
                "wal_records": 0 if self._wal is None else len(self._wal),
                "per_shard": per_shard,
                "executor_per_shard": executor_per_shard,
                "stale_shards": stale_shards,
                "cache": self.cache.stats(),
            }
        return stats

    def _require_started(self) -> None:
        if self._closed:
            raise ServiceClosedError("sharded service is closed")
        if not self._workers:
            raise ReproError("call build(graph) before using the service")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "live" if self._workers else "unbuilt"
        )
        return (
            f"ShardedDistanceService(shards={self.shards}, "
            f"mode={self.update_mode}, {state})"
        )
