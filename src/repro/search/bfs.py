"""Level-synchronous breadth-first search over CSR graphs.

:func:`bfs_distances` is the workhorse (and the correctness oracle in the
test suite): it computes single-source distances with vectorized frontier
expansion, the pure-Python stand-in for the paper's C++ BFS.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.graphs.csr import frontier_neighbors
from repro.graphs.graph import Graph

UNREACHED = np.iinfo(np.int32).max


def bfs_distances(
    graph: Graph, source: int, excluded: Optional[np.ndarray] = None
) -> np.ndarray:
    """Distances from ``source`` to every vertex.

    Args:
        graph: the graph to traverse.
        source: start vertex.
        excluded: optional boolean mask of vertices to treat as deleted
            (the virtual sparsified graph ``G[V \\ R]``); the source must
            not be excluded.

    Returns:
        int32 array with ``UNREACHED`` for unreachable vertices.
    """
    graph.validate_vertex(source)
    n = graph.num_vertices
    dist = np.full(n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbors = frontier_neighbors(graph.csr, frontier)
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if excluded is not None and fresh.size:
            fresh = fresh[~excluded[fresh]]
        if fresh.size == 0:
            break
        dist[fresh] = level
        frontier = np.unique(fresh).astype(np.int64)
    return dist


def bfs_distance(graph: Graph, source: int, target: int) -> float:
    """Exact distance between two vertices; ``inf`` if disconnected.

    Early-exits as soon as the target's level is fixed.
    """
    graph.validate_vertex(source)
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    n = graph.num_vertices
    dist = np.full(n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbors = frontier_neighbors(graph.csr, frontier)
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if fresh.size == 0:
            break
        dist[fresh] = level
        if dist[target] != UNREACHED:
            return float(level)
        frontier = np.unique(fresh).astype(np.int64)
    return float("inf")


def bfs_levels(
    graph: Graph, source: int, excluded: Optional[np.ndarray] = None
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(level, vertices)`` frontiers of a BFS, level by level.

    Level 0 is ``[source]``. Useful for algorithms that need per-level
    processing (e.g. eccentricity estimation in the examples).
    """
    graph.validate_vertex(source)
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    yield level, frontier
    while frontier.size:
        level += 1
        neighbors = frontier_neighbors(graph.csr, frontier)
        fresh = neighbors[~visited[neighbors]]
        if excluded is not None and fresh.size:
            fresh = fresh[~excluded[fresh]]
        if fresh.size == 0:
            return
        frontier = np.unique(fresh).astype(np.int64)
        visited[frontier] = True
        yield level, frontier


def eccentricity(graph: Graph, source: int) -> int:
    """Largest finite distance from ``source`` (graph eccentricity)."""
    dist = bfs_distances(graph, source)
    finite = dist[dist != UNREACHED]
    return int(finite.max()) if finite.size else 0


def multi_source_bfs_distances(graph: Graph, sources: List[int]) -> np.ndarray:
    """Distance from the *nearest* of several sources to every vertex."""
    n = graph.num_vertices
    dist = np.full(n, UNREACHED, dtype=np.int32)
    src = np.unique(np.asarray(sources, dtype=np.int64))
    for s in src:
        graph.validate_vertex(int(s))
    dist[src] = 0
    frontier = src
    level = 0
    while frontier.size:
        level += 1
        neighbors = frontier_neighbors(graph.csr, frontier)
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if fresh.size == 0:
            break
        dist[fresh] = level
        frontier = np.unique(fresh).astype(np.int64)
    return dist
