"""Dijkstra's algorithm (the paper's weighted-graph online baseline).

The reproduction graphs are unweighted, but Dijkstra appears in Figure 1
as the classical online method, and IS-Label's augmented hierarchy graphs
are genuinely weighted — both use this module.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph


def dijkstra_distances(
    graph: Graph, source: int, excluded: Optional[np.ndarray] = None
) -> np.ndarray:
    """Single-source distances on a unit-weight graph via Dijkstra.

    Provided for parity with the paper's baseline set; on unit weights it
    returns exactly :func:`repro.search.bfs.bfs_distances` (asserted by the
    test suite) but with the classical heap-based control flow.
    """
    graph.validate_vertex(source)
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap: list = [(0.0, source)]
    csr = graph.csr
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v in csr.neighbors(u):
            v = int(v)
            if excluded is not None and excluded[v]:
                continue
            nd = d + 1.0
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def dijkstra_distance(graph: Graph, source: int, target: int) -> float:
    """Point-to-point Dijkstra with early termination at the target."""
    graph.validate_vertex(source)
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap: list = [(0.0, source)]
    csr = graph.csr
    while heap:
        d, u = heapq.heappop(heap)
        if u == target:
            return float(d)
        if d > dist[u]:
            continue
        for v in csr.neighbors(u):
            v = int(v)
            nd = d + 1.0
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return float("inf")


def dijkstra_weighted(
    adjacency: Mapping[int, Iterable[Tuple[int, float]]],
    source: int,
    targets: Optional[set] = None,
) -> Dict[int, float]:
    """Dijkstra over an explicit weighted adjacency mapping.

    Used by the IS-Label baseline, whose augmented hierarchy graphs carry
    edge weights > 1 even though the input graph is unweighted.

    Args:
        adjacency: mapping ``u -> iterable of (v, weight)``.
        source: start vertex (any hashable int id present in the mapping).
        targets: optional early-exit set; the search stops once every
            target has been settled.

    Returns:
        Mapping of settled vertex -> distance.
    """
    settled: Dict[int, float] = {}
    remaining = set(targets) if targets is not None else None
    heap: list = [(0.0, source)]
    best: Dict[int, float] = {source: 0.0}
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in adjacency.get(u, ()):
            nd = d + w
            if nd < best.get(v, float("inf")):
                best[v] = nd
                heapq.heappush(heap, (nd, v))
    return settled
