"""Bidirectional BFS — the paper's ``Bi-BFS`` online baseline (Pohl 1971).

Expands the smaller frontier first and stops at the first meeting vertex,
which on small-world networks visits orders of magnitude fewer vertices
than a unidirectional BFS. Table 2 reports this method's query times to
show that online search alone is not competitive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.csr import frontier_neighbors
from repro.graphs.graph import Graph


def bidirectional_bfs_distance(
    graph: Graph,
    source: int,
    target: int,
    excluded: Optional[np.ndarray] = None,
) -> float:
    """Exact distance via two alternating BFS waves.

    Args:
        graph: graph to search.
        source, target: endpoints.
        excluded: optional boolean mask of vertices to skip (must not
            cover the endpoints).

    Returns:
        The exact distance, or ``inf`` if the endpoints are disconnected.
    """
    graph.validate_vertex(source)
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    n = graph.num_vertices
    # side[v]: 0 unvisited, 1 forward, 2 reverse.
    side = np.zeros(n, dtype=np.int8)
    side[source], side[target] = 1, 2
    forward = np.asarray([source], dtype=np.int64)
    reverse = np.asarray([target], dtype=np.int64)
    depth_f = depth_r = 0
    while forward.size and reverse.size:
        if forward.size <= reverse.size:
            forward, met = _expand(graph, forward, side, own=1, other=2, excluded=excluded)
            depth_f += 1
        else:
            reverse, met = _expand(graph, reverse, side, own=2, other=1, excluded=excluded)
            depth_r += 1
        if met:
            return float(depth_f + depth_r)
    return float("inf")


def _expand(graph, frontier, side, own, other, excluded):
    """Advance one frontier; returns (new_frontier, met_other_side)."""
    neighbors = frontier_neighbors(graph.csr, frontier)
    if neighbors.size == 0:
        return np.empty(0, dtype=np.int64), False
    if excluded is not None:
        neighbors = neighbors[~excluded[neighbors]]
        if neighbors.size == 0:
            return np.empty(0, dtype=np.int64), False
    if (side[neighbors] == other).any():
        return frontier, True
    fresh = neighbors[side[neighbors] == 0]
    if fresh.size == 0:
        return np.empty(0, dtype=np.int64), False
    new_frontier = np.unique(fresh).astype(np.int64)
    side[new_frontier] = own
    return new_frontier, False
