"""Online traversal engines: BFS, Dijkstra, bidirectional and bounded search."""

from repro.search.bfs import bfs_distances, bfs_distance, bfs_levels
from repro.search.dijkstra import dijkstra_distances, dijkstra_distance
from repro.search.bidirectional import bidirectional_bfs_distance
from repro.search.bounded import (
    bounded_bidirectional_distance,
    bounded_grouped_multi_target_distances,
)

__all__ = [
    "bfs_distances",
    "bfs_distance",
    "bfs_levels",
    "dijkstra_distances",
    "dijkstra_distance",
    "bidirectional_bfs_distance",
    "bounded_bidirectional_distance",
    "bounded_grouped_multi_target_distances",
]
