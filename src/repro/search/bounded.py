"""Distance-bounded bidirectional search — Algorithm 2 of the paper.

This is the online half of the querying framework (Section 4.3): a
bidirectional BFS over the *sparsified* graph ``G[V \\ R]`` that stops as
soon as the two waves meet **or** the sum of the search depths reaches the
upper bound ``d⊤st`` obtained from the highway cover labelling.

The sparsified graph is virtual: landmarks are masked out with a boolean
``excluded`` array instead of materializing ``G[V \\ R]``.

Correctness of the early stop (paper, Section 4.3): if no meeting has been
detected after completing levels ``ds`` and ``dt``, every s–t path in the
sparsified graph has length at least ``ds + dt + 1``; so once
``ds + dt == d⊤st`` the sparsified distance cannot beat the bound and
``d⊤st`` is the answer.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.graphs.csr import frontier_neighbors
from repro.graphs.graph import Graph


def bounded_bidirectional_distance(
    graph: Graph,
    source: int,
    target: int,
    upper_bound: float,
    excluded: Optional[np.ndarray] = None,
) -> float:
    """Exact distance under an upper bound (Definition 4.1).

    Args:
        graph: the full graph ``G``.
        source, target: endpoints; must not be excluded vertices.
        upper_bound: ``d⊤st`` — any admissible upper bound on the *true*
            distance in ``G`` (``inf`` means unbounded search).
        excluded: boolean mask of removed vertices (the landmark set); the
            search never visits a masked vertex.

    Returns:
        ``min(d_{G[V\\R]}(s, t), d⊤st)`` — by Theorem 4.6 this equals
        ``dG(s, t)`` whenever ``d⊤st`` came from a highway cover labelling.
    """
    graph.validate_vertex(source)
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    if excluded is not None and (excluded[source] or excluded[target]):
        raise ValueError("bounded search endpoints must not be excluded vertices")
    if upper_bound <= 0:
        raise ValueError("upper bound must be positive for distinct endpoints")
    if upper_bound == 1.0:
        # A bound of 1 between distinct vertices is already optimal.
        return 1.0

    n = graph.num_vertices
    side = np.zeros(n, dtype=np.int8)
    side[source], side[target] = 1, 2
    frontier_s = np.asarray([source], dtype=np.int64)
    frontier_t = np.asarray([target], dtype=np.int64)
    visited_s, visited_t = 1, 1  # |Ps|, |Pt| in Algorithm 2
    depth_s = depth_t = 0

    while frontier_s.size and frontier_t.size:
        if visited_s <= visited_t:
            frontier_s, met, grown = _expand(
                graph, frontier_s, side, own=1, other=2, excluded=excluded
            )
            depth_s += 1
            visited_s += grown
        else:
            frontier_t, met, grown = _expand(
                graph, frontier_t, side, own=2, other=1, excluded=excluded
            )
            depth_t += 1
            visited_t += grown
        if met:
            # ds + 1 + dt with the increment already applied above.
            return float(depth_s + depth_t)
        if depth_s + depth_t >= upper_bound:
            return float(upper_bound)
    # One side exhausted: s and t are disconnected in G[V \ R]; the bound
    # (possibly inf) is the only remaining candidate.
    return float(upper_bound) if not math.isinf(upper_bound) else float("inf")


def _expand(graph, frontier, side, own, other, excluded):
    """Advance one wave by a level.

    Returns ``(new_frontier, met_other_side, vertices_added)``.
    """
    neighbors = frontier_neighbors(graph.csr, frontier)
    if excluded is not None and neighbors.size:
        neighbors = neighbors[~excluded[neighbors]]
    if neighbors.size == 0:
        return np.empty(0, dtype=np.int64), False, 0
    if (side[neighbors] == other).any():
        return frontier, True, 0
    fresh = neighbors[side[neighbors] == 0]
    if fresh.size == 0:
        return np.empty(0, dtype=np.int64), False, 0
    new_frontier = np.unique(fresh).astype(np.int64)
    side[new_frontier] = own
    return new_frontier, False, int(new_frontier.size)
