"""Distance-bounded bidirectional search — Algorithm 2 of the paper.

This is the online half of the querying framework (Section 4.3): a
bidirectional BFS over the *sparsified* graph ``G[V \\ R]`` that stops as
soon as the two waves meet **or** the sum of the search depths reaches the
upper bound ``d⊤st`` obtained from the highway cover labelling.

The sparsified graph is virtual: landmarks are masked out with a boolean
``excluded`` array instead of materializing ``G[V \\ R]``.

Correctness of the early stop (paper, Section 4.3): if no meeting has been
detected after completing levels ``ds`` and ``dt``, every s–t path in the
sparsified graph has length at least ``ds + dt + 1``; so once
``ds + dt == d⊤st`` the sparsified distance cannot beat the bound and
``d⊤st`` is the answer.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.graphs.csr import frontier_neighbors
from repro.graphs.graph import Graph


def bounded_bidirectional_distance(
    graph: Graph,
    source: int,
    target: int,
    upper_bound: float,
    excluded: Optional[np.ndarray] = None,
) -> float:
    """Exact distance under an upper bound (Definition 4.1).

    Args:
        graph: the full graph ``G``.
        source, target: endpoints; must not be excluded vertices.
        upper_bound: ``d⊤st`` — any admissible upper bound on the *true*
            distance in ``G`` (``inf`` means unbounded search).
        excluded: boolean mask of removed vertices (the landmark set); the
            search never visits a masked vertex.

    Returns:
        ``min(d_{G[V\\R]}(s, t), d⊤st)`` — by Theorem 4.6 this equals
        ``dG(s, t)`` whenever ``d⊤st`` came from a highway cover labelling.
    """
    graph.validate_vertex(source)
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    if excluded is not None and (excluded[source] or excluded[target]):
        raise ValueError("bounded search endpoints must not be excluded vertices")
    if upper_bound <= 0:
        raise ValueError("upper bound must be positive for distinct endpoints")
    if upper_bound == 1.0:
        # A bound of 1 between distinct vertices is already optimal.
        return 1.0

    n = graph.num_vertices
    side = np.zeros(n, dtype=np.int8)
    side[source], side[target] = 1, 2
    frontier_s = np.asarray([source], dtype=np.int64)
    frontier_t = np.asarray([target], dtype=np.int64)
    visited_s, visited_t = 1, 1  # |Ps|, |Pt| in Algorithm 2
    depth_s = depth_t = 0

    while frontier_s.size and frontier_t.size:
        if visited_s <= visited_t:
            frontier_s, met, grown = _expand(
                graph, frontier_s, side, own=1, other=2, excluded=excluded
            )
            depth_s += 1
            visited_s += grown
        else:
            frontier_t, met, grown = _expand(
                graph, frontier_t, side, own=2, other=1, excluded=excluded
            )
            depth_t += 1
            visited_t += grown
        if met:
            # ds + 1 + dt with the increment already applied above.
            return float(depth_s + depth_t)
        if depth_s + depth_t >= upper_bound:
            return float(upper_bound)
    # One side exhausted: s and t are disconnected in G[V \ R]; the bound
    # (possibly inf) is the only remaining candidate.
    return float(upper_bound) if not math.isinf(upper_bound) else float("inf")


def bounded_grouped_multi_target_distances(
    graph: Graph,
    sources: np.ndarray,
    targets: np.ndarray,
    target_group: np.ndarray,
    bounds: np.ndarray,
    excluded: Optional[np.ndarray] = None,
    cells_budget: int = 1 << 26,
) -> np.ndarray:
    """Stacked bounded BFS: many source groups advanced in lock step.

    The batch engine groups query pairs by source vertex; this function
    runs *all* groups' sparsified BFS waves simultaneously instead of one
    Python-level loop per group: frontiers are stored as flat
    ``group * n + vertex`` keys, so one vectorized pass per BFS *level*
    expands every group at once. For large batches this collapses
    thousands of per-group level loops into a handful of numpy passes —
    the level loop executes ``max(bounds) - 1`` times in total, not per
    group.

    For each query the result is
    ``min(d_{G[V\\R]}(source, target), bound)`` — exactly what
    :func:`bounded_bidirectional_distance` returns, so by Theorem 4.6 the
    answers are exact whenever the bounds come from a highway cover
    labelling.

    Args:
        graph: the full graph ``G``.
        sources: ``(G,)`` source vertex per group; none excluded.
        targets: ``(T,)`` target vertex per query; none excluded, none
            equal to its group's source. ``(group, target)`` pairs must be
            distinct.
        target_group: ``(T,)`` index into ``sources`` for each query.
        bounds: ``(T,)`` admissible upper bounds per query.
        excluded: boolean mask of removed vertices (the landmark set).
        cells_budget: cap on the ``groups x n`` visited bitmap; group
            chunks are sized so the bitmap never exceeds it.

    Returns:
        ``(T,)`` float array of exact distances, aligned with ``targets``.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    target_group = np.asarray(target_group, dtype=np.int64)
    out = np.asarray(bounds, dtype=float).copy()
    if targets.size == 0:
        return out
    n = graph.num_vertices
    for arr, what in ((sources, "source"), (targets, "target")):
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise ValueError(f"{what} vertex out of range")
    if excluded is not None and (
        excluded[sources].any() or excluded[targets].any()
    ):
        raise ValueError("bounded search endpoints must not be excluded vertices")

    num_groups = len(sources)
    chunk = max(1, cells_budget // max(1, n))
    for chunk_start in range(0, num_groups, chunk):
        chunk_end = min(chunk_start + chunk, num_groups)
        in_chunk = (target_group >= chunk_start) & (target_group < chunk_end)
        sel = np.flatnonzero(in_chunk)
        if sel.size:
            out[sel] = _stacked_search_chunk(
                graph,
                sources[chunk_start:chunk_end],
                targets[sel],
                target_group[sel] - chunk_start,
                out[sel],
                excluded,
            )
    return out


def _stacked_search_chunk(
    graph: Graph,
    sources: np.ndarray,
    t_vertex: np.ndarray,
    t_group: np.ndarray,
    t_bound: np.ndarray,
    excluded: Optional[np.ndarray],
) -> np.ndarray:
    """Advance one chunk of groups in lock step; see the caller for terms.

    Two pruning rules keep the stacked wave small:

    * **Last-level inversion.** A target whose bound is ``level + 2`` can
      only improve by being reached at ``level + 1`` — and that happens
      iff the (unvisited) target has a neighbor in the current wave. So
      instead of expanding the wave one more (exponentially large) level,
      the target's own O(degree) neighborhood is checked against the
      visited bitmap. Since BFS waves grow with depth, this removes the
      single most expensive level of every group's search.
    * **Group retirement.** After the check, a group keeps expanding only
      while some unsettled target's bound exceeds ``level + 2``; retired
      groups' frontier entries are dropped wholesale.
    """
    n = graph.num_vertices
    indptr, indices = graph.csr.indptr, graph.csr.indices
    num_groups = len(sources)
    result = t_bound.copy()
    settled = np.zeros(t_vertex.size, dtype=bool)

    # Sorted flat target keys enable hit detection by binary search.
    t_key = t_group * n + t_vertex
    t_order = np.argsort(t_key)
    sorted_keys = t_key[t_order]

    visited = np.zeros(num_groups * n, dtype=bool)
    flags = np.zeros(num_groups * n, dtype=bool)
    frontier_keys = np.arange(num_groups, dtype=np.int64) * n + sources
    visited[frontier_keys] = True
    level = 0
    while frontier_keys.size:
        # Last-level inversion: settle bound == level + 2 targets by
        # scanning their own neighborhoods (an unvisited target with a
        # visited neighbor is at distance exactly level + 1, because a
        # neighbor visited earlier would have claimed it already).
        check = np.flatnonzero(
            ~settled & (t_bound > level + 1) & (t_bound <= level + 2)
        )
        if check.size:
            check = check[~visited[t_group[check] * n + t_vertex[check]]]
        if check.size:
            reached = _targets_with_visited_neighbor(
                indptr, indices, t_vertex[check], t_group[check] * n, visited
            )
            result[check[reached]] = float(level + 1)
        settled[~settled & (t_bound <= level + 2)] = True

        # A group profits from the wave only while some unsettled
        # target's bound exceeds level + 2 (closer bounds are handled by
        # the check above); drop retired groups' frontier entries.
        if not (~settled).any():
            break
        group_active = np.zeros(num_groups, dtype=bool)
        group_active[t_group[~settled]] = True
        frontier_group = frontier_keys // n
        keep = group_active[frontier_group]
        if not keep.all():
            frontier_keys = frontier_keys[keep]
            frontier_group = frontier_group[keep]
            if frontier_keys.size == 0:
                break
        level += 1

        # Vectorized neighbor gather across every group's frontier.
        frontier_vertex = frontier_keys - frontier_group * n
        starts = indptr[frontier_vertex]
        ends = indptr[frontier_vertex + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        cumulative = np.cumsum(counts)
        gather = np.repeat(ends - cumulative, counts) + np.arange(
            total, dtype=np.int64
        )
        neighbor_vertex = indices[gather].astype(np.int64)
        neighbor_group = np.repeat(frontier_group, counts)
        if excluded is not None:
            alive = ~excluded[neighbor_vertex]
            neighbor_vertex = neighbor_vertex[alive]
            neighbor_group = neighbor_group[alive]
        neighbor_keys = neighbor_group * n + neighbor_vertex
        neighbor_keys = neighbor_keys[~visited[neighbor_keys]]
        if neighbor_keys.size == 0:
            break
        # Scatter-dedupe into the flags bitmap (cheaper than sorting).
        flags[neighbor_keys] = True
        frontier_keys = np.flatnonzero(flags)
        flags[frontier_keys] = False
        visited[frontier_keys] = True

        # Which (group, target) queries were just reached?
        pos = np.searchsorted(sorted_keys, frontier_keys)
        pos[pos == sorted_keys.size] = 0
        hit = sorted_keys[pos] == frontier_keys
        hit_targets = t_order[pos[hit]]
        if hit_targets.size:
            result[hit_targets] = np.minimum(result[hit_targets], float(level))
            settled[hit_targets] = True
    return result


def _targets_with_visited_neighbor(
    indptr: np.ndarray,
    indices: np.ndarray,
    vertices: np.ndarray,
    key_base: np.ndarray,
    visited: np.ndarray,
) -> np.ndarray:
    """Positions in ``vertices`` having >= 1 visited neighbor (per group).

    ``key_base[i] = group_i * n`` offsets vertex ids into the flat
    per-group ``visited`` bitmap. Excluded vertices never enter
    ``visited``, so no separate exclusion filter is needed.
    """
    starts = indptr[vertices]
    ends = indptr[vertices + 1]
    counts = ends - starts
    total = int(counts.sum())
    reached = np.zeros(len(vertices), dtype=bool)
    if total == 0:
        return np.flatnonzero(reached)
    cumulative = np.cumsum(counts)
    gather = np.repeat(ends - cumulative, counts) + np.arange(total, dtype=np.int64)
    neighbor_keys = np.repeat(key_base, counts) + indices[gather]
    owner = np.repeat(np.arange(len(vertices)), counts)
    reached[owner[visited[neighbor_keys]]] = True
    return np.flatnonzero(reached)


def _expand(graph, frontier, side, own, other, excluded):
    """Advance one wave by a level.

    Returns ``(new_frontier, met_other_side, vertices_added)``.
    """
    neighbors = frontier_neighbors(graph.csr, frontier)
    if excluded is not None and neighbors.size:
        neighbors = neighbors[~excluded[neighbors]]
    if neighbors.size == 0:
        return np.empty(0, dtype=np.int64), False, 0
    if (side[neighbors] == other).any():
        return frontier, True, 0
    fresh = neighbors[side[neighbors] == 0]
    if fresh.size == 0:
        return np.empty(0, dtype=np.int64), False, 0
    new_frontier = np.unique(fresh).astype(np.int64)
    side[new_frontier] = own
    return new_frontier, False, int(new_frontier.size)
