"""Distance-bounded bidirectional search — Algorithm 2 of the paper.

This is the online half of the querying framework (Section 4.3): a
bidirectional BFS over the *sparsified* graph ``G[V \\ R]`` that stops as
soon as the two waves meet **or** the sum of the search depths reaches the
upper bound ``d⊤st`` obtained from the highway cover labelling.

The sparsified graph is virtual: landmarks are masked out with a boolean
``excluded`` array instead of materializing ``G[V \\ R]``.

Correctness of the early stop (paper, Section 4.3): if no meeting has been
detected after completing levels ``ds`` and ``dt``, every s–t path in the
sparsified graph has length at least ``ds + dt + 1``; so once
``ds + dt == d⊤st`` the sparsified distance cannot beat the bound and
``d⊤st`` is the answer.

The frontier-expansion loops themselves live in the kernel layer
(:mod:`repro.core.kernels`) so compiled backends can be swapped in; this
module owns argument validation, the trivial short-circuits, and the
reusable per-thread workspace, then dispatches to the selected backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.kernels import KernelBackend, Workspace

# The kernel registry lives under repro.core, which (through the oracle
# modules) imports repro.graphs -> repro.search; import it lazily to keep
# this low-level module free of the cycle.


def _kernels():
    from repro.core import kernels

    return kernels


def bounded_bidirectional_distance(
    graph: Graph,
    source: int,
    target: int,
    upper_bound: float,
    excluded: Optional[np.ndarray] = None,
    kernel: Optional[Union[KernelBackend, str]] = None,
    workspace: Optional[Workspace] = None,
) -> float:
    """Exact distance under an upper bound (Definition 4.1).

    Args:
        graph: the full graph ``G``.
        source, target: endpoints; must not be excluded vertices.
        upper_bound: ``d⊤st`` — any admissible upper bound on the *true*
            distance in ``G`` (``inf`` means unbounded search).
        excluded: boolean mask of removed vertices (the landmark set); the
            search never visits a masked vertex.
        kernel: kernel backend (instance or name) running the search loop;
            ``None`` uses the process default.
        workspace: scratch buffers to search in; ``None`` borrows the
            calling thread's cached :class:`Workspace`.

    Returns:
        ``min(d_{G[V\\R]}(s, t), d⊤st)`` — by Theorem 4.6 this equals
        ``dG(s, t)`` whenever ``d⊤st`` came from a highway cover labelling.
    """
    graph.validate_vertex(source)
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    if excluded is not None and (excluded[source] or excluded[target]):
        raise ValueError("bounded search endpoints must not be excluded vertices")
    if upper_bound <= 0:
        raise ValueError("upper bound must be positive for distinct endpoints")
    if upper_bound == 1.0:
        # A bound of 1 between distinct vertices is already optimal.
        return 1.0

    kernels = _kernels()
    backend = kernels.resolve_kernel(kernel)
    if workspace is None:
        workspace = kernels.get_workspace(graph.num_vertices)
    return backend.bounded_distance(
        graph.csr, int(source), int(target), float(upper_bound), excluded, workspace
    )


def bounded_grouped_multi_target_distances(
    graph: Graph,
    sources: np.ndarray,
    targets: np.ndarray,
    target_group: np.ndarray,
    bounds: np.ndarray,
    excluded: Optional[np.ndarray] = None,
    cells_budget: int = 1 << 26,
    kernel: Optional[Union[KernelBackend, str]] = None,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Stacked bounded BFS: many source groups advanced together.

    The batch engine groups query pairs by source vertex; this function
    answers *all* groups' sparsified searches in one kernel call instead
    of one Python-level search per group. The reference (``numpy``)
    backend advances every group's wave in lock step with flat
    ``group * n + vertex`` keys — a handful of vectorized passes per BFS
    *level* in total, not per group; compiled backends run one tight BFS
    per group instead.

    For each query the result is
    ``min(d_{G[V\\R]}(source, target), bound)`` — exactly what
    :func:`bounded_bidirectional_distance` returns, so by Theorem 4.6 the
    answers are exact whenever the bounds come from a highway cover
    labelling.

    Args:
        graph: the full graph ``G``.
        sources: ``(G,)`` source vertex per group; none excluded.
        targets: ``(T,)`` target vertex per query; none excluded, none
            equal to its group's source. ``(group, target)`` pairs must be
            distinct.
        target_group: ``(T,)`` index into ``sources`` for each query.
        bounds: ``(T,)`` admissible upper bounds per query.
        excluded: boolean mask of removed vertices (the landmark set).
        cells_budget: cap on the ``groups x n`` visited bitmap used by the
            numpy backend; group chunks are sized so it never exceeds it.
        kernel: kernel backend (instance or name); ``None`` uses the
            process default.
        workspace: scratch buffers; ``None`` borrows the calling thread's
            cached :class:`Workspace`.

    Returns:
        ``(T,)`` float array of exact distances, aligned with ``targets``.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    target_group = np.asarray(target_group, dtype=np.int64)
    bounds = np.asarray(bounds, dtype=float)
    if targets.size == 0:
        return bounds.copy()
    n = graph.num_vertices
    for arr, what in ((sources, "source"), (targets, "target")):
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise ValueError(f"{what} vertex out of range")
    if excluded is not None and (
        excluded[sources].any() or excluded[targets].any()
    ):
        raise ValueError("bounded search endpoints must not be excluded vertices")

    kernels = _kernels()
    backend = kernels.resolve_kernel(kernel)
    if workspace is None:
        workspace = kernels.get_workspace(n)
    return backend.multi_target(
        graph.csr,
        n,
        sources,
        targets,
        target_group,
        bounds,
        excluded,
        workspace,
        cells_budget=cells_budget,
    )
