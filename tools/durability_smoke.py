"""CI smoke for the durability layer: SIGKILL a writer, recover, verify.

Run from the repository root::

    PYTHONPATH=src python tools/durability_smoke.py

Two phases, both hard failures on any mismatch:

1. **Crash recovery.** A child process builds a small oracle, publishes
   generation 0 into a spool, applies churn under a write-ahead log,
   and is SIGKILLed while stalled in the middle of publishing the next
   generation (after the temp file is written, before the atomic
   rename). The parent then restarts from the surviving generation plus
   the WAL and asserts the served distances are **byte-identical** to a
   fresh build of the final graph — the acceptance bar of the crash
   protocol (atomic publish + log-before-mutate + idempotent replay).

2. **fsck fixtures.** ``repro fsck`` runs over every committed fixture
   in ``tests/fixtures/durability`` and must exit 0 on the clean files
   and non-zero on each corrupted one, naming the violated invariant
   recorded in the manifest.
"""

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.api import build_oracle, open_oracle  # noqa: E402
from repro.core.fsck import fsck_path  # noqa: E402
from repro.core.wal import scan_wal  # noqa: E402
from repro.graphs.generators import barabasi_albert_graph  # noqa: E402
from repro.graphs.sampling import sample_vertex_pairs  # noqa: E402

FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "durability"

# The child builds, publishes gen 0, logs three updates, then stalls
# inside the next publish (temp file durable, rename pending) where the
# parent SIGKILLs it — the worst-possible crash point for a publisher.
CHILD = textwrap.dedent(
    """
    import os, sys, time
    from pathlib import Path

    import repro.core.serialization as ser
    from repro.core.dynamic import DynamicHighwayCoverOracle
    from repro.core.serialization import SnapshotSpool
    from repro.core.wal import WriteAheadLog
    from repro.graphs.generators import barabasi_albert_graph

    workdir = Path(sys.argv[1])
    graph = barabasi_albert_graph(200, 2, seed=71)
    oracle = DynamicHighwayCoverOracle(num_landmarks=8).build(graph)
    spool = SnapshotSpool(workdir / "spool")
    spool.publish(oracle)

    oracle.attach_wal(WriteAheadLog(workdir / "wal.log"))
    applied = 0
    for u in range(200):
        for v in range(u + 1, 200):
            if not graph.has_edge(u, v):
                oracle.insert_edge(u, v)
                applied += 1
                break
        if applied == 3:
            break

    real_replace = os.replace
    def stalling_replace(src, dst):
        (workdir / "mid-publish").touch()
        time.sleep(120)
        real_replace(src, dst)

    ser.os.replace = stalling_replace
    spool.publish(oracle)
    """
)


def crash_recovery_phase(workdir: Path) -> None:
    """SIGKILL a publisher mid-rename, restart, assert byte-exactness."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(workdir)], env=env
    )
    sentinel = workdir / "mid-publish"
    try:
        deadline = time.monotonic() + 120
        while not sentinel.exists():
            if time.monotonic() > deadline:
                raise SystemExit("child never reached the stalled publish")
            if child.poll() is not None:
                raise SystemExit(f"child exited early ({child.returncode})")
            time.sleep(0.05)
    finally:
        child.kill()
        child.wait()
    print("killed writer mid-publish (temp file written, rename pending)")

    spool_dir = workdir / "spool"
    generations = sorted(spool_dir.glob("*.hl"))
    if [p.name for p in generations] != ["gen-000000.hl"]:
        raise SystemExit(f"unexpected spool contents: {generations}")
    report = fsck_path(generations[0])
    if not report.ok:
        raise SystemExit(f"surviving generation corrupt: {report.findings}")
    print("old generation survived the crash and is fsck-clean")

    graph = barabasi_albert_graph(200, 2, seed=71)
    records = scan_wal(workdir / "wal.log").records
    if len(records) != 3:
        raise SystemExit(f"expected 3 WAL records, found {len(records)}")
    recovered = open_oracle(
        graph, index=generations[0], wal=workdir / "wal.log"
    )

    final = graph
    for record in records:
        final = final.with_edges_added([(record.u, record.v)])
    fresh = build_oracle(final, "hl", num_landmarks=8)
    pairs = sample_vertex_pairs(graph, 400, seed=17)
    got = recovered.query_many(pairs)
    want = fresh.query_many(pairs)
    recovered.wal.close()
    if got.dtype != want.dtype or not np.array_equal(got, want):
        raise SystemExit("recovered distances differ from a fresh build")
    print(f"restart + replay of {len(records)} records: "
          f"{len(pairs)} distances byte-identical to a fresh build")


def fsck_fixture_phase() -> None:
    """``repro fsck`` must judge every committed fixture per manifest."""
    with (FIXTURE_DIR / "manifest.json").open() as handle:
        manifest = json.load(handle)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    for name, expected_code in sorted(manifest.items()):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fsck", str(FIXTURE_DIR / name)],
            capture_output=True,
            text=True,
            env=env,
        )
        if expected_code is None:
            if result.returncode != 0:
                raise SystemExit(f"{name}: clean fixture rejected: {result.stderr}")
            print(f"fsck {name}: clean (exit 0)")
        else:
            if result.returncode == 0:
                raise SystemExit(f"{name}: corruption not detected")
            if expected_code not in result.stderr:
                raise SystemExit(
                    f"{name}: expected invariant {expected_code!r} in: "
                    f"{result.stderr}"
                )
            print(f"fsck {name}: flagged [{expected_code}] (exit {result.returncode})")


def main() -> None:
    """Run both phases in a scratch directory."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-durability-") as scratch:
        crash_recovery_phase(Path(scratch))
    fsck_fixture_phase()
    print("durability smoke passed")


if __name__ == "__main__":
    main()
