"""The million-node gauntlet: streamed ingest → out-of-core build → serve.

End-to-end proof that the external-memory pipeline holds its memory
promise at a scale where cheating is visible.  Four phases:

1. **Generate** — stream a deterministic synthetic graph (every vertex
   attaches to ``degree`` earlier vertices, so it is connected) to an
   edge-list text file, in blocks, never holding the edge set.
2. **Ingest + build** — a fresh subprocess runs
   :func:`repro.datasets.ingest.ingest_edge_list` and
   :func:`repro.core.ooc.build_snapshot_out_of_core` on the memmapped
   disk CSR, then reports its own peak RSS
   (``resource.getrusage``).  The parent asserts the peak stays under
   ``RSS_FRACTION`` of the graph's in-memory CSR footprint
   (``8 bytes x directed edges`` — what a resident build would hold
   for the adjacency alone), i.e. **sublinear in the edge count**.  In
   ``--smoke`` runs the graph is small enough that the interpreter
   baseline dominates, so the cap is relaxed by ``BASELINE_BYTES``
   (documented in ``docs/ingest.md``).
3. **Serve + verify** — the snapshot is served from
   :class:`~repro.serving.ShardedDistanceService` workers mapping it
   zero-copy over the memmapped graph; answers are spot-checked against
   brute-force BFS truth.
4. **Byte-identity** — on a medium graph, the out-of-core snapshot must
   be byte-identical to the in-memory ``save_oracle`` path.

Run (records ``benchmarks/results/ingest.txt``)::

    PYTHONPATH=src python tools/gauntlet.py                  # 1M nodes
    PYTHONPATH=src python tools/gauntlet.py --smoke          # CI-sized

Exit code 0 only if every assertion holds.
"""

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

#: Peak RSS must stay under this fraction of the in-memory CSR bytes.
RSS_FRACTION = 0.75
#: Interpreter + numpy floor added to the cap for --smoke runs only.
BASELINE_BYTES = 192 << 20


def stream_synthetic_edges(path: Path, nodes: int, degree: int, seed: int) -> int:
    """Write a connected synthetic edge list in streamed blocks.

    Vertex ``v`` attaches to ``min(v, degree)`` uniformly random earlier
    vertices (deterministic per block), so the graph is connected and
    mildly skewed — and the writer's memory is bounded by the block
    size, not the edge count.  Returns the number of lines written.
    """
    block = 1 << 17
    lines = 0
    with path.open("w") as handle:
        handle.write("# synthetic gauntlet graph\n")
        for lo in range(1, nodes, block):
            hi = min(lo + block, nodes)
            rng = np.random.default_rng(seed + lo)
            vs = np.arange(lo, hi, dtype=np.int64)
            ds = np.minimum(vs, degree)
            reps = np.repeat(vs, ds)
            targets = (rng.random(reps.size) * reps).astype(np.int64)
            np.savetxt(handle, np.column_stack([reps, targets]), fmt="%d %d")
            lines += int(reps.size)
    return lines


def _child_ingest_build(args: argparse.Namespace) -> int:
    """Ingest + out-of-core build in this (fresh) process; report RSS."""
    from repro.core.ooc import build_snapshot_out_of_core
    from repro.datasets.ingest import ingest_edge_list
    from repro.graphs.disk_csr import open_disk_csr
    from repro.landmarks.selection import select_landmarks

    workdir = Path(args.workdir)
    csr_path = workdir / "graph.rpdc"
    snap_path = workdir / "index.hl"

    t0 = time.perf_counter()
    report = ingest_edge_list(
        args.edgelist,
        csr_path,
        name="gauntlet",
        chunk_bytes=args.chunk_mb << 20,
        memory_budget_bytes=args.budget_mb << 20,
    )
    ingest_s = time.perf_counter() - t0

    graph = open_disk_csr(csr_path, mmap=True)
    landmarks = select_landmarks(graph, args.landmarks)
    build = build_snapshot_out_of_core(
        graph,
        landmarks,
        snap_path,
        chunk_size=args.chunk_size,
        edge_block=args.edge_block,
        release_graph_pages=True,
    )

    # ru_maxrss is KiB on Linux — the whole-process high-water mark,
    # covering both phases above.
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    print(
        json.dumps(
            {
                "peak_rss_bytes": peak,
                "ingest_seconds": round(ingest_s, 3),
                "num_vertices": report.num_vertices,
                "num_edges": report.num_edges,
                "num_directed_edges": report.num_directed_edges,
                "duplicates": report.duplicates,
                "buckets": report.buckets,
                "csr_bytes": report.bytes_written,
                "build_seconds": round(build.construction_seconds, 3),
                "entries": build.entries,
                "chunks": build.chunks,
                "snapshot_bytes": build.bytes_written,
                "landmarks": [int(v) for v in landmarks],
            }
        )
    )
    return 0


def _run_child(args, edgelist: Path, workdir: Path) -> dict:
    """Spawn the ingest+build phase in a clean process and parse its JSON."""
    cmd = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--child",
        "--edgelist",
        str(edgelist),
        "--workdir",
        str(workdir),
        "--landmarks",
        str(args.landmarks),
        "--chunk-size",
        str(args.chunk_size),
        "--edge-block",
        str(args.edge_block),
        "--chunk-mb",
        str(args.chunk_mb),
        "--budget-mb",
        str(args.budget_mb),
    ]
    # glibc raises its dynamic mmap threshold after medium-sized frees,
    # after which numpy's transient arrays land on the brk heap and
    # fragment — freed phases then stack in the RSS high-water mark.
    # Pinning the threshold keeps every >=128KiB array mmap-backed so
    # each phase's scratch returns to the OS when released.
    env = dict(os.environ)
    env.setdefault("MALLOC_MMAP_THRESHOLD_", "131072")
    env.setdefault("MALLOC_TRIM_THRESHOLD_", "131072")
    env.setdefault("MALLOC_ARENA_MAX", "2")
    result = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if result.returncode != 0:
        raise RuntimeError(
            f"ingest/build child failed:\n{result.stdout}\n{result.stderr}"
        )
    return json.loads(result.stdout.strip().splitlines()[-1])


def _verify_served_answers(workdir: Path, pairs: int, seed: int) -> int:
    """Serve the snapshot sharded + memmapped; check answers against BFS."""
    from repro.graphs.disk_csr import open_disk_csr
    from repro.search.bfs import UNREACHED, bfs_distances
    from repro.serving import ShardedDistanceService

    graph = open_disk_csr(workdir / "graph.rpdc", mmap=True)
    service = ShardedDistanceService.from_snapshot(
        graph, workdir / "index.hl", shards=2, mmap=True
    )
    try:
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, graph.num_vertices, size=3)
        checked = 0
        for s in sources:
            truth = bfs_distances(graph, int(s))
            targets = rng.integers(0, graph.num_vertices, size=pairs // 3)
            for t in targets:
                got = service.query(int(s), int(t))
                want = truth[int(t)]
                want = float("inf") if want == UNREACHED else float(want)
                if got != want:
                    raise AssertionError(
                        f"served d({int(s)}, {int(t)}) = {got}, BFS says {want}"
                    )
                checked += 1
    finally:
        service.close()
    return checked


def _verify_byte_identity(workdir: Path, nodes: int, seed: int) -> int:
    """Medium graph: the out-of-core snapshot == the in-memory one, byte-wise."""
    from repro.core.ooc import build_snapshot_out_of_core
    from repro.core.query import HighwayCoverOracle
    from repro.core.serialization import save_oracle
    from repro.datasets.ingest import ingest_edge_list
    from repro.graphs.disk_csr import open_disk_csr
    from repro.landmarks.selection import select_landmarks

    text = workdir / "medium.txt"
    stream_synthetic_edges(text, nodes, 6, seed)
    csr_path = workdir / "medium.rpdc"
    ingest_edge_list(text, csr_path, name="medium")
    graph = open_disk_csr(csr_path, mmap=True)
    landmarks = select_landmarks(graph, 12)

    ooc_path = workdir / "medium-ooc.hl"
    build_snapshot_out_of_core(
        graph, landmarks, ooc_path, chunk_size=5, edge_block=1 << 15,
        release_graph_pages=True,
    )
    mem_path = workdir / "medium-mem.hl"
    oracle = HighwayCoverOracle(num_landmarks=12, landmarks=landmarks).build(
        open_disk_csr(csr_path, mmap=False)
    )
    save_oracle(oracle, mem_path)
    ooc_bytes = ooc_path.read_bytes()
    if ooc_bytes != mem_path.read_bytes():
        raise AssertionError(
            "out-of-core snapshot differs from the in-memory save_oracle path"
        )
    return len(ooc_bytes)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=1_000_000)
    parser.add_argument("--degree", type=int, default=16)
    parser.add_argument("--landmarks", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1729)
    parser.add_argument("--chunk-size", type=int, default=1)
    parser.add_argument("--edge-block", type=int, default=1 << 18)
    parser.add_argument("--chunk-mb", type=int, default=2)
    parser.add_argument("--budget-mb", type=int, default=8)
    parser.add_argument("--serve-pairs", type=int, default=60)
    parser.add_argument("--medium-nodes", type=int, default=30_000)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: 100k nodes, degree 8, baseline-relaxed RSS cap",
    )
    parser.add_argument(
        "-o",
        "--out",
        default=str(REPO_ROOT / "benchmarks" / "results" / "ingest.txt"),
        help="where to record the run (use '-' for stdout only)",
    )
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--edgelist", help=argparse.SUPPRESS)
    parser.add_argument("--workdir", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return _child_ingest_build(args)
    if args.smoke:
        args.nodes = min(args.nodes, 100_000)
        args.degree = 8
        args.medium_nodes = min(args.medium_nodes, 10_000)

    report_lines = [
        "# out-of-core ingest gauntlet",
        f"nodes={args.nodes} degree={args.degree} landmarks={args.landmarks} "
        f"seed={args.seed} smoke={args.smoke}",
        f"knobs: chunk_size={args.chunk_size} edge_block={args.edge_block} "
        f"chunk_mb={args.chunk_mb} budget_mb={args.budget_mb}",
    ]

    with tempfile.TemporaryDirectory(prefix="repro-gauntlet-") as tmp:
        workdir = Path(tmp)
        edgelist = workdir / "edges.txt"

        t0 = time.perf_counter()
        lines = stream_synthetic_edges(edgelist, args.nodes, args.degree, args.seed)
        gen_s = time.perf_counter() - t0
        report_lines.append(
            f"generate: {lines} edge lines, "
            f"{edgelist.stat().st_size >> 20}MiB text, {gen_s:.1f}s"
        )
        print(report_lines[-1])

        child = _run_child(args, edgelist, workdir)
        edge_bytes = 8 * child["num_directed_edges"]
        cap = RSS_FRACTION * edge_bytes + (BASELINE_BYTES if args.smoke else 0)
        peak = child["peak_rss_bytes"]
        report_lines += [
            f"ingest: n={child['num_vertices']} m={child['num_edges']} "
            f"(directed={child['num_directed_edges']}, "
            f"dups={child['duplicates']}, buckets={child['buckets']}) "
            f"-> {child['csr_bytes']} CSR bytes in {child['ingest_seconds']}s",
            f"build (out-of-core): k={args.landmarks}, "
            f"entries={child['entries']}, chunks={child['chunks']}, "
            f"{child['snapshot_bytes']} snapshot bytes in "
            f"{child['build_seconds']}s",
            f"peak RSS (ingest+build child): {peak / (1 << 20):.1f}MiB; "
            f"in-memory CSR footprint {edge_bytes / (1 << 20):.1f}MiB; "
            f"cap {RSS_FRACTION} x footprint"
            + (f" + {BASELINE_BYTES >> 20}MiB baseline" if args.smoke else "")
            + f" = {cap / (1 << 20):.1f}MiB",
        ]
        for line in report_lines[-3:]:
            print(line)
        if peak >= cap:
            print(f"FAIL: peak RSS {peak} >= cap {cap:.0f}", file=sys.stderr)
            return 1
        report_lines.append("rss-check: PASS (sublinear in edge count)")
        print(report_lines[-1])

        t0 = time.perf_counter()
        checked = _verify_served_answers(workdir, args.serve_pairs, args.seed)
        report_lines.append(
            f"serve: 2-shard mmap service answered {checked} sampled "
            f"queries; all matched BFS truth ({time.perf_counter() - t0:.1f}s)"
        )
        print(report_lines[-1])

        t0 = time.perf_counter()
        snap_bytes = _verify_byte_identity(workdir, args.medium_nodes, args.seed)
        report_lines.append(
            f"byte-identity: medium graph ({args.medium_nodes} nodes) "
            f"out-of-core snapshot == in-memory snapshot "
            f"({snap_bytes} bytes, {time.perf_counter() - t0:.1f}s)"
        )
        print(report_lines[-1])

    report_lines.append("gauntlet: PASS")
    print(report_lines[-1])
    if args.out != "-":
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text("\n".join(report_lines) + "\n")
        print(f"recorded {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
