"""Regenerate the committed corrupt-file fixtures for ``repro fsck`` tests.

Run from the repository root::

    PYTHONPATH=src python tools/make_durability_fixtures.py

Every fixture is derived deterministically (fixed graph seed, fixed
corruption offsets) from one clean snapshot and one clean WAL, so the
files are stable across regenerations and safe to commit. The manifest
maps each fixture to the fsck finding code it must trigger (``null``
for the clean files, which must pass); ``tests/test_fsck.py`` and the
CI ``durability-smoke`` job both consume it.
"""

import json
import struct
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.query import HighwayCoverOracle  # noqa: E402
from repro.core.serialization import save_oracle  # noqa: E402
from repro.core.wal import WriteAheadLog  # noqa: E402
from repro.graphs.disk_csr import (  # noqa: E402
    disk_csr_sections,
    read_disk_csr_header,
    write_graph_disk_csr,
)
from repro.graphs.generators import barabasi_albert_graph  # noqa: E402

FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "durability"


def main() -> None:
    """Write the clean bases and every corrupted derivative + manifest."""
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    manifest = {}

    graph = barabasi_albert_graph(60, 2, seed=97)
    oracle = HighwayCoverOracle(num_landmarks=4).build(graph)
    clean_hl = FIXTURE_DIR / "clean.hl"
    save_oracle(oracle, clean_hl)
    manifest["clean.hl"] = None
    snapshot = clean_hl.read_bytes()

    wal_path = FIXTURE_DIR / "clean.wal"
    wal_path.unlink(missing_ok=True)
    with WriteAheadLog(wal_path) as wal:
        wal.append("insert_edge", 0, 50)
        wal.append("insert_edge", 3, 40)
        wal.append("delete_edge", 0, 50)
    manifest["clean.wal"] = None
    log = wal_path.read_bytes()

    def put(name: str, data: bytes, code: str) -> None:
        (FIXTURE_DIR / name).write_bytes(data)
        manifest[name] = code

    # Snapshot corruptions — one per invariant fsck checks.
    put("truncated.hl", snapshot[: len(snapshot) // 2], "truncated-file")
    put("bad-magic.hl", b"XXXX" + snapshot[4:], "bad-magic")
    bad_version = bytearray(snapshot)
    struct.pack_into("<I", bad_version, 4, 73)
    put("bad-version.hl", bytes(bad_version), "bad-version")
    bad_offsets = bytearray(snapshot)
    # offsets is the third 64-byte-aligned section; recompute its start.
    from repro.core.serialization import _HEADER_STRUCT, _section_offsets

    header_end = 4 + struct.calcsize(_HEADER_STRUCT)
    _, flags, n, k, entries = struct.unpack(_HEADER_STRUCT, snapshot[4:header_end])
    sections = _section_offsets(2, n, k, entries, bool(flags & 1))
    struct.pack_into("<q", bad_offsets, sections[2], 7)
    put("bad-offsets.hl", bytes(bad_offsets), "offsets-base")

    # Disk-CSR corruptions — one per invariant fsck_disk_csr checks.
    clean_rpdc = FIXTURE_DIR / "clean.rpdc"
    write_graph_disk_csr(graph, clean_rpdc)
    manifest["clean.rpdc"] = None
    rpdc = clean_rpdc.read_bytes()
    header = read_disk_csr_header(clean_rpdc)
    indptr_start, indices_start, _ = disk_csr_sections(
        header.num_vertices,
        header.num_directed_edges,
        header.wide,
        len(header.name.encode("utf-8")),
    )

    put("truncated.rpdc", rpdc[: indices_start + 6], "truncated-file")
    put("bad-magic.rpdc", b"XXXX" + rpdc[4:], "bad-magic")
    bad_rpdc_version = bytearray(rpdc)
    struct.pack_into("<I", bad_rpdc_version, 4, 73)
    put("bad-version.rpdc", bytes(bad_rpdc_version), "bad-version")
    bad_indptr = bytearray(rpdc)
    struct.pack_into("<q", bad_indptr, indptr_start, 5)
    put("bad-indptr-base.rpdc", bytes(bad_indptr), "indptr-base")
    bad_range = bytearray(rpdc)
    struct.pack_into("<i", bad_range, indices_start, header.num_vertices + 9)
    put("bad-index-range.rpdc", bytes(bad_range), "index-range")
    # Reverse one multi-entry adjacency row to violate strict ordering.
    unsorted = bytearray(rpdc)
    row_lo = struct.unpack_from("<i", rpdc, indices_start)[0]
    unsorted_row = bytearray(rpdc[indices_start : indices_start + 8])
    unsorted[indices_start : indices_start + 4] = unsorted_row[4:8]
    unsorted[indices_start + 4 : indices_start + 8] = unsorted_row[0:4]
    assert row_lo != struct.unpack_from("<i", bytes(unsorted), indices_start)[0]
    put("unsorted-row.rpdc", bytes(unsorted), "row-order")

    # WAL corruptions.
    put("torn-tail.wal", log[:-9], "torn-tail")
    flipped = bytearray(log)
    flipped[-1] ^= 0xFF
    put("bad-checksum.wal", bytes(flipped), "bad-checksum")
    bad_length = bytearray(log)
    struct.pack_into("<I", bad_length, 8, 4096)
    put("bad-length.wal", bytes(bad_length), "bad-length")

    with (FIXTURE_DIR / "manifest.json").open("w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(manifest)} fixtures + manifest to {FIXTURE_DIR}")


if __name__ == "__main__":
    main()
