"""Check that every relative link in the documentation resolves.

Scans ``README.md`` and ``docs/*.md`` for markdown links and inline
code-path references, and verifies each non-external target exists in
the repository:

* ``[text](target)`` markdown links — external schemes (``http://``,
  ``https://``, ``mailto:``) are skipped; ``#anchor`` suffixes are
  stripped; bare ``#anchor`` self-links are checked against the file's
  own headings.
* Backtick-quoted repository paths like ``benchmarks/results/foo.txt``
  or ``src/repro/core/labels.py`` — only strings that look like paths
  (contain a ``/`` and end in a known extension) are checked, so prose
  stays free.

Run from the repository root (CI's docs job does)::

    python tools/check_links.py

Exits 0 when every link resolves, 1 otherwise (listing each failure).
``tests/test_docs.py`` runs the same check inside the tier-1 suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: ``[text](target)`` — target captured without the closing paren.
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Backtick path mentions: must contain a slash and a known suffix.
_CODE_PATH = re.compile(
    r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.(?:py|md|txt|yml|yaml|hl))`"
)
#: Markdown heading lines, for #anchor validation.
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation out."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\s→-]", "", text, flags=re.UNICODE)
    return re.sub(r"[\s→]+", "-", text).strip("-")


def check_file(path: Path, root: Path) -> List[str]:
    """All broken link targets in one markdown file."""
    text = path.read_text(encoding="utf-8")
    anchors = {_anchor_of(h) for h in _HEADING.findall(text)}
    problems: List[str] = []

    def resolve(target: str) -> None:
        if target.startswith(("http://", "https://", "mailto:")):
            return
        base, _, anchor = target.partition("#")
        if not base:  # pure #anchor: must name a heading in this file
            if anchor and _anchor_of(anchor) not in anchors and anchor not in anchors:
                problems.append(f"{path}: broken anchor #{anchor}")
            return
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link -> {target}")
        elif anchor and resolved.suffix == ".md":
            other = _HEADING.findall(resolved.read_text(encoding="utf-8"))
            other_anchors = {_anchor_of(h) for h in other}
            if _anchor_of(anchor) not in other_anchors:
                problems.append(
                    f"{path}: broken anchor {base}#{anchor}"
                )

    for match in _MD_LINK.finditer(text):
        resolve(match.group(1))
    for match in _CODE_PATH.finditer(text):
        candidate = match.group(1)
        if not (root / candidate).exists():
            problems.append(f"{path}: referenced path missing -> {candidate}")
    return problems


def main(root: Path = None) -> int:
    """Check README.md and docs/*.md under ``root``; 0 = all good."""
    root = Path(root) if root is not None else Path(__file__).resolve().parent.parent
    targets = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    problems: List[str] = []
    checked = 0
    for path in targets:
        if not path.exists():
            problems.append(f"missing documentation file: {path}")
            continue
        checked += 1
        problems.extend(check_file(path, root))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"all links resolve across {checked} documentation file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
