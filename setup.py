"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work on
environments whose setuptools lacks the ``bdist_wheel`` command."""

from setuptools import setup

setup()
