"""Context-aware web search: rank pages by distance to recently visited ones.

The paper's introduction motivates exact distance queries with web-graph
context-aware search: "ranking of web pages based on their distances to
recently visited web pages helps in finding the more relevant pages".
This example implements that ranking loop over a copying-model web crawl
surrogate, using HL for the distance kernel.

Run with::

    python examples/web_context_search.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import build_oracle
from repro.datasets.registry import load_dataset
from repro.graphs.sampling import sample_vertex_pairs


def context_score(oracle, page: int, context: list) -> float:
    """Relevance = inverse mean distance to the browsing context."""
    distances = [oracle.query(page, c) for c in context]
    finite = [d for d in distances if d != float("inf")]
    if not finite:
        return 0.0
    return 1.0 / (1.0 + sum(finite) / len(finite))


def main() -> None:
    graph = load_dataset("Indochina", scale=0.5)
    print(f"web crawl surrogate: n={graph.num_vertices:,}, m={graph.num_edges:,}")

    oracle = build_oracle(graph, "hl", num_landmarks=30)
    print(f"HL built in {oracle.construction_seconds:.2f}s (k=30 landmarks)")

    # A browsing session: three recently visited pages.
    rng = np.random.default_rng(11)
    context = [int(v) for v in rng.integers(0, graph.num_vertices, size=3)]
    print(f"browsing context: pages {context}")

    # Candidate result set from a (simulated) keyword match.
    candidates = sorted(
        int(v) for v in sample_vertex_pairs(graph, 200, seed=12)[:, 0]
    )

    t0 = time.perf_counter()
    ranked = sorted(
        ((context_score(oracle, page, context), page) for page in candidates),
        reverse=True,
    )
    elapsed = time.perf_counter() - t0

    print(f"\nranked {len(candidates)} candidates in {elapsed * 1e3:.1f}ms "
          f"({len(candidates) * len(context)} distance queries)")
    print("top results (closest to the browsing context):")
    for score, page in ranked[:5]:
        dists = [oracle.query(page, c) for c in context]
        print(f"  page {page:6d}  score={score:.3f}  distances={[int(d) for d in dists]}")
    print("tail results (unrelated to the context):")
    for score, page in ranked[-3:]:
        print(f"  page {page:6d}  score={score:.3f}")


if __name__ == "__main__":
    main()
