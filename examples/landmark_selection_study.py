"""Landmark selection ablation — the paper's stated future work.

Section 8: "For future work, we plan to investigate landmark selection
strategies for further improving the performance of labelling methods."
This example runs that investigation on a surrogate network: for each
strategy in :mod:`repro.landmarks`, it measures construction time, label
size, pair coverage and query time, showing why the paper's top-degree
choice is a strong default on complex networks.

Run with::

    python examples/landmark_selection_study.py
"""

from __future__ import annotations

import time

from repro import build_oracle
from repro.datasets.registry import load_dataset
from repro.graphs.sampling import sample_vertex_pairs
from repro.landmarks.selection import STRATEGIES
from repro.utils.formatting import format_bytes, format_table


def main() -> None:
    graph = load_dataset("LiveJournal", scale=0.5)
    pairs = sample_vertex_pairs(graph, 400, seed=21)
    print(
        f"surrogate: n={graph.num_vertices:,}, m={graph.num_edges:,}; "
        f"k=20 landmarks per strategy, {len(pairs)} query pairs"
    )

    rows = []
    for strategy in sorted(STRATEGIES):
        oracle = build_oracle(
            graph, "hl", num_landmarks=20, landmark_strategy=strategy
        )
        covered = sum(
            1 for s, t in pairs if oracle.is_covered(int(s), int(t))
        )
        t0 = time.perf_counter()
        for s, t in pairs:
            oracle.query(int(s), int(t))
        query_ms = (time.perf_counter() - t0) / len(pairs) * 1e3
        rows.append(
            [
                strategy,
                f"{oracle.construction_seconds:.2f}s",
                format_bytes(oracle.size_bytes()),
                f"{oracle.average_label_size():.1f}",
                f"{covered / len(pairs):.2f}",
                f"{query_ms:.3f}ms",
            ]
        )

    print()
    print(
        format_table(
            ["strategy", "CT", "index", "ALS", "coverage", "QT"], rows
        )
    )
    print(
        "\nReading: 'degree' (the paper's choice) maximizes coverage per unit\n"
        "of construction time on scale-free graphs; 'random' shows the floor;\n"
        "'degree_spread'/'betweenness' trade label size against coverage."
    )


if __name__ == "__main__":
    main()
