"""Closeness centrality over a social network with HL distance queries.

The paper's introduction motivates distance labelling with social network
analysis: centrality measures "require distances to be computed for a
large number of vertex pairs". This example does exactly that — it
estimates closeness centrality for candidate influencers on a synthetic
social graph, comparing the cost of HL-backed queries against raw
bidirectional BFS.

Run with::

    python examples/social_network_centrality.py
"""

from __future__ import annotations

import time

from repro import build_oracle
from repro.datasets.registry import load_dataset
from repro.graphs.sampling import sample_vertex_pairs


def estimate_closeness(oracle, vertex: int, samples) -> float:
    """Sampled closeness: inverse mean distance to random targets."""
    total = 0.0
    reached = 0
    for t in samples:
        d = oracle.query(vertex, int(t))
        if d != float("inf"):
            total += d
            reached += 1
    return reached / total if total else 0.0


def main() -> None:
    graph = load_dataset("Flickr", scale=0.5)
    print(f"social surrogate: n={graph.num_vertices:,}, m={graph.num_edges:,}")

    hl = build_oracle(graph, "hl", num_landmarks=20)
    print(f"HL built in {hl.construction_seconds:.2f}s")

    # Candidate influencers: a few hubs and a few random users.
    degrees = graph.degrees()
    hubs = [int(v) for v in degrees.argsort()[::-1][20:25]]  # below landmark tier
    randoms = [int(v) for v in sample_vertex_pairs(graph, 5, seed=3)[:, 0]]
    targets = sample_vertex_pairs(graph, 300, seed=4)[:, 1]

    t0 = time.perf_counter()
    scores = {
        v: estimate_closeness(hl, v, targets) for v in hubs + randoms
    }
    hl_time = time.perf_counter() - t0

    print("\ncloseness centrality (sampled, higher = more central):")
    for v, score in sorted(scores.items(), key=lambda kv: -kv[1]):
        tag = "hub " if v in hubs else "rand"
        print(f"  [{tag}] vertex {v:6d}  closeness={score:.4f}  degree={int(degrees[v])}")

    # Cost comparison against online search for the same workload.
    bibfs = build_oracle(graph, "bibfs")
    t0 = time.perf_counter()
    estimate_closeness(bibfs, hubs[0], targets[:60])
    bibfs_time = (time.perf_counter() - t0) * (len(targets) / 60) * len(scores)
    print(
        f"\nworkload cost: HL={hl_time:.2f}s vs Bi-BFS~{bibfs_time:.2f}s "
        f"(extrapolated) for {len(scores) * len(targets)} distance queries.\n"
        "At this surrogate scale the two are comparable; the paper's gap\n"
        "(Table 2: Bi-BFS 50-5000x slower) opens up with network size —\n"
        "rerun with a larger scale via load_dataset('Flickr', scale=4.0)."
    )


if __name__ == "__main__":
    main()
