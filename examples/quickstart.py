"""Quickstart: build a highway cover labelling and answer distance queries.

Run with::

    python examples/quickstart.py

Walks through the library's core loop on a synthetic scale-free network:
generate a graph, build the HL oracle (Algorithm 1 + the highway), answer
exact queries, and inspect the index the paper's Tables 2-3 measure.
"""

from __future__ import annotations

from repro import barabasi_albert_graph, build_oracle
from repro.graphs.sampling import sample_vertex_pairs
from repro.search.bfs import bfs_distance
from repro.utils.formatting import format_bytes


def main() -> None:
    # 1. A scale-free network (stand-in for a social graph).
    graph = barabasi_albert_graph(5000, 5, seed=7, name="quickstart-net")
    print(f"graph: n={graph.num_vertices:,} vertices, m={graph.num_edges:,} edges")

    # 2. Offline phase: 20 top-degree landmarks, one pruned BFS each.
    #    build_oracle is the registry-backed entry point; "hl" is the
    #    paper's method (see `python -m repro methods` for the rest).
    oracle = build_oracle(graph, "hl", num_landmarks=20)
    print(
        f"built HL in {oracle.construction_seconds:.2f}s; "
        f"avg label size = {oracle.average_label_size():.1f} entries; "
        f"index = {format_bytes(oracle.size_bytes())}"
    )

    # 3. Online phase: exact distance queries.
    pairs = sample_vertex_pairs(graph, 5, seed=1)
    for s, t in pairs:
        d = oracle.query(int(s), int(t))
        bound = oracle.upper_bound(int(s), int(t))
        verified = bfs_distance(graph, int(s), int(t))
        marker = "covered by landmarks" if bound == d else f"bound {bound:.0f}, refined"
        print(f"  d({int(s)}, {int(t)}) = {d:.0f}  [{marker}]  (BFS check: {verified:.0f})")

    # 4. The compressed HL(8) variant stores the same labels in 2B/entry.
    compact = build_oracle(graph, "hl8", num_landmarks=20)
    print(
        f"HL(8) index = {format_bytes(compact.size_bytes())} "
        f"(vs {format_bytes(oracle.size_bytes())} for 32-bit ids)"
    )


if __name__ == "__main__":
    main()
