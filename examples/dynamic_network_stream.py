"""Maintaining the HL index over a stream of edge insertions (extension).

Social networks grow continuously; rebuilding a distance index per edge
is wasteful. This example feeds a stream of new friendships into
:class:`~repro.core.dynamic.DynamicHighwayCoverOracle`, which repairs
only the landmarks whose shortest-path DAG the new edge can touch, and
cross-checks every batch against a from-scratch rebuild.

Run with::

    python examples/dynamic_network_stream.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import build_oracle
from repro.datasets.registry import load_dataset
from repro.graphs.sampling import sample_vertex_pairs


def main() -> None:
    graph = load_dataset("LiveJournal", scale=0.4)
    # dynamic=True selects the incrementally-updatable oracle variant
    # (Capability.DYNAMIC) through the same factory as everything else.
    oracle = build_oracle(graph, "hl", dynamic=True, num_landmarks=20)
    print(
        f"initial build: n={graph.num_vertices:,}, m={graph.num_edges:,}, "
        f"CT={oracle.construction_seconds:.2f}s"
    )

    rng = np.random.default_rng(42)
    total_repair = 0.0
    total_affected = 0
    inserted = 0
    while inserted < 25:
        u, v = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
        if u == v or oracle.graph.has_edge(u, v):
            continue
        t0 = time.perf_counter()
        affected = oracle.insert_edge(u, v)
        total_repair += time.perf_counter() - t0
        total_affected += len(affected)
        inserted += 1

    print(
        f"streamed {inserted} insertions: mean repair "
        f"{total_repair / inserted * 1e3:.1f}ms, mean landmarks re-BFS'd "
        f"{total_affected / inserted:.1f}/20 "
        f"(vs 20/20 for a rebuild per edge)"
    )

    # Verify: the maintained index answers exactly like a fresh build.
    fresh = build_oracle(
        oracle.graph, "hl", landmarks=[int(r) for r in oracle.highway.landmarks]
    )
    pairs = sample_vertex_pairs(oracle.graph, 300, seed=7)
    mismatches = sum(
        1
        for s, t in pairs
        if oracle.query(int(s), int(t)) != fresh.query(int(s), int(t))
    )
    print(f"cross-check vs rebuild on {len(pairs)} pairs: {mismatches} mismatches")
    print(f"label stores identical: {oracle.labelling == fresh.labelling}")


if __name__ == "__main__":
    main()
