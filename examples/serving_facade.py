"""Serving exact distances to concurrent callers with ``DistanceService``.

The production story the ROADMAP aims at: one process hosts several
graphs, worker threads fire point queries, the service coalesces them
into vectorized micro-batches, and dynamic edge updates land without a
single wrong answer being served.

Run with::

    python examples/serving_facade.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro import DistanceService, barabasi_albert_graph, watts_strogatz_graph
from repro.graphs.sampling import sample_vertex_pairs


def main() -> None:
    social = barabasi_albert_graph(4000, 5, seed=7, name="social")
    roads = watts_strogatz_graph(4000, 6, 0.05, seed=8, name="roads")

    with DistanceService(max_wait_ms=2.0) as service:
        # Host two graphs: a static oracle and a dynamic one.
        service.open("social", social, num_landmarks=20)
        service.open("roads", roads, num_landmarks=20, dynamic=True)
        print(f"serving graphs: {service.names()}")

        # 16 threads of mixed traffic against both graphs.
        pairs = {
            name: sample_vertex_pairs(g, 500, seed=3)
            for name, g in (("social", social), ("roads", roads))
        }

        def drive(name: str) -> None:
            for s, t in pairs[name]:
                service.query(name, int(s), int(t))

        threads = [
            threading.Thread(target=drive, args=(name,))
            for name in ("social", "roads")
            for _ in range(8)
        ]
        for t in threads:
            t.start()

        # Meanwhile: edges appear on the road network. Updates are
        # serialized against query batches, so every answer is exact
        # for whichever graph version it was served against.
        rng = np.random.default_rng(0)
        inserted = 0
        while inserted < 5:
            u, v = (int(x) for x in rng.integers(0, 4000, 2))
            if u == v or service.oracle("roads").graph.has_edge(u, v):
                continue
            service.insert_edge("roads", u, v)
            inserted += 1
        for t in threads:
            t.join()

        for name, stats in service.stats().items():
            print(
                f"{name}: {stats['queries']} queries in {stats['batches']} "
                f"batches (occupancy {stats['batch_occupancy']:.1f}), "
                f"{stats['qps']:,.0f} QPS, p99 {stats['p99_ms']:.2f}ms, "
                f"{stats['updates']} updates (version {stats['version']})"
            )


if __name__ == "__main__":
    main()
