"""Scalability sweep: construction cost vs network size (Figure 1(b)'s story).

The paper's headline is that HL is the only labelling method that reaches
billion-scale inputs. We cannot host billions of edges in pure Python,
but we can measure the *scaling law* the claim rests on: Algorithm 1's
construction cost is ~linear in the number of edges (one pruned BFS per
landmark, each touching every edge a constant number of times), while
PLL's grows super-linearly with size.

Run with::

    python examples/billion_scale_simulation.py
"""

from __future__ import annotations

import time

from repro import barabasi_albert_graph, build_oracle
from repro.errors import ConstructionBudgetExceeded
from repro.utils.formatting import format_table


def main() -> None:
    sizes = [2_000, 8_000, 32_000, 64_000]
    rows = []
    for n in sizes:
        graph = barabasi_albert_graph(n, 6, seed=5, name=f"sweep-{n}")
        hl = build_oracle(graph, "hl", num_landmarks=20)

        pll_cell = "-"
        try:
            pll = build_oracle(graph, "pll", budget_s=20)
            pll_cell = f"{pll.construction_seconds:.2f}s"
        except ConstructionBudgetExceeded:
            pll_cell = "DNF(20s)"

        rows.append(
            [
                f"{n:,}",
                f"{graph.num_edges:,}",
                f"{hl.construction_seconds:.2f}s",
                pll_cell,
            ]
        )
        print(f"n={n:,} done (HL {hl.construction_seconds:.2f}s, PLL {pll_cell})")

    print()
    print(format_table(["n", "m", "HL CT", "PLL CT"], rows))

    # Fit the scaling: CT ratio vs edge ratio across the sweep.
    first, last = rows[0], rows[-1]
    m_ratio = int(last[1].replace(",", "")) / int(first[1].replace(",", ""))
    ct_ratio = float(last[2][:-1]) / max(float(first[2][:-1]), 1e-9)
    print(
        f"\nedges grew {m_ratio:.0f}x; HL construction grew {ct_ratio:.0f}x "
        f"-> near-linear scaling, the property behind the paper's 8B-edge run."
    )


if __name__ == "__main__":
    main()
