"""Scalability sweep: construction cost vs size, then sharded serving.

The paper's headline is that HL is the only labelling method that
reaches billion-scale inputs. We cannot host billions of edges in pure
Python, but we can measure the two properties the claim rests on:

1. **Construction scales ~linearly in edges** — Algorithm 1 is one
   pruned BFS per landmark, each touching every edge a constant number
   of times, while PLL's cost grows super-linearly (it DNFs first).
2. **Serving scales horizontally** — a built index is one immutable v2
   snapshot that any number of worker processes map zero-copy
   (`np.memmap`, one shared page-cache copy), so query capacity grows
   by adding processes, not by re-building or duplicating the index.
   The final phase serves the largest graph of the sweep through a
   4-worker :class:`~repro.serving.ShardedDistanceService` and verifies
   the scattered answers byte-identical to the in-process engine.

Run with::

    python examples/billion_scale_simulation.py

(The output of a full run is recorded in ``docs/serving.md``.)
"""

from __future__ import annotations

import tempfile
import time

from repro import barabasi_albert_graph, build_oracle
from repro.errors import ConstructionBudgetExceeded
from repro.graphs.sampling import sample_vertex_pairs
from repro.serving import ShardedDistanceService
from repro.utils.formatting import format_table

NUM_SHARDS = 4
NUM_SERVE_PAIRS = 20_000


def construction_sweep():
    """HL vs PLL construction across a 32x edge-count sweep."""
    sizes = [2_000, 8_000, 32_000, 64_000]
    rows = []
    edge_counts = []
    build_times = []
    graph = hl = None
    for n in sizes:
        graph = barabasi_albert_graph(n, 6, seed=5, name=f"sweep-{n}")
        hl = build_oracle(graph, "hl", num_landmarks=20)
        edge_counts.append(graph.num_edges)
        build_times.append(hl.construction_seconds)

        pll_cell = "-"
        try:
            pll = build_oracle(graph, "pll", budget_s=20)
            pll_cell = f"{pll.construction_seconds:.2f}s"
        except ConstructionBudgetExceeded:
            pll_cell = "DNF(20s)"

        rows.append(
            [
                f"{n:,}",
                f"{graph.num_edges:,}",
                f"{hl.construction_seconds:.3f}s",
                pll_cell,
            ]
        )
        print(f"n={n:,} done (HL {hl.construction_seconds:.3f}s, PLL {pll_cell})")

    print()
    print(format_table(["n", "m", "HL CT", "PLL CT"], rows))

    # Fit the scaling: CT ratio vs edge ratio across the sweep.
    m_ratio = edge_counts[-1] / edge_counts[0]
    ct_ratio = build_times[-1] / max(build_times[0], 1e-3)
    print(
        f"\nedges grew {m_ratio:.0f}x; HL construction grew {ct_ratio:.0f}x "
        f"-> near-linear scaling, the property behind the paper's 8B-edge run."
    )
    return graph, hl


def sharded_serving_demo(graph, oracle) -> None:
    """Serve the sweep's largest graph from NUM_SHARDS worker processes.

    The index built in the sweep is saved once and served as-is
    (``from_snapshot``): every worker maps the same file zero-copy, no
    second construction.
    """
    print(
        f"\nserving n={graph.num_vertices:,} through "
        f"{NUM_SHARDS} snapshot-sharing worker processes..."
    )
    pairs = sample_vertex_pairs(graph, NUM_SERVE_PAIRS, seed=11)

    t0 = time.perf_counter()
    expected = oracle.query_many(pairs)
    single_s = time.perf_counter() - t0

    snapshot_dir = tempfile.TemporaryDirectory(prefix="repro-example-")
    snapshot = f"{snapshot_dir.name}/sweep.hl"
    oracle.save(snapshot)
    with ShardedDistanceService.from_snapshot(
        graph, snapshot, shards=NUM_SHARDS
    ) as service:
        t0 = time.perf_counter()
        served = service.query_many(pairs)
        sharded_s = time.perf_counter() - t0
        hot = pairs[:500]
        for s, t in hot:  # prime the in-front LRU cache
            service.query(int(s), int(t))
        t0 = time.perf_counter()
        for s, t in hot:
            service.query(int(s), int(t))
        cached_s = max(time.perf_counter() - t0, 1e-9)
        stats = service.stats()
    snapshot_dir.cleanup()

    exact = bool((served == expected).all())
    print(
        format_table(
            ["config", "pairs", "wall", "QPS"],
            [
                ["in-process engine", len(pairs), f"{single_s:.2f}s",
                 f"{len(pairs) / single_s:,.0f}"],
                [f"sharded x{NUM_SHARDS}", len(pairs), f"{sharded_s:.2f}s",
                 f"{len(pairs) / sharded_s:,.0f}"],
                ["cached hot pairs", len(hot), f"{cached_s:.3f}s",
                 f"{len(hot) / cached_s:,.0f}"],
            ],
        )
    )
    print(
        f"exact: {'all' if exact else 'NOT all'} {len(pairs):,} sharded "
        f"answers byte-identical; cache hits {stats['cache']['hits']:,}; "
        f"one {stats['shards']}-way shared snapshot at {stats['snapshot']}"
    )


def main() -> None:
    graph, oracle = construction_sweep()
    sharded_serving_demo(graph, oracle)


if __name__ == "__main__":
    main()
