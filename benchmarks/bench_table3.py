"""Benchmark + regeneration of Table 3 (labelling sizes)."""

from conftest import save_and_print

from repro.experiments import table3


def test_table3_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(
        lambda: table3.run(bench_config), rounds=1, iterations=1
    )
    assert len(rows) == 12
    # The paper's headline ordering on every dataset where methods finish:
    # HL(8) < HL < FD.
    for row in rows:
        hl8 = row.measurements["HL(8)"]
        hl = row.measurements["HL"]
        fd = row.measurements["FD"]
        assert hl8.finished and hl.finished and fd.finished
        assert hl8.size_bytes < hl.size_bytes < fd.size_bytes
    save_and_print(
        results_dir,
        "table3",
        f"Table 3 (scale={bench_config.scale}, k=20)",
        table3.render(rows),
    )
