"""Benchmark: kernel backends on the single-query hot path.

The kernel layer (:mod:`repro.core.kernels`) hosts the three query hot
loops — highway-row decode, the Eq. 4 label-intersection bound, and the
Algorithm 2 bounded bidirectional BFS — behind swappable backends. This
benchmark answers the same random-pair workload through ``oracle.query``
once per available backend, asserts the distances are **byte-identical**
across backends, and reports per-query latency. The acceptance bar: on
the full workload (20k-vertex BA, k=20) the best compiled backend must
beat the interpreted ``numpy`` reference by **>= 10x** on single-query
latency. The batch path (``query_many``) is reported per backend too,
since the stacked multi-target kernel also moved behind the seam.

``pyloop`` (the pure-Python mirror of the compiled loops, kept for
debugging) is measured on a slice of the workload — it exists for
readability, not speed.

Environment knobs (for CI smoke runs):

* ``REPRO_BENCH_KERNEL_N`` — graph size (default 20000).
* ``REPRO_BENCH_KERNEL_PAIRS`` — workload size (default 400).

Run standalone with ``python benchmarks/bench_kernels.py`` (``--smoke``
for the small CI configuration, which asserts exactness across backends
but relaxes the 10x bar — tiny graphs leave the BFS too shallow to
amortize). Results are recorded in ``benchmarks/results/kernels.txt``.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from conftest import RESULTS_DIR, save_and_print

from repro.core.kernels import available_kernels, get_kernel
from repro.core.query import HighwayCoverOracle
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.utils.formatting import format_table

NUM_VERTICES = int(os.environ.get("REPRO_BENCH_KERNEL_N", "20000"))
NUM_PAIRS = int(os.environ.get("REPRO_BENCH_KERNEL_PAIRS", "400"))
NUM_LANDMARKS = 20
#: Acceptance bar on the full workload (ISSUE 7): best compiled backend
#: vs the numpy reference on single-query latency.
FULL_WORKLOAD_SPEEDUP = 10.0
#: pyloop gets a slice of the workload — it is the readable mirror of
#: the compiled loops, not a contender.
PYLOOP_PAIRS = 40


def _time_point_queries(oracle, pairs) -> float:
    """Best-of-3 wall time for the looped scalar query path."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for s, t in pairs:
            oracle.query(int(s), int(t))
        best = min(best, time.perf_counter() - start)
    return best


def main(smoke: bool = False) -> int:
    global NUM_VERTICES, NUM_PAIRS
    if smoke:
        NUM_VERTICES = min(NUM_VERTICES, 1500)
        NUM_PAIRS = min(NUM_PAIRS, 200)

    graph = barabasi_albert_graph(NUM_VERTICES, 3, seed=7, name="kernel-bench")
    oracle = HighwayCoverOracle(num_landmarks=NUM_LANDMARKS).build(graph)
    pairs = sample_vertex_pairs(graph, NUM_PAIRS, seed=9)
    print(
        f"kernel benchmark: n={graph.num_vertices:,}, m={graph.num_edges:,}, "
        f"k={NUM_LANDMARKS}, {NUM_PAIRS:,} pairs, "
        f"backends={', '.join(available_kernels())}"
    )

    rows = []
    per_query_us = {}
    reference = None
    for name in available_kernels():
        backend = get_kernel(name)
        oracle.set_kernel(name)
        subset = pairs[:PYLOOP_PAIRS] if name == "pyloop" else pairs
        oracle.query(int(subset[0, 0]), int(subset[0, 1]))  # warm caches/JIT
        point_s = _time_point_queries(oracle, subset)
        point = np.array(
            [oracle.query(int(s), int(t)) for s, t in subset], dtype=float
        )
        oracle.query_many(pairs[:16])
        start = time.perf_counter()
        batch = oracle.query_many(pairs)
        batch_s = time.perf_counter() - start

        if reference is None:
            reference = (name, point, batch)
        else:
            ref_name, ref_point, ref_batch = reference
            assert np.array_equal(point, ref_point[: len(point)]), (
                f"kernel {name!r} point queries diverged from {ref_name!r}"
            )
            assert np.array_equal(batch, ref_batch), (
                f"kernel {name!r} query_many diverged from {ref_name!r}"
            )

        per_query_us[name] = point_s / len(subset) * 1e6
        rows.append(
            [
                name,
                "yes" if backend.compiled else "no",
                "yes" if backend.releases_gil else "no",
                f"{per_query_us[name]:.1f}",
                f"{batch_s / len(pairs) * 1e6:.1f}",
                "",  # speedup column filled below
            ]
        )

    numpy_us = per_query_us["numpy"]
    for row in rows:
        row[-1] = f"{numpy_us / per_query_us[row[0]]:.1f}x"

    rendered = format_table(
        ["backend", "compiled", "no-GIL", "query [us]", "batch [us/pair]",
         "vs numpy"],
        rows,
    )
    title = (
        f"Kernel backends: single-query latency and batch throughput "
        f"(n={graph.num_vertices:,}, k={NUM_LANDMARKS}, {NUM_PAIRS:,} pairs"
        f"{', smoke' if smoke else ''})"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    save_and_print(RESULTS_DIR, "kernels", title, rendered)

    compiled = [n for n in per_query_us if get_kernel(n).compiled]
    print(
        f"exactness: all backends byte-identical on the shared workload; "
        f"compiled backends: {', '.join(compiled) or 'none'}"
    )
    if compiled:
        best = min(compiled, key=per_query_us.get)
        speedup = numpy_us / per_query_us[best]
        if not smoke and speedup < FULL_WORKLOAD_SPEEDUP:
            print(
                f"FAIL: best compiled backend {best!r} is {speedup:.1f}x vs "
                f"numpy, below the {FULL_WORKLOAD_SPEEDUP:.0f}x acceptance "
                f"bar",
                file=sys.stderr,
            )
            return 1
    elif not smoke:
        print(
            "WARN: no compiled backend available (numba absent, no C "
            "compiler); the 10x bar was not exercised",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv))
