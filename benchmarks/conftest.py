"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` (default 0.15) sizes the surrogates;
``REPRO_BENCH_BUDGET_S`` (default 6) is the per-method construction
budget that produces the paper's DNF cells. Rendered tables are written
to ``benchmarks/results/`` *and* echoed through the pytest-benchmark
``extra_info`` mechanism.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=float(os.environ.get("REPRO_BENCH_SCALE", "0.15")),
        num_landmarks=20,
        num_query_pairs=int(os.environ.get("REPRO_BENCH_PAIRS", "200")),
        num_online_pairs=30,
        construction_budget_s=float(os.environ.get("REPRO_BENCH_BUDGET_S", "6")),
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: Path, name: str, title: str, rendered: str) -> None:
    """Persist a rendered table and echo it to stdout (shown with -s)."""
    path = results_dir / f"{name}.txt"
    path.write_text(title + "\n" + rendered + "\n")
    print(f"\n{title}\n{rendered}\n[saved to {path}]")
