"""Benchmark + regeneration of Figure 1 (overview panels a-c)."""

from conftest import save_and_print

from repro.experiments import figure1


def test_figure1_report(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        lambda: figure1.run(bench_config), rounds=1, iterations=1
    )
    # Panel (c)'s HL claims are verified, not asserted from a table.
    assert result.hl_hwc_minimal_verified
    # Panel (a): HL's index is the smallest among the labelling hybrids.
    sizes = {m.method: m.size_bytes for m in result.panel_a if m.finished}
    if "FD" in sizes and "HL" in sizes:
        assert sizes["HL"] < sizes["FD"]
    # Online methods carry no index.
    assert sizes.get("Bi-BFS", 0) == 0
    save_and_print(
        results_dir,
        "figure1",
        f"Figure 1 (scale={bench_config.scale})",
        figure1.render(result),
    )
