"""Benchmark: stacked construction engine (HL-C) vs. the looped builder.

Construction is the dominant cost on large graphs, so the number that
matters is how fast Algorithm 1 runs at realistic landmark counts. This
benchmark builds the labelling twice on BA / WS / grid graphs at
k ∈ {16, 64} — once with the stacked bit-parallel engine and once with
the paper-literal looped builder — asserts the outputs are byte
identical, and reports the speedups. The acceptance bar is >= 3x on the
default 20k-vertex BA graph at k=64; the grid row is expected to be the
least favourable (high diameter means many near-empty dense levels) and
is reported for honesty, not asserted.

Environment knobs (for CI smoke runs):

* ``REPRO_BENCH_CONS_N`` — graph size (default 20000).

Run standalone with ``python benchmarks/bench_construction.py``
(``--smoke`` for the small CI configuration).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import save_and_print

from repro.core.construction import build_highway_cover_labelling
from repro.core.construction_engine import build_highway_cover_labelling_stacked
from repro.graphs.generators import (
    barabasi_albert_graph,
    grid_graph,
    watts_strogatz_graph,
)
from repro.landmarks.selection import select_landmarks
from repro.utils.formatting import format_table

NUM_VERTICES = int(os.environ.get("REPRO_BENCH_CONS_N", "20000"))
LANDMARK_COUNTS = (16, 64)
#: The acceptance bar (BA graph, k=64) on the full default workload;
#: smoke workloads amortize less, so the bar scales down with size.
FULL_WORKLOAD_SPEEDUP = 3.0


def _graphs():
    side = max(2, int(round(NUM_VERTICES ** 0.5)))
    return [
        ("ba", barabasi_albert_graph(NUM_VERTICES, 3, seed=7)),
        ("ws", watts_strogatz_graph(NUM_VERTICES, 6, 0.05, seed=3)),
        ("grid", grid_graph(side, side)),
    ]


def _time_best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_stacked_builder_speedup(results_dir):
    """Engine vs looped builder: identical bytes, >= 3x on BA at k=64."""
    rows = []
    ba_speedup_at_64 = None
    for name, graph in _graphs():
        for k in LANDMARK_COUNTS:
            landmarks = select_landmarks(graph, min(k, graph.num_vertices))
            looped_labels, looped_highway = build_highway_cover_labelling(
                graph, landmarks, engine="looped"
            )
            stacked_labels, stacked_highway = build_highway_cover_labelling_stacked(
                graph, landmarks
            )
            assert stacked_labels == looped_labels, f"{name} k={k}: labels diverged"
            assert np.array_equal(
                stacked_highway.matrix, looped_highway.matrix
            ), f"{name} k={k}: highway diverged"

            looped_s = _time_best(
                lambda: build_highway_cover_labelling(graph, landmarks, engine="looped")
            )
            stacked_s = _time_best(
                lambda: build_highway_cover_labelling_stacked(graph, landmarks)
            )
            speedup = looped_s / stacked_s
            if name == "ba" and k == 64:
                ba_speedup_at_64 = speedup
            rows.append(
                [
                    name,
                    f"{graph.num_vertices:,}",
                    k,
                    f"{looped_s:.3f}",
                    f"{stacked_s:.3f}",
                    f"{speedup:.1f}x",
                ]
            )

    required = FULL_WORKLOAD_SPEEDUP if NUM_VERTICES >= 20_000 else 1.0
    assert ba_speedup_at_64 is not None
    assert ba_speedup_at_64 >= required, (
        f"stacked engine speedup {ba_speedup_at_64:.1f}x below the "
        f"{required:.1f}x bar (BA n={NUM_VERTICES}, k=64)"
    )
    save_and_print(
        results_dir,
        "construction",
        f"Stacked construction engine (HL-C) vs looped builder "
        f"(n={NUM_VERTICES}, k in {list(LANDMARK_COUNTS)})",
        format_table(
            ["graph", "n", "k", "looped [s]", "stacked [s]", "speedup"],
            rows,
        ),
    )


def test_stacked_build_throughput(benchmark):
    """Raw engine throughput at k=64 on the BA graph (pytest-benchmark)."""
    graph = barabasi_albert_graph(NUM_VERTICES, 3, seed=7)
    landmarks = select_landmarks(graph, 64)
    build_highway_cover_labelling_stacked(graph, landmarks)  # warm caches
    benchmark.pedantic(
        lambda: build_highway_cover_labelling_stacked(graph, landmarks),
        rounds=3,
        iterations=1,
    )


if __name__ == "__main__":  # standalone: python benchmarks/bench_construction.py
    import pytest
    import sys

    argv = sys.argv[1:]
    if "--smoke" in argv:
        argv.remove("--smoke")
        os.environ.setdefault("REPRO_BENCH_CONS_N", "2000")
    raise SystemExit(pytest.main([__file__, "-q", "-s"] + argv))
