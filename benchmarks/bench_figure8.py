"""Benchmark + regeneration of Figure 8 (label sizes vs #landmarks)."""

from conftest import save_and_print

from repro.experiments import figure8


def test_figure8_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(
        lambda: figure8.run(bench_config), rounds=1, iterations=1
    )
    assert len(rows) == 12
    for row in rows:
        # Growth with k, and HL-50 no larger than FD-20 on most datasets
        # (the paper's headline comparison).
        assert row.hl_size_bytes[50] > row.hl_size_bytes[10]
    below = sum(1 for row in rows if row.hl_size_bytes[50] <= row.fd_size_bytes)
    assert below >= 9, [
        (row.dataset, row.hl_size_bytes[50], row.fd_size_bytes) for row in rows
    ]
    save_and_print(
        results_dir,
        "figure8",
        f"Figure 8 (scale={bench_config.scale})",
        figure8.render(rows),
    )
