"""Benchmark + regeneration of Figure 6 (distance distributions)."""

from conftest import save_and_print

from repro.experiments import figure6


def test_figure6_report(benchmark, bench_config, results_dir):
    series = benchmark.pedantic(
        lambda: figure6.run(bench_config), rounds=1, iterations=1
    )
    assert len(series) == 12
    # The paper's observation: most pairs sit at small distances (2-8).
    for s in series:
        mass_2_to_8 = sum(
            frac for dist, frac in s.distribution.items() if 2 <= dist <= 8
        )
        assert mass_2_to_8 > 0.5, (s.dataset, s.distribution)
    save_and_print(
        results_dir,
        "figure6",
        f"Figure 6 (scale={bench_config.scale}, "
        f"{bench_config.num_query_pairs} pairs/dataset)",
        figure6.render(series),
    )
