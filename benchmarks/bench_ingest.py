"""Benches for the out-of-core ingest pipeline (docs/ingest.md).

Micro-benches compare the streamed external-memory paths against their
in-memory equivalents (same outputs, bounded RSS), and the smoke-sized
gauntlet records an end-to-end streamed-ingest → out-of-core-build →
serve run.  The committed ``results/ingest.txt`` is the full
million-node gauntlet (``PYTHONPATH=src python tools/gauntlet.py``);
the smoke run here writes ``results/ingest-smoke.txt`` so it never
clobbers that record.
"""

import subprocess
import sys
import time
from pathlib import Path

import numpy as np
from conftest import save_and_print

from repro.core.ooc import build_snapshot_out_of_core
from repro.core.query import HighwayCoverOracle
from repro.core.serialization import save_oracle
from repro.datasets.ingest import ingest_edge_list
from repro.graphs.disk_csr import open_disk_csr
from repro.graphs.io import read_edge_list, write_edge_list
from repro.landmarks.selection import select_landmarks
from repro.utils.formatting import format_bytes, format_table

REPO_ROOT = Path(__file__).resolve().parent.parent


def _edge_list(tmp_path: Path, scale: float) -> Path:
    from repro.datasets.registry import load_dataset

    graph = load_dataset("Skitter", scale=scale)
    path = tmp_path / "skitter.txt"
    write_edge_list(graph, path)
    return path


def test_streamed_ingest_vs_in_memory(
    benchmark, bench_config, results_dir, tmp_path
):
    """Streamed ingest produces read_edge_list's graph at comparable cost."""
    source = _edge_list(tmp_path, bench_config.scale)

    def run():
        rows = []
        t0 = time.perf_counter()
        memory_graph = read_edge_list(source)
        rows.append(
            [
                "read_edge_list (in-memory)",
                f"{time.perf_counter() - t0:.3f}s",
                format_bytes(memory_graph.size_bytes),
            ]
        )
        t0 = time.perf_counter()
        report = ingest_edge_list(source, tmp_path / "g.rpdc")
        rows.append(
            [
                "ingest_edge_list (streamed)",
                f"{time.perf_counter() - t0:.3f}s",
                format_bytes(report.bytes_written),
            ]
        )
        disk_graph = open_disk_csr(tmp_path / "g.rpdc")
        assert np.array_equal(disk_graph.csr.indptr, memory_graph.csr.indptr)
        assert np.array_equal(disk_graph.csr.indices, memory_graph.csr.indices)
        return format_table(["path", "time", "bytes"], rows)

    rendered = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "ingest_micro",
        "streamed ingest vs in-memory parse (identical graphs)",
        rendered,
    )


def test_out_of_core_build_vs_in_memory(
    benchmark, bench_config, results_dir, tmp_path
):
    """The spill-to-disk builder matches save_oracle byte-for-byte."""
    source = _edge_list(tmp_path, bench_config.scale)
    ingest_edge_list(source, tmp_path / "g.rpdc")
    graph = open_disk_csr(tmp_path / "g.rpdc")
    landmarks = select_landmarks(graph, bench_config.num_landmarks)

    def run():
        rows = []
        t0 = time.perf_counter()
        oracle = HighwayCoverOracle(
            num_landmarks=len(landmarks), landmarks=landmarks
        ).build(open_disk_csr(tmp_path / "g.rpdc", mmap=False))
        save_oracle(oracle, tmp_path / "mem.hl")
        rows.append(["stacked + save_oracle", f"{time.perf_counter() - t0:.3f}s"])
        t0 = time.perf_counter()
        build_snapshot_out_of_core(
            graph,
            landmarks,
            tmp_path / "ooc.hl",
            edge_block=1 << 18,
            release_graph_pages=True,
        )
        rows.append(["out-of-core spill", f"{time.perf_counter() - t0:.3f}s"])
        identical = (
            (tmp_path / "ooc.hl").read_bytes()
            == (tmp_path / "mem.hl").read_bytes()
        )
        assert identical, "out-of-core snapshot diverged from save_oracle"
        rows.append(["byte-identical", "yes"])
        return format_table(["builder", "result"], rows)

    rendered = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "ingest_build",
        "out-of-core snapshot build vs in-memory (byte-identical)",
        rendered,
    )


def test_gauntlet_smoke(benchmark, results_dir):
    """The CI-sized gauntlet: 100k streamed nodes, RSS bound asserted."""

    def run():
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "gauntlet.py"),
                "--smoke",
                "-o",
                str(results_dir / "ingest-smoke.txt"),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        return result.stdout

    output = benchmark.pedantic(run, rounds=1, iterations=1)
    print(output)
