"""Benchmark: process-sharded serving vs the single-process service.

The sharding claim of ISSUE 5: Python's GIL caps one process at a
single core of label-scan throughput, so
:class:`~repro.serving.ShardedDistanceService` — N worker processes
mapping **one immutable v2 snapshot** via ``np.memmap`` (zero-copy, one
shared page-cache copy) — should deliver **>= 2x bulk-query throughput
at 4 workers** over the single-process ``DistanceService`` on a
20k-node graph, while staying **byte-identical** on every answer.

Configurations over the same randomized bulk workload (split into
``NUM_BATCHES`` ``query_many`` calls, the shape of a serving frontend
draining request windows):

1. **single-process** — one ``DistanceService`` hosting the oracle;
   every batch runs on one core (the GIL-bound baseline).
2. **sharded xN** — the same workload through
   ``ShardedDistanceService``; each batch is scattered into per-worker
   sub-batches, answered in parallel processes, and reassembled in
   order.
3. **cached points** — a hot-pair point-query phase answered by the
   in-front :class:`~repro.serving.QueryCache` (no worker round trip at
   all), the cache layer's recorded contribution.

Exactness (byte-identity against the single-process engine, both for
the bulk phase and after a dynamic ``insert_edge`` broadcast) is
**asserted unconditionally**. The >= 2x speedup bar is asserted only
when the machine actually has >= 4 physical cores and the run is not
``--smoke``: scatter/gather across processes cannot beat one process on
fewer cores than workers (the recorded results name the core count, so
the number is interpretable wherever it was measured).

Environment knobs (for CI smoke runs):

* ``REPRO_BENCH_SHARD_N`` — graph size (default 20000).
* ``REPRO_BENCH_SHARD_PAIRS`` — workload size (default 40000).
* ``REPRO_BENCH_SHARD_WORKERS`` — worker processes (default 4).

Run standalone with ``python benchmarks/bench_sharding.py`` (``--smoke``
for the small CI configuration: 2 workers, exactness asserted, speedup
recorded but not gated). Results land in
``benchmarks/results/sharding.txt``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

import numpy as np

from conftest import RESULTS_DIR, save_and_print

from repro.api import build_oracle
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.serving import DistanceService, ShardedDistanceService
from repro.utils.formatting import format_table

NUM_VERTICES = int(os.environ.get("REPRO_BENCH_SHARD_N", "20000"))
NUM_PAIRS = int(os.environ.get("REPRO_BENCH_SHARD_PAIRS", "40000"))
NUM_WORKERS = int(os.environ.get("REPRO_BENCH_SHARD_WORKERS", "4"))
NUM_LANDMARKS = 20
#: query_many calls the workload is split into (a serving frontend
#: draining request windows, not one monolithic array).
NUM_BATCHES = 16
#: Hot pairs for the cache phase.
NUM_HOT_PAIRS = 512
#: Acceptance bar (ISSUE 5): sharded vs single-process bulk throughput
#: at 4 workers — asserted only on machines with >= BAR_MIN_CORES cores.
SHARDED_SPEEDUP = 2.0
BAR_MIN_CORES = 4


def main(smoke: bool = False) -> int:
    global NUM_VERTICES, NUM_PAIRS, NUM_WORKERS
    if smoke:
        NUM_VERTICES = min(NUM_VERTICES, 2000)
        NUM_PAIRS = min(NUM_PAIRS, 4000)
        NUM_WORKERS = min(NUM_WORKERS, 2)

    cores = os.cpu_count() or 1
    graph = barabasi_albert_graph(NUM_VERTICES, 3, seed=7, name="shard-bench")
    oracle = build_oracle(graph, "hl", num_landmarks=NUM_LANDMARKS)
    pairs = sample_vertex_pairs(graph, NUM_PAIRS, seed=1)
    batches = np.array_split(pairs, NUM_BATCHES)
    print(
        f"sharding benchmark: n={graph.num_vertices:,}, "
        f"m={graph.num_edges:,}, k={NUM_LANDMARKS}, {NUM_PAIRS:,} pairs in "
        f"{NUM_BATCHES} batches, {NUM_WORKERS} workers, {cores} cores"
    )

    # 1. Single-process baseline: the thread-coalescing service (its
    # bulk path is one vectorized query_many per batch on one core).
    with DistanceService() as service:
        service.register("bench", oracle)
        t0 = time.perf_counter()
        expected = np.concatenate(
            [service.query_many("bench", batch) for batch in batches]
        )
        single_s = time.perf_counter() - t0

    # 2. Process-sharded: the same already-built index, saved once and
    # mapped by every worker (no second construction).
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-sharding-")
    snapshot = f"{tmpdir.name}/bench.hl"
    oracle.save(snapshot)
    with ShardedDistanceService.from_snapshot(
        graph, snapshot, shards=NUM_WORKERS
    ) as sharded_service:
        t0 = time.perf_counter()
        sharded = np.concatenate(
            [sharded_service.query_many(batch) for batch in batches]
        )
        sharded_s = time.perf_counter() - t0

        # 3. Cache phase: prime the hot set, then re-serve it.
        hot = pairs[:NUM_HOT_PAIRS]
        for s, t in hot:
            sharded_service.query(int(s), int(t))
        t0 = time.perf_counter()
        cached = np.array(
            [sharded_service.query(int(s), int(t)) for s, t in hot]
        )
        cached_s = max(time.perf_counter() - t0, 1e-9)
        stats = sharded_service.stats()

        # 4. Exactness under a dynamic update broadcast: workers re-map
        # the published generation and answers still match a fresh view.
        u, v = 1, NUM_VERTICES - 2
        if not graph.has_edge(u, v):
            sharded_service.insert_edge(u, v)
            updated_graph = graph.with_edges_added([(u, v)])
            fresh = build_oracle(
                updated_graph, "hl", num_landmarks=NUM_LANDMARKS
            )
            probe = sample_vertex_pairs(graph, 1000, seed=3)
            assert np.array_equal(
                sharded_service.query_many(probe), fresh.query_many(probe)
            ), "post-update sharded answers diverged from a fresh build"
    tmpdir.cleanup()

    assert np.array_equal(sharded, expected), (
        "sharded answers diverged from the single-process service"
    )
    assert np.array_equal(cached, expected[:NUM_HOT_PAIRS]), (
        "cached answers diverged from the single-process service"
    )
    assert stats["cache"]["hits"] >= NUM_HOT_PAIRS, "cache phase never hit"

    speedup = single_s / sharded_s
    cache_qps = NUM_HOT_PAIRS / cached_s
    rows = [
        [
            "single-process",
            1,
            f"{single_s:.3f}s",
            f"{NUM_PAIRS / single_s:,.0f}",
            "-",
        ],
        [
            f"sharded x{NUM_WORKERS}",
            NUM_WORKERS,
            f"{sharded_s:.3f}s",
            f"{NUM_PAIRS / sharded_s:,.0f}",
            f"{speedup:.2f}x",
        ],
        [
            "cached points",
            NUM_WORKERS,
            f"{cached_s:.3f}s",
            f"{cache_qps:,.0f}",
            "-",
        ],
    ]
    rendered = format_table(
        ["config", "procs", "wall", "QPS", "vs single"], rows
    )
    title = (
        f"Sharding: {NUM_WORKERS}-process ShardedDistanceService vs "
        f"single-process DistanceService (n={graph.num_vertices:,}, "
        f"{NUM_PAIRS:,} pairs, {cores} cores"
        f"{', smoke' if smoke else ''})"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    save_and_print(RESULTS_DIR, "sharding", title, rendered)
    print(
        f"exactness: {NUM_PAIRS:,}/{NUM_PAIRS:,} bulk answers byte-identical "
        f"to the single-process service (and post-update, after a broadcast "
        f"insert_edge); cache hits {stats['cache']['hits']:,}"
    )

    if not smoke and cores >= BAR_MIN_CORES and speedup < SHARDED_SPEEDUP:
        print(
            f"FAIL: sharded speedup {speedup:.2f}x below the "
            f"{SHARDED_SPEEDUP:.0f}x acceptance bar on a {cores}-core machine",
            file=sys.stderr,
        )
        return 1
    if cores < BAR_MIN_CORES:
        print(
            f"note: {cores} core(s) < {BAR_MIN_CORES} — the {SHARDED_SPEEDUP:.0f}x "
            f"bar needs one core per worker and is recorded, not asserted, here"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv))
