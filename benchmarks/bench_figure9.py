"""Benchmark + regeneration of Figure 9 (pair coverage ratios)."""

from conftest import save_and_print

from repro.experiments import figure9


def test_figure9_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(
        lambda: figure9.run(bench_config), rounds=1, iterations=1
    )
    assert len(rows) == 12
    for row in rows:
        # Coverage grows (weakly) with the landmark count.
        assert row.hl_coverage[50] >= row.hl_coverage[10] - 0.02
        assert 0.0 <= row.fd_coverage <= 1.0
    # FD-20's BP sub-hubs put it at or above HL-20 on most datasets.
    fd_wins = sum(
        1 for row in rows if row.fd_coverage >= row.hl_coverage[20] - 0.02
    )
    assert fd_wins >= 8, [
        (row.dataset, row.hl_coverage[20], row.fd_coverage) for row in rows
    ]
    save_and_print(
        results_dir,
        "figure9",
        f"Figure 9 (scale={bench_config.scale})",
        figure9.render(rows),
    )
