"""Benchmark: the network front door under a mixed read/write load.

ISSUE 9's acceptance run: reader clients hammer a live
:class:`~repro.serving.net.NetServer` with pipelined BATCH frames while
a writer thread repairs a dynamic oracle and publishes new snapshot
generations through the :class:`~repro.core.serialization.SnapshotSpool`
— the server promotes each one with the zero-downtime drain-swap-resume
protocol *mid-load*. The harness (:mod:`repro.serving.net.loadgen`)
asserts, unconditionally:

* **zero failed requests** across every rollover (overload rejections
  are retried cooperatively, not failed);
* **byte-identity**: every response matches the in-process
  ``query_many`` answer of the exact generation that served it (each
  wire response carries its generation);
* the load **spans the swaps** (responses attributed to both the first
  and the final generation);
* client-side frame counters reconcile with the server's per-client
  admission ledger;
* the reconnect phase (server restarted on the same port, same client
  objects) re-answers exactly through capped-exponential-backoff
  reconnects.

The recorded table is the per-round QPS/p50/p99 curve with the serving
generation per round — the rollover is visible as the generation column
stepping up with no failure and no gap.

Environment knobs (for CI smoke runs):

* ``REPRO_BENCH_NET_N`` — graph size (default 2000).
* ``REPRO_BENCH_NET_READERS`` — reader client threads (default 4).
* ``REPRO_BENCH_NET_ROUNDS`` — batches per reader (default 24).
* ``REPRO_BENCH_NET_ROLLOVERS`` — mid-load snapshot publishes (default 2).

Run standalone with ``python benchmarks/bench_net.py`` (``--smoke`` for
the small CI configuration). Results land in
``benchmarks/results/net.txt``.
"""

from __future__ import annotations

import os
import sys

from conftest import RESULTS_DIR

from repro.serving.net.loadgen import run_net_bench

NUM_VERTICES = int(os.environ.get("REPRO_BENCH_NET_N", "2000"))
NUM_READERS = int(os.environ.get("REPRO_BENCH_NET_READERS", "4"))
NUM_ROUNDS = int(os.environ.get("REPRO_BENCH_NET_ROUNDS", "24"))
NUM_ROLLOVERS = int(os.environ.get("REPRO_BENCH_NET_ROLLOVERS", "2"))
NUM_LANDMARKS = 16


def main(smoke: bool = False) -> int:
    n, readers, rounds = NUM_VERTICES, NUM_READERS, NUM_ROUNDS
    if smoke:
        n, readers, rounds = min(n, 800), min(readers, 3), min(rounds, 12)

    report = run_net_bench(
        n=n,
        landmarks=NUM_LANDMARKS,
        readers=readers,
        rounds=rounds,
        rollovers=NUM_ROLLOVERS,
        verbose=True,
    )

    title = (
        f"Network front door: {readers} reader clients, {NUM_ROLLOVERS} "
        f"mid-load snapshot rollovers, reconnect phase "
        f"(n={n:,}, k={NUM_LANDMARKS}, {os.cpu_count() or 1} cores"
        f"{', smoke' if smoke else ''})"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "net.txt"
    path.write_text(title + "\n" + "\n".join(report["lines"]) + "\n")
    print(f"[saved to {path}]")
    print(
        f"zero failed requests: {report['failures'] == 0}; byte-identity: "
        f"{report['requests'] - report['mismatched']:,}/"
        f"{report['requests']:,}; generations {report['generations_seen']}; "
        f"reconnects {report['reconnects']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv))
