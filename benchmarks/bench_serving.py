"""Benchmark: micro-batched serving vs. naive per-query locking.

The serving claim of PR 4 (ISSUE acceptance): hosting an HL oracle
behind :class:`~repro.serving.DistanceService` — which coalesces
concurrent point queries into vectorized ``query_many`` micro-batches —
beats the obvious thread-safe alternative, a single mutex around
``oracle.query``, by **>= 5x throughput at 16 threads**, while staying
*byte-identical* to sequential ``oracle.query`` on a randomized
workload.

Four configurations over the same randomized pair workload:

1. **sequential** — one thread, looped ``oracle.query`` (the ground
   truth; every other configuration must match it exactly).
2. **naive-lock** — 16 threads sharing one ``threading.Lock``; each
   query holds the mutex across ``oracle.query``. This is what a
   thread-safe wrapper usually looks like, and the GIL-bound floor.
3. **service-sync** — 16 threads of blocking ``DistanceService.query``;
   occupancy is capped at the thread count (at most 16 in flight), so
   the engine's fixed per-batch cost amortizes only ~16 ways.
4. **service-pipelined** — 16 threads of ``query_async``, each keeping
   a window of futures in flight — the shape of a real serving
   frontend, where one thread multiplexes many client connections.
   Occupancy reaches hundreds of queries per micro-batch, and this is
   the configuration the ISSUE's >= 5x acceptance bar measures.

The graph fixture mirrors ``bench_batch_queries.py`` (2000-vertex BA,
k=20) so the two benches compose: that one records what one
``query_many`` call saves over a scalar loop, this one records how much
of that saving the serving layer delivers to concurrent clients.

Environment knobs (for CI smoke runs):

* ``REPRO_BENCH_SERVE_N`` — graph size (default 2000).
* ``REPRO_BENCH_SERVE_PAIRS`` — workload size (default 10000).
* ``REPRO_BENCH_SERVE_THREADS`` — client threads (default 16).

Run standalone with ``python benchmarks/bench_serving.py`` (``--smoke``
for the small CI configuration, which asserts exactness and nonzero
coalescing but relaxes the 5x bar — tiny batches amortize less).
Results are recorded in ``benchmarks/results/serving.txt``.
"""

from __future__ import annotations

import os
import sys
import threading
import time

import numpy as np

from conftest import RESULTS_DIR, save_and_print

from repro.api import build_oracle
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.serving import DistanceService
from repro.utils.formatting import format_table

NUM_VERTICES = int(os.environ.get("REPRO_BENCH_SERVE_N", "2000"))
NUM_PAIRS = int(os.environ.get("REPRO_BENCH_SERVE_PAIRS", "10000"))
NUM_THREADS = int(os.environ.get("REPRO_BENCH_SERVE_THREADS", "16"))
NUM_LANDMARKS = 20
#: Async futures each frontend thread keeps in flight when pipelining.
PIPELINE_WINDOW = 128
#: Acceptance bar on the full workload (ISSUE 4): pipelined service vs
#: naive per-query lock, both at NUM_THREADS client threads.
FULL_WORKLOAD_SPEEDUP = 5.0


def _run_clients(target, count: int) -> float:
    """Run ``target(lo, hi)`` across NUM_THREADS slices; returns seconds.

    A client exception is re-raised after the join instead of silently
    killing its thread (which would leave its result slice unwritten
    and misattribute the failure to an exactness mismatch).
    """
    errors: list = []

    def guarded(lo: int, hi: int) -> None:
        try:
            target(lo, hi)
        except BaseException as exc:
            errors.append(exc)

    bounds = np.linspace(0, count, NUM_THREADS + 1).astype(int)
    threads = [
        threading.Thread(target=guarded, args=(int(lo), int(hi)))
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return time.perf_counter() - start


def main(smoke: bool = False) -> int:
    global NUM_VERTICES, NUM_PAIRS
    if smoke:
        NUM_VERTICES = min(NUM_VERTICES, 1500)
        NUM_PAIRS = min(NUM_PAIRS, 2000)

    graph = barabasi_albert_graph(NUM_VERTICES, 3, seed=7, name="serve-bench")
    oracle = build_oracle(graph, "hl", num_landmarks=NUM_LANDMARKS)
    pairs = sample_vertex_pairs(graph, NUM_PAIRS, seed=1)
    print(
        f"serving benchmark: n={graph.num_vertices:,}, m={graph.num_edges:,}, "
        f"k={NUM_LANDMARKS}, {NUM_PAIRS:,} pairs, {NUM_THREADS} threads"
    )

    # 1. Sequential ground truth.
    t0 = time.perf_counter()
    expected = np.array(
        [oracle.query(int(s), int(t)) for s, t in pairs], dtype=float
    )
    sequential_s = time.perf_counter() - t0

    # 2. Naive per-query locking at NUM_THREADS.
    lock = threading.Lock()
    naive = np.full(NUM_PAIRS, np.nan, dtype=float)

    def drive_naive(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            with lock:
                naive[i] = oracle.query(int(pairs[i, 0]), int(pairs[i, 1]))

    naive_s = _run_clients(drive_naive, NUM_PAIRS)

    # 3. Micro-batched service, blocking point queries at NUM_THREADS.
    served_sync = np.full(NUM_PAIRS, np.nan, dtype=float)
    with DistanceService(max_wait_ms=2.0) as service:
        service.register("bench", oracle)

        def drive_sync(lo: int, hi: int) -> None:
            for i in range(lo, hi):
                served_sync[i] = service.query(
                    "bench", int(pairs[i, 0]), int(pairs[i, 1])
                )

        sync_s = _run_clients(drive_sync, NUM_PAIRS)
        sync_stats = service.stats("bench")

    # 4. Micro-batched service, pipelined futures at NUM_THREADS.
    served_pipe = np.full(NUM_PAIRS, np.nan, dtype=float)
    with DistanceService(max_wait_ms=2.0) as service:
        service.register("bench", oracle)

        def drive_pipelined(lo: int, hi: int) -> None:
            window: list = []
            for i in range(lo, hi):
                window.append(
                    (i, service.query_async(
                        "bench", int(pairs[i, 0]), int(pairs[i, 1])
                    ))
                )
                if len(window) >= PIPELINE_WINDOW:
                    j, future = window.pop(0)
                    served_pipe[j] = future.result()
            for j, future in window:
                served_pipe[j] = future.result()

        pipe_s = _run_clients(drive_pipelined, NUM_PAIRS)
        pipe_stats = service.stats("bench")

    assert np.array_equal(naive, expected), "naive-lock answers diverged"
    assert np.array_equal(served_sync, expected), (
        "DistanceService (sync) answers diverged from sequential oracle.query"
    )
    assert np.array_equal(served_pipe, expected), (
        "DistanceService (pipelined) answers diverged from sequential "
        "oracle.query"
    )
    for stats in (sync_stats, pipe_stats):
        assert stats["batch_occupancy"] > 1.0, (
            f"no batch coalescing happened (occupancy "
            f"{stats['batch_occupancy']:.2f})"
        )

    speedup_sync = naive_s / sync_s
    speedup = naive_s / pipe_s

    def service_row(label, wall, stats, speed):
        return [
            label,
            NUM_THREADS,
            f"{wall:.3f}s",
            f"{NUM_PAIRS / wall:,.0f}",
            f"{stats['batch_occupancy']:.1f}",
            f"{stats['p99_ms']:.2f}ms",
            f"{speed:.1f}x",
        ]

    rows = [
        ["sequential", 1, f"{sequential_s:.3f}s", f"{NUM_PAIRS / sequential_s:,.0f}", "-", "-", "-"],
        ["naive-lock", NUM_THREADS, f"{naive_s:.3f}s", f"{NUM_PAIRS / naive_s:,.0f}", "-", "-", "-"],
        service_row("service-sync", sync_s, sync_stats, speedup_sync),
        service_row("service-pipelined", pipe_s, pipe_stats, speedup),
    ]
    rendered = format_table(
        ["config", "threads", "wall", "QPS", "occupancy", "p99", "vs naive"],
        rows,
    )
    stats = pipe_stats
    title = (
        f"Serving: micro-batched DistanceService vs naive per-query lock "
        f"(n={graph.num_vertices:,}, {NUM_PAIRS:,} pairs, "
        f"{NUM_THREADS} threads{', smoke' if smoke else ''})"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    save_and_print(RESULTS_DIR, "serving", title, rendered)
    print(
        f"exactness: {NUM_PAIRS:,}/{NUM_PAIRS:,} answers byte-identical to "
        f"sequential oracle.query; coalescing occupancy "
        f"{stats['batch_occupancy']:.1f} queries/batch"
    )

    if not smoke and speedup < FULL_WORKLOAD_SPEEDUP:
        print(
            f"FAIL: service speedup {speedup:.2f}x below the "
            f"{FULL_WORKLOAD_SPEEDUP:.0f}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv))
