"""Benchmark: micro-batched serving, and thread scaling on no-GIL kernels.

Two modes (see ``--help``):

* **default** — the PR 4 serving claim: hosting an HL oracle behind
  :class:`~repro.serving.DistanceService` — which coalesces concurrent
  point queries into vectorized ``query_many`` micro-batches — beats
  the obvious thread-safe alternative, a single mutex around
  ``oracle.query``, by **>= 5x throughput at 16 threads**, while
  staying *byte-identical* to sequential ``oracle.query`` on a
  randomized workload.
* **--thread-scaling** — the PR 8 claim: splitting one ``query_many``
  batch across a :class:`~repro.serving.QueryExecutor` thread pool
  scales with the thread count when (and only when) the kernel backend
  releases the GIL. Records QPS vs thread count per available backend
  into ``benchmarks/results/threading.txt``, asserts every cell
  byte-identical to the sequential path unconditionally, and asserts
  **>= 2x QPS at 4 threads over 1 thread** on a GIL-releasing compiled
  backend on machines with >= 4 cores (recorded honestly, without the
  bar, on smaller machines — a 1-core box cannot speed up).

Default-mode configurations over the same randomized pair workload:

1. **sequential** — one thread, looped ``oracle.query`` (the ground
   truth; every other configuration must match it exactly).
2. **naive-lock** — 16 threads sharing one ``threading.Lock``; each
   query holds the mutex across ``oracle.query``. This is what a
   thread-safe wrapper usually looks like, and the GIL-bound floor.
3. **service-sync** — 16 threads of blocking ``DistanceService.query``;
   occupancy is capped at the thread count (at most 16 in flight), so
   the engine's fixed per-batch cost amortizes only ~16 ways.
4. **service-pipelined** — 16 threads of ``query_async``, each keeping
   a window of futures in flight — the shape of a real serving
   frontend, where one thread multiplexes many client connections.
   Occupancy reaches hundreds of queries per micro-batch, and this is
   the configuration the ISSUE's >= 5x acceptance bar measures.

The graph fixture mirrors ``bench_batch_queries.py`` (2000-vertex BA,
k=20) so the two benches compose: that one records what one
``query_many`` call saves over a scalar loop, this one records how much
of that saving the serving layer delivers to concurrent clients.

Environment knobs (for CI smoke runs):

* ``REPRO_BENCH_SERVE_N`` — graph size (default 2000).
* ``REPRO_BENCH_SERVE_PAIRS`` — workload size (default 10000).
* ``REPRO_BENCH_SERVE_THREADS`` — client threads (default 16).

Run standalone with ``python benchmarks/bench_serving.py`` (``--smoke``
for the small CI configuration, which asserts exactness and nonzero
coalescing but relaxes the 5x bar — tiny batches amortize less).
Results are recorded in ``benchmarks/results/serving.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

import numpy as np

from conftest import RESULTS_DIR, save_and_print

from repro.api import build_oracle
from repro.core.kernels import available_kernels, get_kernel
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.serving import DistanceService, QueryExecutor
from repro.utils.formatting import format_table

NUM_VERTICES = int(os.environ.get("REPRO_BENCH_SERVE_N", "2000"))
NUM_PAIRS = int(os.environ.get("REPRO_BENCH_SERVE_PAIRS", "10000"))
NUM_THREADS = int(os.environ.get("REPRO_BENCH_SERVE_THREADS", "16"))
NUM_LANDMARKS = 20
#: Async futures each frontend thread keeps in flight when pipelining.
PIPELINE_WINDOW = 128
#: Acceptance bar on the full workload (ISSUE 4): pipelined service vs
#: naive per-query lock, both at NUM_THREADS client threads.
FULL_WORKLOAD_SPEEDUP = 5.0
#: Acceptance bar for --thread-scaling (ISSUE 8): 4-thread QPS over
#: 1-thread QPS on a GIL-releasing compiled backend, enforced only on
#: machines with >= 4 cores (threads cannot beat physics on fewer).
THREAD_SCALING_SPEEDUP = 2.0
#: Thread counts swept by --thread-scaling (smoke stops at 2).
THREAD_COUNTS = (1, 2, 4)


def _run_clients(target, count: int) -> float:
    """Run ``target(lo, hi)`` across NUM_THREADS slices; returns seconds.

    A client exception is re-raised after the join instead of silently
    killing its thread (which would leave its result slice unwritten
    and misattribute the failure to an exactness mismatch).
    """
    errors: list = []

    def guarded(lo: int, hi: int) -> None:
        try:
            target(lo, hi)
        except BaseException as exc:
            errors.append(exc)

    bounds = np.linspace(0, count, NUM_THREADS + 1).astype(int)
    threads = [
        threading.Thread(target=guarded, args=(int(lo), int(hi)))
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return time.perf_counter() - start


def main(smoke: bool = False) -> int:
    global NUM_VERTICES, NUM_PAIRS
    if smoke:
        NUM_VERTICES = min(NUM_VERTICES, 1500)
        NUM_PAIRS = min(NUM_PAIRS, 2000)

    graph = barabasi_albert_graph(NUM_VERTICES, 3, seed=7, name="serve-bench")
    oracle = build_oracle(graph, "hl", num_landmarks=NUM_LANDMARKS)
    pairs = sample_vertex_pairs(graph, NUM_PAIRS, seed=1)
    print(
        f"serving benchmark: n={graph.num_vertices:,}, m={graph.num_edges:,}, "
        f"k={NUM_LANDMARKS}, {NUM_PAIRS:,} pairs, {NUM_THREADS} threads"
    )

    # 1. Sequential ground truth.
    t0 = time.perf_counter()
    expected = np.array(
        [oracle.query(int(s), int(t)) for s, t in pairs], dtype=float
    )
    sequential_s = time.perf_counter() - t0

    # 2. Naive per-query locking at NUM_THREADS.
    lock = threading.Lock()
    naive = np.full(NUM_PAIRS, np.nan, dtype=float)

    def drive_naive(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            with lock:
                naive[i] = oracle.query(int(pairs[i, 0]), int(pairs[i, 1]))

    naive_s = _run_clients(drive_naive, NUM_PAIRS)

    # 3. Micro-batched service, blocking point queries at NUM_THREADS.
    served_sync = np.full(NUM_PAIRS, np.nan, dtype=float)
    with DistanceService(max_wait_ms=2.0) as service:
        service.register("bench", oracle)

        def drive_sync(lo: int, hi: int) -> None:
            for i in range(lo, hi):
                served_sync[i] = service.query(
                    "bench", int(pairs[i, 0]), int(pairs[i, 1])
                )

        sync_s = _run_clients(drive_sync, NUM_PAIRS)
        sync_stats = service.stats("bench")

    # 4. Micro-batched service, pipelined futures at NUM_THREADS.
    served_pipe = np.full(NUM_PAIRS, np.nan, dtype=float)
    with DistanceService(max_wait_ms=2.0) as service:
        service.register("bench", oracle)

        def drive_pipelined(lo: int, hi: int) -> None:
            window: list = []
            for i in range(lo, hi):
                window.append(
                    (i, service.query_async(
                        "bench", int(pairs[i, 0]), int(pairs[i, 1])
                    ))
                )
                if len(window) >= PIPELINE_WINDOW:
                    j, future = window.pop(0)
                    served_pipe[j] = future.result()
            for j, future in window:
                served_pipe[j] = future.result()

        pipe_s = _run_clients(drive_pipelined, NUM_PAIRS)
        pipe_stats = service.stats("bench")

    assert np.array_equal(naive, expected), "naive-lock answers diverged"
    assert np.array_equal(served_sync, expected), (
        "DistanceService (sync) answers diverged from sequential oracle.query"
    )
    assert np.array_equal(served_pipe, expected), (
        "DistanceService (pipelined) answers diverged from sequential "
        "oracle.query"
    )
    for stats in (sync_stats, pipe_stats):
        assert stats["batch_occupancy"] > 1.0, (
            f"no batch coalescing happened (occupancy "
            f"{stats['batch_occupancy']:.2f})"
        )

    speedup_sync = naive_s / sync_s
    speedup = naive_s / pipe_s

    def service_row(label, wall, stats, speed):
        return [
            label,
            NUM_THREADS,
            f"{wall:.3f}s",
            f"{NUM_PAIRS / wall:,.0f}",
            f"{stats['batch_occupancy']:.1f}",
            f"{stats['p99_ms']:.2f}ms",
            f"{speed:.1f}x",
        ]

    rows = [
        ["sequential", 1, f"{sequential_s:.3f}s", f"{NUM_PAIRS / sequential_s:,.0f}", "-", "-", "-"],
        ["naive-lock", NUM_THREADS, f"{naive_s:.3f}s", f"{NUM_PAIRS / naive_s:,.0f}", "-", "-", "-"],
        service_row("service-sync", sync_s, sync_stats, speedup_sync),
        service_row("service-pipelined", pipe_s, pipe_stats, speedup),
    ]
    rendered = format_table(
        ["config", "threads", "wall", "QPS", "occupancy", "p99", "vs naive"],
        rows,
    )
    stats = pipe_stats
    title = (
        f"Serving: micro-batched DistanceService vs naive per-query lock "
        f"(n={graph.num_vertices:,}, {NUM_PAIRS:,} pairs, "
        f"{NUM_THREADS} threads{', smoke' if smoke else ''})"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    save_and_print(RESULTS_DIR, "serving", title, rendered)
    print(
        f"exactness: {NUM_PAIRS:,}/{NUM_PAIRS:,} answers byte-identical to "
        f"sequential oracle.query; coalescing occupancy "
        f"{stats['batch_occupancy']:.1f} queries/batch"
    )

    if not smoke and speedup < FULL_WORKLOAD_SPEEDUP:
        print(
            f"FAIL: service speedup {speedup:.2f}x below the "
            f"{FULL_WORKLOAD_SPEEDUP:.0f}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


def thread_scaling(smoke: bool = False) -> int:
    """QPS vs executor thread count, per available kernel backend.

    One shared oracle, one shared pair workload; for every backend that
    can vectorize (``pyloop`` is a deliberately slow audit backend and
    is skipped) and every thread count, the whole workload runs as one
    ``query_many`` batch through a :class:`QueryExecutor`. Every cell is
    asserted byte-identical to the 1-thread sequential answer; the >= 2x
    bar applies to GIL-releasing compiled backends at 4 threads, and
    only when the machine actually has >= 4 cores.
    """
    num_vertices = min(NUM_VERTICES, 1200) if smoke else NUM_VERTICES
    num_pairs = min(NUM_PAIRS, 4000) if smoke else NUM_PAIRS
    counts = [t for t in THREAD_COUNTS if not smoke or t <= 2]
    cores = os.cpu_count() or 1

    graph = barabasi_albert_graph(num_vertices, 3, seed=7, name="thread-bench")
    oracle = build_oracle(graph, "hl", num_landmarks=NUM_LANDMARKS)
    pairs = sample_vertex_pairs(graph, num_pairs, seed=1)
    backends = [n for n in available_kernels() if n != "pyloop"]
    print(
        f"thread-scaling benchmark: n={graph.num_vertices:,}, "
        f"m={graph.num_edges:,}, k={NUM_LANDMARKS}, {num_pairs:,} pairs, "
        f"{cores} cores, backends={backends}, threads={counts}"
    )

    rows = []
    failures = []
    for name in backends:
        backend = get_kernel(name)
        oracle.set_kernel(name)
        expected = oracle.query_many(pairs)  # ground truth for this backend
        baseline_qps = None
        for threads in counts:
            with QueryExecutor(threads=threads, kernel=name) as executor:
                executor.run(oracle.query_many, pairs)  # warm workspaces
                t0 = time.perf_counter()
                answer = executor.run(oracle.query_many, pairs)
                wall = time.perf_counter() - t0
            assert np.array_equal(answer, expected), (
                f"{name} @ {threads} threads diverged from sequential"
            )
            qps = num_pairs / wall
            if threads == 1:
                baseline_qps = qps
            scale = qps / baseline_qps
            rows.append([
                name,
                "yes" if backend.releases_gil else "no",
                threads,
                f"{wall * 1e3:.1f}ms",
                f"{qps:,.0f}",
                f"{scale:.2f}x",
            ])
            bar_applies = (
                not smoke
                and threads >= 4
                and cores >= 4
                and backend.releases_gil
                and backend.compiled
            )
            if bar_applies and scale < THREAD_SCALING_SPEEDUP:
                failures.append(
                    f"{name}: {scale:.2f}x at {threads} threads, below the "
                    f"{THREAD_SCALING_SPEEDUP:.0f}x bar on a {cores}-core "
                    f"machine"
                )

    rendered = format_table(
        ["backend", "no-GIL", "threads", "wall", "QPS", "vs 1 thread"], rows
    )
    title = (
        f"Thread scaling: QueryExecutor QPS vs thread count per kernel "
        f"backend (n={graph.num_vertices:,}, {num_pairs:,} pairs, "
        f"{cores} cores{', smoke' if smoke else ''})"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    save_and_print(RESULTS_DIR, "threading", title, rendered)
    print(
        f"exactness: every cell byte-identical to the sequential "
        f"query_many on its backend ({len(rows)} cells)"
    )
    if cores < 4:
        print(
            f"note: {THREAD_SCALING_SPEEDUP:.0f}x@4-thread bar not "
            f"enforced — machine has {cores} core(s); numbers recorded "
            f"as measured"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description=(
            "Serving-tier benchmarks. Default mode records the "
            "micro-batched DistanceService vs a naive per-query lock "
            "(benchmarks/results/serving.txt). --thread-scaling records "
            "QueryExecutor QPS vs thread count per kernel backend "
            "(benchmarks/results/threading.txt), asserting every cell "
            "byte-identical to sequential query_many and >= 2x QPS at 4 "
            "threads on GIL-releasing compiled backends when the machine "
            "has >= 4 cores."
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "small CI configuration: shrinks the workload, caps the "
            "thread sweep at 2, and relaxes the speedup bars (exactness "
            "is still asserted)"
        ),
    )
    parser.add_argument(
        "--thread-scaling",
        action="store_true",
        help=(
            "run the thread-scaling mode instead of the serving "
            "comparison: QPS vs executor thread count for every "
            "available kernel backend except pyloop"
        ),
    )
    return parser.parse_args(argv)


if __name__ == "__main__":
    _args = _parse_args()
    if _args.thread_scaling:
        raise SystemExit(thread_scaling(smoke=_args.smoke))
    raise SystemExit(main(smoke=_args.smoke))
