"""Benchmark: O(affected) dynamic repair and mmap snapshot loading.

Two serving-side costs of the dynamic extension are measured against
their pre-LabelStore ("seed") counterparts:

1. **Insert-repair throughput.** The seed repair path rebuilt the whole
   label store on every update: rerun the affected landmarks' pruned
   BFSs, then re-accumulate *all* ``k`` landmarks — extracting each
   unaffected landmark's entries with a ``flatnonzero`` scan over the
   flat CSR arrays — and freeze a fresh store. The landmark-major
   store instead splices only the affected runs in O(affected entries).
   Both paths share the identical stacked BFS, so the measured delta is
   purely label-store bookkeeping. The acceptance bar is >= 5x on a
   20k-vertex BA graph at k=64 for an insert affecting <= 8 landmarks,
   with the repaired labelling byte-identical to a fresh build.

2. **Snapshot-load latency.** A v2 snapshot loaded with ``mmap=True``
   maps the label arrays zero-copy; the copying v1/v2 loads read the
   whole index into RAM. The table reports all three.

Environment knobs (for CI smoke runs):

* ``REPRO_BENCH_DYN_N`` — graph size (default 20000).

Run standalone with ``python benchmarks/bench_dynamic.py``
(``--smoke`` for the small CI configuration).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import save_and_print

from repro.core.construction import build_highway_cover_labelling
from repro.core.construction_engine import stacked_pruned_bfs
from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.labels import LabelAccumulator
from repro.core.serialization import load_oracle, save_oracle
from repro.graphs.generators import barabasi_albert_graph
from repro.utils.formatting import format_table

NUM_VERTICES = int(os.environ.get("REPRO_BENCH_DYN_N", "20000"))
NUM_LANDMARKS = 64
MAX_AFFECTED = 8
#: Acceptance bar on the full workload; smoke graphs amortize less.
FULL_WORKLOAD_SPEEDUP = 5.0


def _time_best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _low_impact_insertions(oracle, limit: int = 3):
    """Distance-2 non-edges whose insertion affects <= MAX_AFFECTED landmarks.

    Close pairs sit on nearly equal BFS levels for most landmarks, which
    is exactly the local-update regime the repair is built for.
    """
    graph = oracle.graph
    rng = np.random.default_rng(17)
    found = []
    for u in rng.permutation(graph.num_vertices):
        u = int(u)
        neighbors = graph.neighbors(u)
        if len(neighbors) == 0:
            continue
        via = int(neighbors[rng.integers(len(neighbors))])
        for v in graph.neighbors(via):
            v = int(v)
            if v == u or graph.has_edge(u, v) or oracle._landmark_mask[v]:
                continue
            affected = oracle._affected_landmarks(u, v)
            if 1 <= len(affected) <= MAX_AFFECTED:
                found.append((u, v, affected))
                break
        if len(found) >= limit:
            break
    return found


def test_repair_speedup_and_correctness(results_dir):
    """Spliced repair vs seed whole-store rebuild: identical bytes, >= 5x."""
    graph = barabasi_albert_graph(NUM_VERTICES, 3, seed=7)
    oracle = DynamicHighwayCoverOracle(num_landmarks=NUM_LANDMARKS).build(graph)
    landmark_ids = oracle.highway.landmarks
    mask = oracle._landmark_mask
    k = len(landmark_ids)
    frozen = oracle.labelling.as_vertex_major()

    cases = _low_impact_insertions(oracle)
    assert cases, "no low-impact insertion candidates found"

    rows = []
    worst_speedup = float("inf")
    for case_index, (u, v, affected) in enumerate(cases):
        new_graph = graph.with_edges_added([(u, v)])
        affected_set = {int(r) for r in affected}
        indices = [i for i, r in enumerate(landmark_ids) if int(r) in affected_set]
        index_set = set(indices)
        roots = landmark_ids[indices]

        # Persistent landmark-major store, as the dynamic oracle keeps it.
        store = frozen.as_landmark_major()

        def spliced_repair():
            per_v, per_d, _ = stacked_pruned_bfs(new_graph, roots, mask, landmark_ids)
            for slot, index in enumerate(indices):
                store.set_landmark_result(index, per_v[slot], per_d[slot])

        def seed_repair():
            # The pre-LabelStore path: same BFS, then re-accumulate every
            # landmark (flatnonzero scan per unaffected one) and freeze.
            per_v, per_d, _ = stacked_pruned_bfs(new_graph, roots, mask, landmark_ids)
            accumulator = LabelAccumulator(new_graph.num_vertices, k)
            slot = 0
            for index in range(k):
                if index in index_set:
                    vertices, distances = per_v[slot], per_d[slot]
                    slot += 1
                else:
                    vertices, distances = frozen.entries_of_landmark(index)
                accumulator.add_landmark_result(index, vertices, distances)
            return accumulator.freeze()

        # Correctness first: the spliced store must match a fresh build.
        spliced_repair()
        if case_index == 0:
            fresh, _ = build_highway_cover_labelling(
                new_graph, [int(r) for r in landmark_ids]
            )
            assert store == fresh, "spliced repair diverged from fresh build"

        seed_s = _time_best(seed_repair)
        spliced_s = _time_best(spliced_repair)
        speedup = seed_s / spliced_s
        worst_speedup = min(worst_speedup, speedup)
        rows.append(
            [
                f"({u}, {v})",
                len(affected),
                f"{seed_s * 1e3:.1f}",
                f"{spliced_s * 1e3:.1f}",
                f"{speedup:.1f}x",
            ]
        )

    required = FULL_WORKLOAD_SPEEDUP if NUM_VERTICES >= 20_000 else 1.0
    assert worst_speedup >= required, (
        f"repair speedup {worst_speedup:.1f}x below the {required:.1f}x bar "
        f"(BA n={NUM_VERTICES}, k={NUM_LANDMARKS}, <= {MAX_AFFECTED} affected)"
    )
    save_and_print(
        results_dir,
        "dynamic",
        f"Dynamic insert repair: landmark-major splice vs seed rebuild "
        f"(BA n={NUM_VERTICES}, k={NUM_LANDMARKS})",
        format_table(
            ["edge", "affected", "seed [ms]", "spliced [ms]", "speedup"],
            rows,
        ),
    )


def test_snapshot_load_latency(results_dir, tmp_path):
    """v2 mmap loads zero-copy and without reading the label arrays."""
    graph = barabasi_albert_graph(NUM_VERTICES, 3, seed=7)
    oracle = DynamicHighwayCoverOracle(num_landmarks=NUM_LANDMARKS).build(graph)
    v1_path = tmp_path / "index.v1.hl"
    v2_path = tmp_path / "index.v2.hl"
    v1_bytes = save_oracle(oracle, v1_path, version=1)
    v2_bytes = save_oracle(oracle, v2_path, version=2)

    timings = {
        "v1 copy": _time_best(lambda: load_oracle(graph, v1_path)),
        "v2 copy": _time_best(lambda: load_oracle(graph, v2_path)),
        "v2 mmap": _time_best(lambda: load_oracle(graph, v2_path, mmap=True)),
    }

    mapped = load_oracle(graph, v2_path, mmap=True)
    for array in (
        mapped.labelling.offsets,
        mapped.labelling.landmark_indices,
        mapped.labelling.distances,
    ):
        assert isinstance(array, np.memmap), "label arrays must stay on-disk"
    rng = np.random.default_rng(5)
    for s, t in rng.integers(0, graph.num_vertices, size=(25, 2)):
        assert mapped.query(int(s), int(t)) == oracle.query(int(s), int(t))

    rows = [
        [mode, f"{seconds * 1e3:.2f}"]
        for mode, seconds in timings.items()
    ]
    rows.append(["index size v1/v2", f"{v1_bytes:,} / {v2_bytes:,} bytes"])
    save_and_print(
        results_dir,
        "dynamic_load",
        f"Snapshot load latency (BA n={NUM_VERTICES}, k={NUM_LANDMARKS})",
        format_table(["mode", "load [ms]"], rows),
    )


if __name__ == "__main__":  # standalone: python benchmarks/bench_dynamic.py
    import pytest
    import sys

    argv = sys.argv[1:]
    if "--smoke" in argv:
        argv.remove("--smoke")
        os.environ.setdefault("REPRO_BENCH_DYN_N", "2000")
    raise SystemExit(pytest.main([__file__, "-q", "-s"] + argv))
