"""Benchmark + regeneration of Table 1 (dataset statistics)."""

from conftest import save_and_print

from repro.datasets.registry import load_dataset
from repro.experiments import table1


def test_table1_generation_speed(benchmark, bench_config):
    """Time one mid-size surrogate generation (the substrate cost)."""
    benchmark.pedantic(
        lambda: load_dataset("LiveJournal", scale=bench_config.scale),
        rounds=3,
        iterations=1,
    )


def test_table1_report(benchmark, bench_config, results_dir):
    """Regenerate all twelve Table 1 rows."""
    rows = benchmark.pedantic(
        lambda: table1.run(bench_config), rounds=1, iterations=1
    )
    assert len(rows) == 12
    save_and_print(
        results_dir,
        "table1",
        f"Table 1 (scale={bench_config.scale})",
        table1.render(rows),
    )
