"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table — these quantify the knobs the paper discusses in
prose: landmark selection strategy (Section 8's future work), FD's
bit-parallel masks (Section 5.1), the HL(8) codec (Section 5.2), and the
dynamic-insertion repair vs a full rebuild (our extension).
"""

import time

import numpy as np
from conftest import save_and_print

from repro.baselines.fd import FullyDynamicOracle
from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.query import HighwayCoverOracle
from repro.datasets.registry import load_dataset
from repro.graphs.sampling import sample_vertex_pairs
from repro.landmarks.selection import STRATEGIES
from repro.utils.formatting import format_bytes, format_table


def test_landmark_strategy_ablation(benchmark, bench_config, results_dir):
    """Coverage/size trade-off across landmark selection strategies."""
    graph = load_dataset("LiveJournal", scale=bench_config.scale)
    pairs = sample_vertex_pairs(graph, bench_config.num_query_pairs, seed=31)

    def run():
        rows = []
        for strategy in sorted(STRATEGIES):
            oracle = HighwayCoverOracle(
                num_landmarks=20, landmark_strategy=strategy
            ).build(graph)
            coverage = sum(
                1 for s, t in pairs if oracle.is_covered(int(s), int(t))
            ) / len(pairs)
            rows.append(
                [
                    strategy,
                    f"{oracle.construction_seconds:.2f}s",
                    format_bytes(oracle.size_bytes()),
                    f"{coverage:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {r[0]: float(r[3]) for r in rows}
    # Degree-based selection dominates random on scale-free graphs.
    assert by_name["degree"] > by_name["random"] + 0.2
    save_and_print(
        results_dir,
        "ablation_landmarks",
        "Ablation: landmark selection strategies (LiveJournal surrogate)",
        format_table(["strategy", "CT", "index", "coverage"], rows),
    )


def test_fd_bit_parallel_ablation(benchmark, bench_config, results_dir):
    """What FD's BP masks buy: tighter bounds for 3.4x the index bytes."""
    graph = load_dataset("Flickr", scale=bench_config.scale)
    pairs = sample_vertex_pairs(graph, bench_config.num_query_pairs, seed=32)

    def run():
        rows = []
        for use_bp in (False, True):
            fd = FullyDynamicOracle(num_landmarks=20, use_bit_parallel=use_bp).build(
                graph
            )
            coverage = sum(
                1 for s, t in pairs if fd.is_covered(int(s), int(t))
            ) / len(pairs)
            rows.append(
                [
                    "FD+BP" if use_bp else "FD-noBP",
                    f"{fd.construction_seconds:.2f}s",
                    format_bytes(fd.size_bytes()),
                    f"{coverage:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert float(rows[1][3]) >= float(rows[0][3])  # BP never hurts coverage
    save_and_print(
        results_dir,
        "ablation_fd_bp",
        "Ablation: FD with/without bit-parallel masks (Flickr surrogate)",
        format_table(["variant", "CT", "index", "coverage"], rows),
    )


def test_codec_ablation(benchmark, bench_config, results_dir):
    """HL(8) halves-plus the index at identical query semantics."""
    graph = load_dataset("Orkut", scale=bench_config.scale)
    pairs = sample_vertex_pairs(graph, 100, seed=33)

    def run():
        wide = HighwayCoverOracle(num_landmarks=20, codec="u32").build(graph)
        narrow = HighwayCoverOracle(num_landmarks=20, codec="u8").build(graph)
        assert all(
            wide.query(int(s), int(t)) == narrow.query(int(s), int(t))
            for s, t in pairs[:50]
        )
        return wide.size_bytes(), narrow.size_bytes()

    wide_bytes, narrow_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert narrow_bytes < wide_bytes
    save_and_print(
        results_dir,
        "ablation_codec",
        "Ablation: HL vs HL(8) codec (Orkut surrogate)",
        format_table(
            ["codec", "index"],
            [["u32 (HL)", format_bytes(wide_bytes)], ["u8 (HL(8))", format_bytes(narrow_bytes)]],
        ),
    )


def test_dynamic_repair_vs_rebuild(benchmark, bench_config, results_dir):
    """Incremental insertion repair beats a full rebuild on average."""
    graph = load_dataset("Skitter", scale=bench_config.scale)
    rng = np.random.default_rng(34)

    def run():
        oracle = DynamicHighwayCoverOracle(num_landmarks=20).build(graph)
        rebuild_time = oracle.construction_seconds
        repair_times = []
        inserted = 0
        while inserted < 8:
            u, v = (int(x) for x in rng.integers(0, graph.num_vertices, 2))
            if u == v or oracle.graph.has_edge(u, v):
                continue
            t0 = time.perf_counter()
            affected = oracle.insert_edge(u, v)
            repair_times.append((time.perf_counter() - t0, len(affected)))
            inserted += 1
        return rebuild_time, repair_times

    rebuild_time, repair_times = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_repair = sum(t for t, _ in repair_times) / len(repair_times)
    rows = [
        ["full rebuild", f"{rebuild_time * 1e3:.1f}ms", "20"],
        [
            "incremental insert (mean of 8)",
            f"{mean_repair * 1e3:.1f}ms",
            f"{np.mean([k for _, k in repair_times]):.1f}",
        ],
    ]
    save_and_print(
        results_dir,
        "ablation_dynamic",
        "Ablation: dynamic insertion repair vs rebuild (Skitter surrogate)",
        format_table(["operation", "time", "landmarks BFS'd"], rows),
    )


def test_alt_vs_hl_on_complex_networks(benchmark, bench_config, results_dir):
    """Related-work claim (Section 7): landmark A* (ALT) "does not scale
    well on complex networks". Both methods here use the same landmark
    budget; ALT's lower bounds go flat on small-world graphs, so its
    queries touch a large vertex fraction while HL's bound-then-search
    stays local."""
    from repro.baselines.alt import ALTOracle

    graph = load_dataset("Twitter", scale=bench_config.scale)
    pairs = sample_vertex_pairs(graph, 100, seed=35)

    def run():
        hl = HighwayCoverOracle(num_landmarks=20).build(graph)
        alt = ALTOracle(num_landmarks=20).build(graph)
        t0 = time.perf_counter()
        for s, t in pairs:
            hl.query(int(s), int(t))
        hl_ms = (time.perf_counter() - t0) / len(pairs) * 1e3
        t0 = time.perf_counter()
        settled = 0
        for s, t in pairs:
            alt.query(int(s), int(t))
            settled += alt.last_settled
        alt_ms = (time.perf_counter() - t0) / len(pairs) * 1e3
        return hl_ms, alt_ms, settled / len(pairs)

    hl_ms, alt_ms, mean_settled = benchmark.pedantic(run, rounds=1, iterations=1)
    assert alt_ms > hl_ms  # ALT loses on complex networks, as reported
    rows = [
        ["HL (k=20)", f"{hl_ms:.3f}ms", "-"],
        ["ALT (k=20)", f"{alt_ms:.3f}ms", f"{mean_settled:.0f}"],
    ]
    save_and_print(
        results_dir,
        "ablation_alt",
        "Ablation: ALT (landmark A*) vs HL on a complex network (Twitter surrogate)",
        format_table(["method", "QT", "mean settled vertices"], rows),
    )
