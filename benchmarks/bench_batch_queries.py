"""Benchmark: vectorized batch engine vs. the scalar query loop.

The paper's query workload is bulk — 100,000 random pairs per dataset —
so the number that matters is batch throughput. This benchmark answers
the same ≥10k-pair workload twice, once through
``oracle.query_many`` (the batch engine) and once by looping
``oracle.query``, asserts the distances are bitwise identical, and
reports the speedup. The engine is expected to win by >= 5x on the
default workload (power-law graph, tight bounds); the margin comes from
amortizing per-pair Python overhead into a handful of numpy passes and
from answering each source group with one stacked bounded BFS.

Environment knobs (for CI smoke runs):

* ``REPRO_BENCH_BATCH_N`` — graph size (default 2000).
* ``REPRO_BENCH_BATCH_PAIRS`` — workload size (default 10000).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import save_and_print

from repro.core.query import HighwayCoverOracle
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.utils.formatting import format_table

NUM_VERTICES = int(os.environ.get("REPRO_BENCH_BATCH_N", "2000"))
NUM_PAIRS = int(os.environ.get("REPRO_BENCH_BATCH_PAIRS", "10000"))
NUM_LANDMARKS = 20
#: The acceptance bar on the full default workload; smaller smoke
#: workloads (CI) amortize less, so the bar scales down with size.
FULL_WORKLOAD_SPEEDUP = 5.0


def _build_workload():
    graph = barabasi_albert_graph(NUM_VERTICES, 3, seed=7)
    oracle = HighwayCoverOracle(num_landmarks=NUM_LANDMARKS).build(graph)
    pairs = sample_vertex_pairs(graph, NUM_PAIRS, seed=9)
    return graph, oracle, pairs


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_batch_engine_speedup(results_dir):
    """Engine vs scalar loop: identical answers, >= 5x faster at 10k pairs."""
    graph, oracle, pairs = _build_workload()
    oracle.query_many(pairs[:16])  # warm the engine + caches

    engine_seconds = min(
        _time_once(lambda: oracle.query_many(pairs)) for _ in range(3)
    )
    batch = oracle.query_many(pairs)

    start = time.perf_counter()
    scalar = np.asarray([oracle.query(int(s), int(t)) for s, t in pairs])
    scalar_seconds = time.perf_counter() - start

    assert np.array_equal(batch, scalar), "engine diverged from scalar loop"
    speedup = scalar_seconds / engine_seconds
    # Scale the bar for smoke-sized runs; the full criterion applies at
    # the default >= 10k-pair workload.
    required = FULL_WORKLOAD_SPEEDUP if NUM_PAIRS >= 10_000 else 1.5
    assert speedup >= required, (
        f"batch engine speedup {speedup:.1f}x below the {required:.1f}x bar "
        f"({NUM_PAIRS} pairs on n={NUM_VERTICES})"
    )

    per_pair_us = engine_seconds / len(pairs) * 1e6
    save_and_print(
        results_dir,
        "batch_queries",
        f"Batch query engine vs scalar loop "
        f"(n={NUM_VERTICES}, k={NUM_LANDMARKS}, {NUM_PAIRS} pairs)",
        format_table(
            ["path", "total [s]", "per pair [us]", "speedup"],
            [
                ["scalar loop", f"{scalar_seconds:.3f}",
                 f"{scalar_seconds / len(pairs) * 1e6:.1f}", "1.0x"],
                ["batch engine", f"{engine_seconds:.3f}",
                 f"{per_pair_us:.1f}", f"{speedup:.1f}x"],
            ],
        ),
    )


def test_query_many_throughput(benchmark):
    """Raw engine throughput on the default workload (pytest-benchmark)."""
    _, oracle, pairs = _build_workload()
    oracle.query_many(pairs[:16])
    benchmark.pedantic(lambda: oracle.query_many(pairs), rounds=3, iterations=1)


def test_upper_bounds_vectorization(benchmark):
    """The offline half alone: all d-top bounds in a few numpy passes."""
    _, oracle, pairs = _build_workload()
    engine = oracle.batch_engine()
    engine.upper_bounds(pairs[:16])
    benchmark.pedantic(lambda: engine.upper_bounds(pairs), rounds=3, iterations=1)


if __name__ == "__main__":  # standalone: python benchmarks/bench_batch_queries.py
    import pytest
    import sys

    raise SystemExit(pytest.main([__file__, "-q", "-s"] + sys.argv[1:]))
