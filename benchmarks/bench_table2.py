"""Benchmark + regeneration of Table 2 (CT / QT / ALS, all methods).

The expected shape, from the paper: HL constructs fastest (HL-P's
advantage needs real OS threads — see EXPERIMENTS.md), FD ~2-5x slower,
PLL and IS-L hit the budget (DNF) on the larger surrogates; query times
for the labelling hybrids sit far below Bi-BFS; HL's ALS is ~10-20.
"""

from conftest import save_and_print

from repro.core.query import HighwayCoverOracle
from repro.datasets.registry import load_dataset
from repro.experiments import table2
from repro.graphs.sampling import sample_vertex_pairs


def test_hl_construction(benchmark, bench_config):
    """The headline kernel: Algorithm 1 with 20 landmarks."""
    graph = load_dataset("LiveJournal", scale=bench_config.scale)
    benchmark.pedantic(
        lambda: HighwayCoverOracle(num_landmarks=20).build(graph),
        rounds=3,
        iterations=1,
    )


def test_hl_query_latency(benchmark, bench_config):
    """Per-query latency of the full framework (bound + bounded search)."""
    graph = load_dataset("LiveJournal", scale=bench_config.scale)
    oracle = HighwayCoverOracle(num_landmarks=20).build(graph)
    pairs = sample_vertex_pairs(graph, 500, seed=7)
    state = {"i": 0}

    def one_query():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return oracle.query(int(s), int(t))

    benchmark(one_query)


def test_table2_report(benchmark, bench_config, results_dir):
    """Regenerate the full Table 2 over all twelve surrogates."""
    rows = benchmark.pedantic(
        lambda: table2.run(bench_config), rounds=1, iterations=1
    )
    assert len(rows) == 12
    # Sanity of the paper's headline: HL always finishes, and on every
    # dataset where FD also finished, HL constructed faster or equal.
    for row in rows:
        hl, fd = row.measurements["HL"], row.measurements["FD"]
        assert hl.finished
        if fd.finished:
            assert hl.construction_seconds <= fd.construction_seconds * 1.5
    save_and_print(
        results_dir,
        "table2",
        f"Table 2 (scale={bench_config.scale}, k=20, "
        f"budget={bench_config.construction_budget_s}s)",
        table2.render(rows),
    )
