"""Benchmark + regeneration of Figure 7 (CT and QT vs #landmarks)."""

from conftest import save_and_print

from repro.experiments import figure7


def test_figure7_report(benchmark, bench_config, results_dir):
    rows = benchmark.pedantic(
        lambda: figure7.run(bench_config), rounds=1, iterations=1
    )
    assert len(rows) == 12
    # The paper's claim: construction time is linear in #landmarks —
    # CT(50)/CT(10) should sit near 5 (generously bounded here).
    ratios = [figure7.linearity_ratio(r) for r in rows]
    assert sum(1 for r in ratios if 2.0 <= r <= 12.0) >= 9, ratios
    save_and_print(
        results_dir,
        "figure7",
        f"Figure 7 (scale={bench_config.scale})",
        figure7.render(rows)
        + "\nCT(50)/CT(10): "
        + ", ".join(f"{r.dataset}={figure7.linearity_ratio(r):.1f}" for r in rows),
    )
