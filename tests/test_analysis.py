"""Tests for the structural analysis helpers."""

import pytest

from repro.graphs.analysis import (
    approximate_diameter,
    average_clustering_coefficient,
    degree_histogram,
    power_law_tail_ratio,
    small_world_report,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    grid_graph,
    path_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph


class TestDegreeHistogram:
    def test_star(self):
        hist = degree_histogram(star_graph(6))
        assert hist == {1: 5, 5: 1}

    def test_empty(self):
        assert degree_histogram(Graph(0, [])) == {}

    def test_counts_sum_to_n(self, ba_graph):
        hist = degree_histogram(ba_graph)
        assert sum(hist.values()) == ba_graph.num_vertices


class TestTailRatio:
    def test_scale_free_is_skewed(self):
        g = barabasi_albert_graph(1000, 3, seed=1)
        assert power_law_tail_ratio(g) > 5.0

    def test_lattice_is_flat(self):
        g = watts_strogatz_graph(200, 4, 0.0, seed=1)
        assert power_law_tail_ratio(g) == pytest.approx(1.0)


class TestDiameter:
    def test_path_graph_exact(self):
        assert approximate_diameter(path_graph(30)) == 29

    def test_grid_lower_bound(self):
        # True diameter of a 5x7 grid is 4 + 6 = 10.
        approx = approximate_diameter(grid_graph(5, 7))
        assert 5 <= approx <= 10

    def test_small_world_is_compact(self):
        g = barabasi_albert_graph(2000, 4, seed=2)
        assert approximate_diameter(g) <= 10

    def test_empty(self):
        assert approximate_diameter(Graph(0, [])) == 0


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert average_clustering_coefficient(g) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        assert average_clustering_coefficient(star_graph(10)) == 0.0

    def test_range(self, ba_graph):
        c = average_clustering_coefficient(ba_graph)
        assert 0.0 <= c <= 1.0


class TestSmallWorldReport:
    def test_scale_free_network_flagged(self):
        g = barabasi_albert_graph(2000, 4, seed=3)
        report = small_world_report(g)
        assert report.looks_small_world
        assert report.num_vertices == 2000

    def test_grid_not_flagged(self):
        report = small_world_report(grid_graph(30, 30))
        assert not report.looks_small_world

    def test_surrogates_are_small_world(self):
        """Table 1 surrogates sit in HL's intended regime.

        At the tiny test scale the densest surrogate (Hollywood, average
        degree ~50 at 130 vertices) is closer to a clique than to a
        scale-free graph, so we require 11 of 12 rather than all.
        """
        from repro.datasets.registry import load_all_datasets

        flagged = sum(
            1
            for _, graph in load_all_datasets(scale=0.05)
            if small_world_report(graph).looks_small_world
        )
        assert flagged >= 11
