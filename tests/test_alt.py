"""Tests for the ALT baseline (A* with landmark lower bounds)."""

import pytest

from repro.baselines.alt import ALTOracle
from repro.errors import ConstructionBudgetExceeded, NotBuiltError
from repro.graphs.generators import grid_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.search.bfs import UNREACHED, bfs_distances


class TestALTExactness:
    def test_matches_bfs_on_scale_free(self, ba_graph):
        alt = ALTOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 150, seed=1)
        for s, t in pairs:
            truth = bfs_distances(ba_graph, int(s))[int(t)]
            assert alt.query(int(s), int(t)) == float(truth)

    def test_matches_bfs_on_grid(self):
        g = grid_graph(8, 8)
        alt = ALTOracle(num_landmarks=4).build(g)
        for s in range(0, 64, 9):
            truth = bfs_distances(g, s)
            for t in range(0, 64, 11):
                assert alt.query(s, t) == float(truth[t])

    def test_same_vertex_and_disconnected(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        alt = ALTOracle(num_landmarks=2).build(g)
        assert alt.query(2, 2) == 0.0
        assert alt.query(0, 4) == float("inf")

    def test_unbuilt_raises(self):
        with pytest.raises(NotBuiltError):
            ALTOracle().query(0, 1)

    def test_budget_dnf(self, ba_graph):
        with pytest.raises(ConstructionBudgetExceeded):
            ALTOracle(num_landmarks=8, budget_s=1e-9).build(ba_graph)


class TestHeuristicQuality:
    def test_heuristic_admissible(self, ba_graph):
        """h(v) never exceeds the true distance to the target."""
        alt = ALTOracle(num_landmarks=8).build(ba_graph)
        t = 17
        h = alt._heuristic_table(t)
        truth = bfs_distances(ba_graph, t)
        for v in range(0, ba_graph.num_vertices, 7):
            if truth[v] != UNREACHED:
                assert h[v] <= truth[v]

    def test_grid_heuristic_guides_search(self):
        """On near-metric graphs ALT settles far fewer vertices than BFS.

        Same-row query 0 -> 19 on a 20x20 grid: a plain BFS would settle
        every vertex within distance 19 (~210 of 400); the landmark
        heuristic beelines along the row.
        """
        g = grid_graph(20, 20)
        alt = ALTOracle(num_landmarks=8, landmark_strategy="random").build(g)
        d = alt.query(0, 19)
        assert d == 19.0
        from repro.search.bfs import bfs_distances

        bfs_region = int((bfs_distances(g, 0) <= d).sum())
        assert alt.last_settled < bfs_region * 0.5

    def test_complex_network_heuristic_degenerates(self, ba_graph):
        """The related-work claim: on small-world graphs the landmark
        lower bounds are nearly flat, so ALT explores a large fraction of
        the graph — unlike HL, whose bound-then-search stays local."""
        alt = ALTOracle(num_landmarks=8).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 30, seed=2)
        settled = []
        for s, t in pairs:
            alt.query(int(s), int(t))
            settled.append(alt.last_settled)
        mean_settled = sum(settled) / len(settled)
        # A* pops a sizeable fraction of a 300-vertex small-world graph.
        assert mean_settled > ba_graph.num_vertices * 0.1

    def test_size_reporting(self, ws_graph):
        alt = ALTOracle(num_landmarks=6).build(ws_graph)
        assert alt.size_bytes() == 6 * ws_graph.num_vertices * 5
        assert alt.average_label_size() == 6.0
