"""Tests for the online (index-free) oracles."""

import pytest

from repro.api import DistanceOracle
from repro.baselines.online import BFSOracle, BiBFSOracle, DijkstraOracle
from repro.errors import NotBuiltError
from repro.graphs.sampling import sample_vertex_pairs
from repro.search.bfs import bfs_distances


@pytest.mark.parametrize("factory", [BFSOracle, BiBFSOracle, DijkstraOracle])
class TestOnlineOracles:
    def test_protocol_conformance(self, factory):
        assert isinstance(factory(), DistanceOracle)

    def test_matches_bfs(self, factory, ba_graph):
        oracle = factory().build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 80, seed=1)
        for s, t in pairs:
            truth = bfs_distances(ba_graph, int(s))[int(t)]
            assert oracle.query(int(s), int(t)) == float(truth)

    def test_zero_index_size(self, factory, ws_graph):
        oracle = factory().build(ws_graph)
        assert oracle.size_bytes() == 0
        assert oracle.average_label_size() == 0.0

    def test_unbuilt_raises(self, factory):
        with pytest.raises(NotBuiltError):
            factory().query(0, 1)
