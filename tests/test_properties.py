"""Property-based tests (hypothesis) on the core invariants.

Random graphs are generated from hypothesis-drawn edge lists; every
invariant the paper proves is checked against a brute-force oracle:

* HL queries equal BFS distances (Theorem 4.6);
* labels match the Lemma 3.7 entry characterization (minimality);
* labels are landmark-order independent (Lemma 3.11);
* the stacked construction engine equals the looped builder bitwise,
  at every chunk size;
* dynamic ``insert_edge`` equals a fresh build under the stacked
  engine, including same-level chord (no-op) edges;
* upper bounds are admissible (Lemma 4.4);
* all baselines agree with BFS on random inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.fd import FullyDynamicOracle
from repro.baselines.isl import ISLabelOracle
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.core.construction import build_highway_cover_labelling
from repro.core.construction_engine import build_highway_cover_labelling_stacked
from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.query import HighwayCoverOracle
from repro.core.verification import labelling_entry_set, reference_minimal_entries
from repro.graphs.graph import Graph
from repro.search.bfs import UNREACHED, bfs_distances
from repro.search.bidirectional import bidirectional_bfs_distance
from repro.search.bounded import bounded_bidirectional_distance


@st.composite
def random_graphs(draw, min_vertices=2, max_vertices=40):
    """A random simple graph with at least one edge."""
    n = draw(st.integers(min_vertices, max_vertices))
    max_edges = min(n * (n - 1) // 2, 4 * n)
    num_edges = draw(st.integers(1, max_edges))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return Graph(n, edges)


@st.composite
def graphs_with_landmarks(draw):
    graph = draw(random_graphs())
    k = draw(st.integers(1, min(6, graph.num_vertices)))
    landmarks = draw(
        st.lists(
            st.integers(0, graph.num_vertices - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return graph, landmarks


def _truth(graph, s, t):
    d = bfs_distances(graph, s)[t]
    return float(d) if d != UNREACHED else float("inf")


@given(graphs_with_landmarks(), st.data())
@settings(max_examples=60, deadline=None)
def test_hl_query_equals_bfs(graph_landmarks, data):
    graph, landmarks = graph_landmarks
    oracle = HighwayCoverOracle(landmarks=landmarks).build(graph)
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    assert oracle.query(s, t) == _truth(graph, s, t)


@given(graphs_with_landmarks())
@settings(max_examples=40, deadline=None)
def test_labels_match_lemma_3_7_oracle(graph_landmarks):
    graph, landmarks = graph_landmarks
    labelling, highway = build_highway_cover_labelling(graph, landmarks)
    assert labelling_entry_set(labelling) == reference_minimal_entries(graph, highway)


@given(graphs_with_landmarks(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_order_independence(graph_landmarks, rnd):
    graph, landmarks = graph_landmarks
    shuffled = list(landmarks)
    rnd.shuffle(shuffled)
    base, _ = build_highway_cover_labelling(graph, landmarks)
    # Map entries back to landmark vertex ids for comparison.
    perm, _ = build_highway_cover_labelling(graph, shuffled)
    for v in range(graph.num_vertices):
        base_entries = {(landmarks[i], d) for i, d in base.label(v).entries()}
        perm_entries = {(shuffled[i], d) for i, d in perm.label(v).entries()}
        assert base_entries == perm_entries


@given(graphs_with_landmarks(), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_stacked_engine_equals_looped_builder(graph_landmarks, chunk_size):
    """Builder equivalence: the stacked engine is bitwise identical to
    the looped builder at every chunk size."""
    graph, landmarks = graph_landmarks
    looped_l, looped_h = build_highway_cover_labelling(
        graph, landmarks, engine="looped"
    )
    stacked_l, stacked_h = build_highway_cover_labelling_stacked(
        graph, landmarks, chunk_size=chunk_size
    )
    assert stacked_l == looped_l
    assert np.array_equal(stacked_h.matrix, looped_h.matrix)


@given(graphs_with_landmarks(), st.data())
@settings(max_examples=40, deadline=None)
def test_insert_edge_equals_fresh_build(graph_landmarks, data):
    """Dynamic repair under the stacked engine: inserting any non-edge
    (same-level chords included) leaves the oracle byte-identical to a
    fresh stacked build on the updated graph."""
    graph, landmarks = graph_landmarks
    n = graph.num_vertices
    non_edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not graph.has_edge(u, v)
    ]
    if not non_edges:
        return
    u, v = data.draw(st.sampled_from(non_edges))
    oracle = DynamicHighwayCoverOracle(landmarks=landmarks).build(graph)
    before = oracle.labelling
    affected = oracle.insert_edge(u, v)
    if not affected:
        # Same-level chord for every landmark: repair must be a no-op.
        assert oracle.labelling is before
    fresh = HighwayCoverOracle(landmarks=landmarks).build(oracle.graph)
    assert oracle.labelling == fresh.labelling
    assert np.array_equal(oracle.highway.matrix, fresh.highway.matrix)


@given(graphs_with_landmarks(), st.data())
@settings(max_examples=60, deadline=None)
def test_upper_bound_admissible(graph_landmarks, data):
    graph, landmarks = graph_landmarks
    oracle = HighwayCoverOracle(landmarks=landmarks).build(graph)
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    assert oracle.upper_bound(s, t) >= _truth(graph, s, t)


@given(random_graphs(), st.data())
@settings(max_examples=60, deadline=None)
def test_bidirectional_bfs_equals_bfs(graph, data):
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    assert bidirectional_bfs_distance(graph, s, t) == _truth(graph, s, t)


@given(random_graphs(), st.data(), st.integers(0, 10))
@settings(max_examples=60, deadline=None)
def test_bounded_search_definition_4_1(graph, data, slack):
    """Bounded search returns min(d_G'(s,t), bound) for admissible bounds."""
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    truth = _truth(graph, s, t)
    if s == t:
        return
    bound = truth + slack if truth != float("inf") else float("inf")
    if bound <= 0:
        return
    assert bounded_bidirectional_distance(graph, s, t, bound) == truth


@given(random_graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_pll_equals_bfs(graph, data):
    pll = PrunedLandmarkLabelling().build(graph)
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    assert pll.query(s, t) == _truth(graph, s, t)


@given(random_graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_fd_equals_bfs(graph, data):
    k = min(4, graph.num_vertices)
    fd = FullyDynamicOracle(num_landmarks=k).build(graph)
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    assert fd.query(s, t) == _truth(graph, s, t)


@given(random_graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_isl_equals_bfs(graph, data):
    isl = ISLabelOracle(num_levels=3).build(graph)
    s = data.draw(st.integers(0, graph.num_vertices - 1))
    t = data.draw(st.integers(0, graph.num_vertices - 1))
    assert isl.query(s, t) == _truth(graph, s, t)


@given(random_graphs())
@settings(max_examples=30, deadline=None)
def test_hl_size_at_most_full_pll(graph):
    """The measured form of the paper's size claim: HL entries never
    exceed the full PLL index (all vertices as roots).

    (Corollary 3.14's restricted-to-landmarks comparison assumes unique
    shortest paths — see tests/test_pll.py for details — so the property
    test checks the robust full-index version.)
    """
    k = min(4, graph.num_vertices)
    degrees = graph.degrees()
    landmarks = [int(v) for v in np.argsort(-degrees, kind="stable")[:k]]
    hl, _ = build_highway_cover_labelling(graph, landmarks)
    pll = PrunedLandmarkLabelling().build(graph)
    assert hl.size() <= pll.labelling_size()
