"""Tests for the pluggable LabelStore layer (vertex- vs landmark-major)."""

import numpy as np
import pytest

from repro.core.construction import build_highway_cover_labelling
from repro.core.labels import (
    HighwayCoverLabelling,
    LabelStore,
    LandmarkMajorLabelStore,
)
from repro.errors import ReproError
from repro.landmarks.selection import select_landmarks


@pytest.fixture(scope="module")
def built(ba_graph):
    landmarks = select_landmarks(ba_graph, 10)
    labelling, highway = build_highway_cover_labelling(ba_graph, landmarks)
    return ba_graph, landmarks, labelling, highway


class TestConversions:
    def test_round_trip_vertex_landmark_vertex_is_byte_identical(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        store._frozen = None  # force a real transpose, not the seeded cache
        back = store.as_vertex_major()
        assert np.array_equal(back.offsets, labelling.offsets)
        assert np.array_equal(back.landmark_indices, labelling.landmark_indices)
        assert np.array_equal(back.distances, labelling.distances)
        assert back.offsets.dtype == labelling.offsets.dtype
        assert back.landmark_indices.dtype == labelling.landmark_indices.dtype
        assert back.distances.dtype == labelling.distances.dtype

    def test_as_landmark_major_seeds_frozen_cache(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        assert store.as_vertex_major() is labelling

    def test_identity_conversions(self, built):
        _, _, labelling, _ = built
        assert labelling.as_vertex_major() is labelling
        store = labelling.as_landmark_major()
        assert store.as_landmark_major() is store

    def test_entries_of_landmark_views_are_read_only(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        vertices, distances = store.entries_of_landmark(0)
        with pytest.raises(ValueError):
            vertices[0] = 0
        with pytest.raises(ValueError):
            distances[0] = 0

    def test_runs_match_frozen_extraction(self, built):
        _, landmarks, labelling, _ = built
        store = labelling.as_landmark_major()
        for index in range(len(landmarks)):
            sv, sd = store.entries_of_landmark(index)
            fv, fd = labelling.entries_of_landmark(index)
            assert np.array_equal(sv, fv)
            assert np.array_equal(sd, fd)


class TestReads:
    def test_label_arrays_agree_per_vertex(self, built):
        graph, _, labelling, _ = built
        store = labelling.as_landmark_major()
        for v in range(graph.num_vertices):
            fi, fd = labelling.label_arrays(v)
            si, sd = store.label_arrays(v)
            assert np.array_equal(fi, si)
            assert np.array_equal(fd, sd)
            assert store.label_size(v) == labelling.label_size(v)

    def test_size_and_als_agree(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        assert store.size() == labelling.size()
        assert store.average_label_size() == labelling.average_label_size()

    def test_label_object(self, built):
        graph, _, labelling, _ = built
        store = labelling.as_landmark_major()
        v = graph.num_vertices - 1
        assert list(store.label(v).entries()) == list(labelling.label(v).entries())


class TestMutation:
    def test_splice_changes_only_the_target_run(self, built):
        _, landmarks, labelling, _ = built
        store = labelling.as_landmark_major()
        before = [store.entries_of_landmark(i) for i in range(len(landmarks))]
        new_vertices = np.array([5, 3, 9], dtype=np.int64)
        new_distances = np.array([1, 2, 3], dtype=np.int32)
        store.set_landmark_result(0, new_vertices, new_distances)
        got_v, got_d = store.entries_of_landmark(0)
        # Canonicalized to vertex-ascending order.
        assert got_v.tolist() == [3, 5, 9]
        assert got_d.tolist() == [2, 1, 3]
        for i in range(1, len(landmarks)):
            assert np.array_equal(store.entries_of_landmark(i)[0], before[i][0])
        assert store.size() == labelling.size() - len(before[0][0]) + 3

    def test_mutation_invalidates_frozen_cache(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        assert store.as_vertex_major() is labelling
        vertices, distances = store.entries_of_landmark(2)
        store.set_landmark_result(2, vertices, distances)
        refrozen = store.as_vertex_major()
        assert refrozen is not labelling
        assert store == labelling  # same logical content

    def test_length_mismatch_rejected(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        with pytest.raises(ReproError):
            store.set_landmark_result(
                0, np.array([1, 2]), np.array([1], dtype=np.int32)
            )

    def test_out_of_range_landmark_rejected(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        with pytest.raises(ReproError):
            store.set_landmark_result(
                store.num_landmarks, np.empty(0), np.empty(0, dtype=np.int32)
            )


class TestEquality:
    def test_cross_backend_equality(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        assert store == labelling
        assert labelling == store

    def test_inequality_after_divergence(self, built):
        _, _, labelling, _ = built
        store = labelling.as_landmark_major()
        store.set_landmark_result(
            0, np.array([1], dtype=np.int64), np.array([7], dtype=np.int32)
        )
        assert store != labelling

    def test_non_store_comparison(self, built):
        _, _, labelling, _ = built
        assert labelling != object()
        assert labelling.as_landmark_major() != 42


class TestEmptyStore:
    def test_empty_landmark_major_freezes_to_empty_csr(self):
        store = LandmarkMajorLabelStore(num_vertices=4, num_landmarks=2)
        frozen = store.as_vertex_major()
        assert isinstance(frozen, HighwayCoverLabelling)
        assert frozen.size() == 0
        assert frozen.offsets.tolist() == [0, 0, 0, 0, 0]
        idx, dist = store.label_arrays(3)
        assert len(idx) == 0 and len(dist) == 0

    def test_run_count_must_match_landmarks(self):
        with pytest.raises(ReproError):
            LandmarkMajorLabelStore(
                4, 2, [np.empty(0, dtype=np.int64)], [np.empty(0, dtype=np.int32)]
            )


class TestProtocol:
    def test_both_backends_are_label_stores(self, built):
        _, _, labelling, _ = built
        assert isinstance(labelling, LabelStore)
        assert isinstance(labelling.as_landmark_major(), LabelStore)
