"""Tests for bit-parallel BFS labels (S⁻¹/S⁰ mask semantics)."""

import numpy as np
import pytest

from repro.baselines.bitparallel import build_bit_parallel_labels
from repro.graphs.generators import grid_graph, path_graph, star_graph
from repro.search.bfs import UNREACHED, bfs_distances


class TestMaskSemantics:
    def _masks_match_definitions(self, graph, root, max_tracked=64):
        bp = build_bit_parallel_labels(graph, [root], max_tracked=max_tracked)
        dist_r = bfs_distances(graph, root)
        tracked = list(graph.neighbors(root)[:max_tracked])
        dists_c = {c: bfs_distances(graph, int(c)) for c in tracked}
        s_minus, s_zero = bp.minus_masks[0], bp.zero_masks[0]
        for v in range(graph.num_vertices):
            if dist_r[v] == UNREACHED:
                continue
            for bit, c in enumerate(tracked):
                dcv = int(dists_c[c][v])
                in_minus = bool(s_minus[v] & np.uint64(1 << bit))
                in_zero = bool(s_zero[v] & np.uint64(1 << bit))
                assert in_minus == (dcv == dist_r[v] - 1), (v, int(c))
                assert in_zero == (dcv == dist_r[v]), (v, int(c))

    def test_masks_on_scale_free(self, ba_graph):
        self._masks_match_definitions(ba_graph, root=0)

    def test_masks_on_grid(self):
        self._masks_match_definitions(grid_graph(5, 5), root=12)

    def test_masks_on_star(self):
        self._masks_match_definitions(star_graph(10), root=0, max_tracked=8)

    def test_masks_on_path(self):
        self._masks_match_definitions(path_graph(9), root=4)


class TestBPQuery:
    def test_refined_bound_admissible_and_tight_through_root(self, ba_graph):
        """BP query >= true distance; equality when a shortest path passes
        through the root or a tracked neighbour."""
        root = 0
        bp = build_bit_parallel_labels(ba_graph, [root])
        dist_r = bfs_distances(ba_graph, root)
        rng = np.random.default_rng(3)
        for _ in range(100):
            s, t = rng.integers(0, ba_graph.num_vertices, size=2)
            s, t = int(s), int(t)
            truth = bfs_distances(ba_graph, s)[t]
            estimate = bp.query(s, t)
            assert estimate >= truth
            # Always at least as tight as the unrefined two-hop bound.
            assert estimate <= dist_r[s] + dist_r[t]

    def test_exact_when_root_on_path(self):
        g = path_graph(7)
        bp = build_bit_parallel_labels(g, [3])
        assert bp.query(0, 6) == 6.0  # root 3 lies on the only path

    def test_neighbour_shortcut_refinement(self):
        # Cycle of 4: 0-1-2-3-0 with root 0; d(1,3) = 2 but the naive
        # two-hop bound through 0 is also 2; with root 1 and tracked
        # neighbour 2 the s_minus intersection fires for (2, 2)... use a
        # concrete refinement case: square plus diagonal anchor.
        from repro.graphs.graph import Graph

        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        bp = build_bit_parallel_labels(g, [0])
        # d(1, 3) = 2; bound through 0 = 1 + 1 = 2 (already exact).
        assert bp.query(1, 3) == 2.0

    def test_unreachable_skipped(self):
        from repro.graphs.graph import Graph

        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        bp = build_bit_parallel_labels(g, [1])
        assert bp.query(0, 3) == float("inf")

    def test_size_accounting(self, ws_graph):
        bp = build_bit_parallel_labels(ws_graph, [0, 1])
        assert bp.size_bytes() == 2 * ws_graph.num_vertices * 17
        assert bp.average_entries() > 0

    def test_invalid_max_tracked(self, ws_graph):
        with pytest.raises(ValueError):
            build_bit_parallel_labels(ws_graph, [0], max_tracked=65)
        with pytest.raises(ValueError):
            build_bit_parallel_labels(ws_graph, [0], max_tracked=0)
