"""Tests for the write-ahead log: format, torn-tail repair, replay."""

import struct
import zlib

import numpy as np
import pytest

from repro.core.dynamic import DynamicHighwayCoverOracle
from repro.core.wal import (
    FSYNC_POLICIES,
    HEADER_BYTES,
    WAL_MAGIC,
    WAL_VERSION,
    WalRecord,
    WriteAheadLog,
    replay_into,
    scan_wal,
)
from repro.errors import ReproError, WalError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs


def _encode_record(op_code: int, u: int, v: int) -> bytes:
    payload = struct.pack("<BQQ", op_code, u, v)
    return struct.pack("<II", len(payload), zlib.crc32(payload)) + payload


def _non_edges(graph, count):
    """Deterministic list of ``count`` vertex pairs that are not edges."""
    out = []
    n = graph.num_vertices
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v):
                out.append((u, v))
                if len(out) == count:
                    return out
    raise AssertionError("graph is complete")


class TestFormat:
    def test_new_log_writes_header(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            assert len(wal) == 0
        data = path.read_bytes()
        assert data[:4] == WAL_MAGIC
        assert struct.unpack("<I", data[4:8]) == (WAL_VERSION,)
        assert len(data) == HEADER_BYTES

    def test_append_round_trips_records(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            assert wal.append("insert_edge", 3, 17) == 1
            assert wal.append("delete_edge", 2**40, 5) == 2
        scan = scan_wal(path)
        assert scan.records == (
            WalRecord("insert_edge", 3, 17),
            WalRecord("delete_edge", 2**40, 5),
        )
        assert scan.torn_bytes == 0
        assert scan.valid_bytes == path.stat().st_size

    def test_reopen_restores_records(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append("insert_edge", 1, 2)
        with WriteAheadLog(path) as wal:
            assert wal.records() == [WalRecord("insert_edge", 1, 2)]
            wal.append("delete_edge", 1, 2)
            assert len(wal) == 2

    def test_truncate_cuts_to_header(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append("insert_edge", 1, 2)
            wal.truncate()
            assert len(wal) == 0
            # Appends after a truncation land at the header boundary.
            wal.append("insert_edge", 7, 8)
        assert scan_wal(path).records == (WalRecord("insert_edge", 7, 8),)

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_all_fsync_policies_round_trip(self, tmp_path, policy):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=policy) as wal:
            wal.append("insert_edge", 4, 9)
            wal.sync()
        assert scan_wal(path).records == (WalRecord("insert_edge", 4, 9),)

    def test_rejects_unknown_policy_op_and_negative_ids(self, tmp_path):
        with pytest.raises(WalError, match="fsync policy"):
            WriteAheadLog(tmp_path / "w.log", fsync="sometimes")
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            with pytest.raises(WalError, match="unknown WAL operation"):
                wal.append("rename_edge", 1, 2)
            with pytest.raises(WalError, match="negative vertex id"):
                wal.append("insert_edge", -1, 2)

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(WalError, match="closed"):
            wal.append("insert_edge", 1, 2)

    def test_wal_error_is_a_repro_error(self):
        assert issubclass(WalError, ReproError)


class TestTornTailAndCorruption:
    def _log_with_records(self, tmp_path, count=3):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(count):
                wal.append("insert_edge", i, i + 100)
        return path

    def test_torn_tail_reported_not_raised(self, tmp_path):
        path = self._log_with_records(tmp_path)
        whole = path.read_bytes()
        for cut in range(1, 24):  # every prefix of one 25-byte record
            path.write_bytes(whole[:-cut])
            scan = scan_wal(path)
            assert len(scan.records) == 2
            assert scan.torn_bytes == 25 - cut
            assert scan.valid_bytes == len(whole) - 25

    def test_reopen_repairs_torn_tail(self, tmp_path):
        path = self._log_with_records(tmp_path)
        path.write_bytes(path.read_bytes()[:-11])  # mid-record
        with WriteAheadLog(path) as wal:
            assert len(wal) == 2
            wal.append("delete_edge", 0, 100)
        scan = scan_wal(path)  # the repair left a clean record sequence
        assert scan.torn_bytes == 0
        assert len(scan.records) == 3

    def test_checksum_mismatch_raises(self, tmp_path):
        path = self._log_with_records(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        with pytest.raises(WalError, match="checksum mismatch in record 2"):
            scan_wal(path)
        with pytest.raises(WalError, match="checksum"):
            WriteAheadLog(path)

    def test_impossible_length_raises(self, tmp_path):
        path = self._log_with_records(tmp_path, count=1)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, HEADER_BYTES, 10_000)
        path.write_bytes(bytes(data))
        with pytest.raises(WalError, match="impossible record length 10000"):
            scan_wal(path)

    def test_unknown_opcode_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        payload = WAL_MAGIC + struct.pack("<I", WAL_VERSION)
        path.write_bytes(payload + _encode_record(9, 1, 2))
        with pytest.raises(WalError, match="unknown opcode 9"):
            scan_wal(path)

    def test_bad_magic_and_version_raise(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOPE" + struct.pack("<I", WAL_VERSION))
        with pytest.raises(WalError, match="not a repro WAL"):
            scan_wal(path)
        path.write_bytes(WAL_MAGIC + struct.pack("<I", 99))
        with pytest.raises(WalError, match="unsupported WAL version 99"):
            scan_wal(path)


class TestReplay:
    def _graph(self):
        return barabasi_albert_graph(150, 3, seed=21)

    def test_replay_matches_live_updates(self, tmp_path):
        graph = self._graph()
        (u1, v1), (u2, v2) = _non_edges(graph, 2)
        live = DynamicHighwayCoverOracle(num_landmarks=8).build(graph)
        live.attach_wal(WriteAheadLog(tmp_path / "wal.log"))
        live.insert_edge(u1, v1)
        live.insert_edge(u2, v2)
        live.delete_edge(u1, v1)
        live.wal.close()

        restored = DynamicHighwayCoverOracle(num_landmarks=8).build(graph)
        applied = replay_into(restored, scan_wal(tmp_path / "wal.log").records)
        assert applied == 3
        assert restored.labelling.as_vertex_major() == live.labelling.as_vertex_major()
        pairs = sample_vertex_pairs(graph, 100, seed=3)
        for s, t in pairs:
            assert restored.query(int(s), int(t)) == live.query(int(s), int(t))

    def test_replay_is_idempotent_over_applied_prefix(self, tmp_path):
        # The publish-then-truncate crash window: the snapshot already
        # contains the logged updates, so replay must skip them all.
        graph = self._graph()
        (u1, v1), (u2, v2) = _non_edges(graph, 2)
        oracle = DynamicHighwayCoverOracle(num_landmarks=6).build(graph)
        oracle.insert_edge(u1, v1)
        oracle.delete_edge(u1, v1)
        oracle.insert_edge(u2, v2)
        before = oracle.labelling.as_vertex_major()
        applied = replay_into(
            oracle,
            [
                WalRecord("insert_edge", u2, v2),  # already present
                WalRecord("delete_edge", u1, v1),  # already absent
            ],
        )
        assert applied == 0
        assert oracle.labelling.as_vertex_major() == before

    def test_replay_refuses_attached_oracle(self, tmp_path):
        oracle = DynamicHighwayCoverOracle(num_landmarks=4).build(self._graph())
        oracle.attach_wal(WriteAheadLog(tmp_path / "wal.log"))
        with pytest.raises(WalError, match="detached oracle"):
            replay_into(oracle, [WalRecord("insert_edge", 0, 99)])
        oracle.wal.close()

    def test_replay_rejects_out_of_range_vertices(self):
        oracle = DynamicHighwayCoverOracle(num_landmarks=4).build(self._graph())
        with pytest.raises(WalError, match="does not fit"):
            replay_into(oracle, [WalRecord("insert_edge", 0, 10_000)])

    def test_log_before_mutate_ordering(self, tmp_path):
        # A rejected update must not be logged: validation runs first.
        graph = self._graph()
        ((u, v),) = _non_edges(graph, 1)
        oracle = DynamicHighwayCoverOracle(num_landmarks=4).build(graph)
        wal = WriteAheadLog(tmp_path / "wal.log")
        oracle.attach_wal(wal)
        with pytest.raises(ValueError):
            oracle.insert_edge(0, 0)  # self loop
        with pytest.raises(ValueError):
            oracle.delete_edge(u, v)  # missing edge
        assert len(wal) == 0
        oracle.insert_edge(u, v)
        assert wal.records() == [WalRecord("insert_edge", u, v)]
        wal.close()

    def test_save_truncates_attached_wal(self, tmp_path):
        graph = self._graph()
        ((u, v),) = _non_edges(graph, 1)
        oracle = DynamicHighwayCoverOracle(num_landmarks=6).build(graph)
        oracle.attach_wal(WriteAheadLog(tmp_path / "wal.log"))
        oracle.insert_edge(u, v)
        assert len(oracle.wal) == 1
        oracle.save(tmp_path / "index.hl")
        assert len(oracle.wal) == 0
        assert scan_wal(tmp_path / "wal.log").records == ()
        oracle.wal.close()


class TestOpenOracleIntegration:
    def test_open_oracle_replays_and_attaches(self, tmp_path):
        from repro.api import build_oracle, open_oracle

        graph = barabasi_albert_graph(150, 3, seed=22)
        (u1, v1), (u2, v2) = _non_edges(graph, 2)
        wal_path = tmp_path / "wal.log"
        oracle = open_oracle(graph, wal=wal_path)
        oracle.insert_edge(u1, v1)
        oracle.insert_edge(u2, v2)
        final_graph = oracle.graph
        pairs = sample_vertex_pairs(graph, 80, seed=4)
        expected = oracle.query_many(pairs)
        oracle.wal.close()  # "crash": no save, no truncate

        reopened = open_oracle(graph, wal=wal_path)
        assert reopened.wal is not None and len(reopened.wal) == 2
        assert np.array_equal(reopened.query_many(pairs), expected)
        fresh = build_oracle(
            final_graph, "hl", num_landmarks=reopened.num_landmarks
        )
        assert np.array_equal(fresh.query_many(pairs), expected)
        reopened.wal.close()

    def test_open_oracle_snapshot_plus_wal(self, tmp_path):
        from repro.api import open_oracle

        graph = barabasi_albert_graph(150, 3, seed=23)
        ((u, v),) = _non_edges(graph, 1)
        wal_path = tmp_path / "wal.log"
        index = tmp_path / "index.hl"
        oracle = open_oracle(graph, wal=wal_path)
        oracle.save(index)  # truncates
        oracle.insert_edge(u, v)
        post_insert = oracle.graph
        pairs = sample_vertex_pairs(graph, 80, seed=5)
        expected = oracle.query_many(pairs)
        oracle.wal.close()

        # Restart from the snapshot: graph must match the snapshot's
        # state (pre-insert), the WAL supplies the rest.
        reopened = open_oracle(graph, index=index, wal=wal_path)
        assert np.array_equal(reopened.query_many(pairs), expected)
        assert reopened.graph.num_edges == post_insert.num_edges
        reopened.wal.close()

    def test_wal_implies_dynamic(self, tmp_path):
        from repro.api import open_oracle

        graph = barabasi_albert_graph(80, 2, seed=24)
        oracle = open_oracle(graph, wal=tmp_path / "wal.log")
        assert isinstance(oracle, DynamicHighwayCoverOracle)
        oracle.wal.close()
