"""Tests for the IS-Label baseline (independent-set hierarchy)."""

import numpy as np
import pytest

from repro.baselines.isl import ISLabelOracle
from repro.errors import ConstructionBudgetExceeded, NotBuiltError
from repro.graphs.generators import grid_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.search.bfs import UNREACHED, bfs_distances


class TestISLExactness:
    @pytest.mark.parametrize("levels", [1, 3, 6])
    def test_matches_bfs_scale_free(self, ba_graph, levels):
        isl = ISLabelOracle(num_levels=levels).build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 150, seed=1)
        for s, t in pairs:
            truth = bfs_distances(ba_graph, int(s))[int(t)]
            assert isl.query(int(s), int(t)) == float(truth)

    def test_matches_bfs_grid(self):
        """Grids peel almost entirely into the hierarchy (small core)."""
        g = grid_graph(6, 6)
        isl = ISLabelOracle(num_levels=6).build(g)
        for s in range(0, 36, 5):
            truth = bfs_distances(g, s)
            for t in range(0, 36, 7):
                assert isl.query(s, t) == float(truth[t])

    def test_path_graph_fully_peeled(self):
        g = path_graph(20)
        isl = ISLabelOracle(num_levels=10).build(g)
        assert isl.query(0, 19) == 19.0
        assert isl.query(3, 3) == 0.0

    def test_disconnected(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        isl = ISLabelOracle(num_levels=3).build(g)
        assert isl.query(0, 4) == float("inf")

    def test_unbuilt_raises(self):
        with pytest.raises(NotBuiltError):
            ISLabelOracle().query(0, 1)


class TestISLStructure:
    def test_levels_are_assigned(self, ba_graph):
        isl = ISLabelOracle(num_levels=4).build(ba_graph)
        assert isl.level_of is not None
        assert int(isl.level_of.min()) >= 0
        assert int(isl.level_of.max()) == 4  # core level

    def test_labels_point_upward(self, ba_graph):
        """Removal-time neighbours always live at strictly higher levels."""
        isl = ISLabelOracle(num_levels=4).build(ba_graph)
        assert isl.labels is not None and isl.level_of is not None
        for v in range(ba_graph.num_vertices):
            for parent, weight in isl.labels[v]:
                assert isl.level_of[parent] > isl.level_of[v]
                assert weight >= 1.0

    def test_independent_set_property(self, ba_graph):
        """No two vertices removed at the same level are adjacent in the
        level's working graph — verified for level 0 on the input graph."""
        isl = ISLabelOracle(num_levels=4).build(ba_graph)
        level0 = np.flatnonzero(isl.level_of == 0)
        level0_set = set(int(v) for v in level0)
        for v in level0_set:
            for u in ba_graph.neighbors(v):
                assert int(u) not in level0_set

    def test_core_adjacency_symmetric(self, ws_graph):
        isl = ISLabelOracle(num_levels=3).build(ws_graph)
        assert isl.core_adj is not None
        for u, edges in isl.core_adj.items():
            for v, w in edges:
                assert (u, w) in [(x, wx) for x, wx in isl.core_adj[v]] or any(
                    x == u and wx == w for x, wx in isl.core_adj[v]
                )

    def test_budget_dnf(self, ba_graph):
        with pytest.raises(ConstructionBudgetExceeded):
            ISLabelOracle(budget_s=1e-9).build(ba_graph)

    def test_size_reporting(self, ws_graph):
        isl = ISLabelOracle(num_levels=3).build(ws_graph)
        assert isl.labelling_size() > 0
        assert isl.size_bytes() == isl.labelling_size() * 8
        assert isl.average_label_size() > 0
