"""Tests for the PLL baseline (pruned landmark labelling)."""

import pytest

from repro.baselines.pll import PrunedLandmarkLabelling
from repro.core.construction import build_highway_cover_labelling
from repro.errors import ConstructionBudgetExceeded, NotBuiltError
from repro.graphs.sampling import sample_vertex_pairs
from repro.landmarks.selection import select_landmarks
from repro.search.bfs import UNREACHED, bfs_distances


class TestPLLExactness:
    def test_matches_bfs(self, ba_graph):
        pll = PrunedLandmarkLabelling().build(ba_graph)
        pairs = sample_vertex_pairs(ba_graph, 200, seed=1)
        for s, t in pairs:
            truth = bfs_distances(ba_graph, int(s))[int(t)]
            assert pll.query(int(s), int(t)) == float(truth)

    def test_with_bit_parallel_roots(self, ws_graph):
        pll = PrunedLandmarkLabelling(bp_roots=4).build(ws_graph)
        pairs = sample_vertex_pairs(ws_graph, 150, seed=2)
        for s, t in pairs:
            truth = bfs_distances(ws_graph, int(s))[int(t)]
            assert pll.query(int(s), int(t)) == float(truth)

    def test_same_vertex(self, ba_graph):
        pll = PrunedLandmarkLabelling().build(ba_graph)
        assert pll.query(3, 3) == 0.0

    def test_disconnected(self):
        from repro.graphs.graph import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        pll = PrunedLandmarkLabelling().build(g)
        assert pll.query(0, 2) == float("inf")

    def test_unbuilt_raises(self):
        with pytest.raises(NotBuiltError):
            PrunedLandmarkLabelling().query(0, 1)


class TestPLLProperties:
    def test_order_dependence_example_3_10(self, example_graph):
        """Different landmark orders produce different labelling sizes."""
        rest = [v for v in range(example_graph.num_vertices) if v not in (1, 5, 9)]
        size_a = (
            PrunedLandmarkLabelling(order=[1, 5, 9] + rest)
            .build(example_graph)
            .labelling_size()
        )
        size_b = (
            PrunedLandmarkLabelling(order=[9, 5, 1] + rest)
            .build(example_graph)
            .labelling_size()
        )
        assert size_a != size_b

    def test_hl_labelling_far_smaller_than_full_pll(self, ba_graph):
        """The size gap Tables 2-3 report: HL entries << full PLL entries.

        Note on Corollary 3.14: the paper's claim that HL is no larger
        than PLL *restricted to the same landmarks* relies on shortest
        paths being unique. With multiple shortest paths (ubiquitous in
        complex networks), PLL prunes an entry when *some* shortest path
        passes an earlier landmark, while Algorithm 1 only prunes when
        *every* shortest path is blocked — so the restricted comparison
        can go either way (a diamond graph is a counterexample). What the
        paper's evaluation actually measures, and what we assert, is HL
        against the full PLL index over all vertex roots.
        """
        landmarks = select_landmarks(ba_graph, 8)
        hl_labels, _ = build_highway_cover_labelling(ba_graph, landmarks)
        pll = PrunedLandmarkLabelling().build(ba_graph)
        assert hl_labels.size() < pll.labelling_size()

    def test_corollary_3_14_unique_shortest_paths(self):
        """On a tree, shortest paths are unique and Corollary 3.14 holds."""
        from repro.graphs.generators import path_graph

        g = path_graph(30)
        landmarks = [5, 15, 25]
        hl_labels, _ = build_highway_cover_labelling(g, landmarks)
        rest = [v for v in range(30) if v not in landmarks]
        pll = PrunedLandmarkLabelling(order=landmarks + rest).build(g)
        assert pll.labels is not None
        pll_landmark_entries = sum(
            1
            for v in range(30)
            if v not in landmarks
            for rank, _ in pll.labels[v]
            if rank < 3
        )
        assert hl_labels.size() <= pll_landmark_entries

    def test_degree_order_is_default(self, ba_graph):
        pll = PrunedLandmarkLabelling().build(ba_graph)
        degrees = ba_graph.degrees()
        assert degrees[pll._order[0]] == degrees.max()

    def test_budget_dnf(self, ba_graph):
        with pytest.raises(ConstructionBudgetExceeded):
            PrunedLandmarkLabelling(budget_s=1e-9).build(ba_graph)

    def test_size_reporting(self, ws_graph):
        pll = PrunedLandmarkLabelling().build(ws_graph)
        assert pll.labelling_size() > 0
        assert pll.size_bytes() == pll.labelling_size() * 5
        assert pll.average_label_size() == pytest.approx(
            pll.labelling_size() / ws_graph.num_vertices
        )

    def test_bp_roots_add_bytes(self, ws_graph):
        plain = PrunedLandmarkLabelling().build(ws_graph)
        bp = PrunedLandmarkLabelling(bp_roots=4).build(ws_graph)
        assert bp.size_bytes() > 0
        assert bp.bp_labels is not None
        assert bp.bp_labels.num_roots == 4
        # BP pruning can only shrink the normal labelling.
        assert bp.labelling_size() <= plain.labelling_size()
