"""Unit tests for edge-list and binary graph IO."""

import pytest

from repro.errors import GraphError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.graphs.io import read_binary, read_edge_list, write_binary, write_edge_list


class TestEdgeListRoundTrip:
    def test_round_trip(self, tmp_path):
        g = barabasi_albert_graph(60, 2, seed=1, name="rt")
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, name="rt")
        assert g == g2

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% other comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_non_contiguous_ids_are_compacted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("10 20\n20 30\n")
        g = read_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_extra_columns_tolerated(self, tmp_path):
        # SNAP files sometimes carry weights/timestamps in column 3.
        path = tmp_path / "g.txt"
        path.write_text("0 1 42\n1 2 7\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = read_edge_list(path)
        assert g.num_vertices == 0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_negative_id_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 2\n")
        with pytest.raises(GraphError):
            read_edge_list(path)


class TestBinaryRoundTrip:
    def test_round_trip_preserves_graph_and_name(self, tmp_path):
        g = barabasi_albert_graph(80, 3, seed=2, name="binary-test")
        path = tmp_path / "g.bin"
        write_binary(g, path)
        g2 = read_binary(path)
        assert g2.name == "binary-test"
        assert g == g2

    def test_empty_graph(self, tmp_path):
        g = Graph(0, [], name="empty")
        path = tmp_path / "g.bin"
        write_binary(g, path)
        assert read_binary(path).num_vertices == 0

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(GraphError):
            read_binary(path)
