"""Property tests for streaming ingest and the RPDC disk-backed CSR.

The executable contract: for every well-formed edge-list text —
whatever mix of comments, blank lines, CRLF endings, duplicate /
reversed / self edges, extra columns, gzip compression, and raw id
magnitudes — ``ingest_edge_list`` must produce a disk CSR that opens
to **the same graph** (and, name permitting, the same file bytes) as
``read_edge_list`` → ``write_graph_disk_csr``.  Malformed inputs must
fail with the same ``path:line`` diagnostics in both parsers.
"""

import gzip
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.ingest import ingest_edge_list
from repro.errors import GraphError, ReproError
from repro.graphs.disk_csr import (
    DISK_CSR_MAGIC,
    drop_resident_pages,
    is_disk_csr,
    open_disk_csr,
    publish_disk_csr,
    read_disk_csr_header,
    write_graph_disk_csr,
)
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.graphs.io import read_edge_list

# Raw-id pools straddling the u16 sentinel boundary (65535 is the v2
# snapshot's unreachable marker), the u32 boundary, and small ids that
# collide often enough to exercise duplicate elimination.
_VERTEX_IDS = st.one_of(
    st.integers(0, 9),
    st.integers(65533, 65538),
    st.integers(2**32 - 3, 2**32 + 3),
    st.integers(0, 2**40),
)


@st.composite
def rendered_edge_lists(draw):
    """An edge list plus a messy-but-well-formed text rendering of it."""
    edges = draw(
        st.lists(st.tuples(_VERTEX_IDS, _VERTEX_IDS), min_size=0, max_size=30)
    )
    newline = draw(st.sampled_from(["\n", "\r\n"]))
    lines = ["# comment header", ""]
    for u, v in edges:
        if draw(st.booleans()):
            u, v = v, u  # direction never matters for undirected input
        sep = draw(st.sampled_from([" ", "\t", "   "]))
        extra = draw(st.sampled_from(["", " 42", "\tweight=3"]))
        lines.append(f"{u}{sep}{v}{extra}")
        if draw(st.booleans()):
            lines.append(draw(st.sampled_from(["", "% konect comment", "# x"])))
    text = newline.join(lines)
    if draw(st.booleans()):
        text += newline  # trailing newline is optional
    return edges, text.encode()


class TestIngestProperties:
    @settings(max_examples=50, deadline=None)
    @given(case=rendered_edge_lists(), data=st.data())
    def test_round_trip_matches_read_edge_list(self, case, data):
        edges, text = case
        chunk_bytes = data.draw(st.sampled_from([3, 17, 1 << 20]))
        use_gzip = data.draw(st.booleans())
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            plain = tmp / "edges.txt"
            plain.write_bytes(text)
            source = plain
            if use_gzip:
                source = tmp / "edges.txt.gz"
                source.write_bytes(gzip.compress(text))
            out = tmp / "edges.rpdc"
            report = ingest_edge_list(
                source,
                out,
                name="edges",
                chunk_bytes=chunk_bytes,
            )
            expected = read_edge_list(plain)
            got = open_disk_csr(out)

            assert got.num_vertices == expected.num_vertices
            assert np.array_equal(got.csr.indptr, expected.csr.indptr)
            assert np.array_equal(got.csr.indices, expected.csr.indices)

            # The streamed file must be byte-identical to the one the
            # in-memory path would publish for the same graph.
            reference = tmp / "reference.rpdc"
            expected.name = "edges"
            write_graph_disk_csr(expected, reference)
            assert out.read_bytes() == reference.read_bytes()

            # Report bookkeeping must reconcile with the parsed edges.
            loops = sum(1 for u, v in edges if u == v)
            unique = {(min(u, v), max(u, v)) for u, v in edges if u != v}
            assert report.num_vertices == expected.num_vertices
            assert report.num_edges == expected.num_edges == len(unique)
            assert report.self_loops == loops
            assert report.duplicates == len(edges) - loops - len(unique)
            assert report.lines_data == len(edges)

    @settings(max_examples=25, deadline=None)
    @given(case=rendered_edge_lists())
    def test_tiny_memory_budget_changes_nothing(self, case):
        # The budget floor forces the bucketed external-memory path to
        # behave identically however little scratch it is given.
        _, text = case
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            plain = tmp / "edges.txt"
            plain.write_bytes(text)
            small = tmp / "small.rpdc"
            big = tmp / "big.rpdc"
            ingest_edge_list(
                plain, small, name="edges", chunk_bytes=5, memory_budget_bytes=1
            )
            ingest_edge_list(plain, big, name="edges")
            assert small.read_bytes() == big.read_bytes()


class TestIngestParsing:
    def _ingest(self, tmp_path, text, **kwargs):
        source = tmp_path / "in.txt"
        if isinstance(text, str):
            text = text.encode()
        source.write_bytes(text)
        out = tmp_path / "out.rpdc"
        report = ingest_edge_list(source, out, **kwargs)
        return report, out

    def test_crlf_comments_and_duplicates(self, tmp_path):
        text = "# header\r\n0 1\r\n\r\n1 0\r\n% mid\r\n1 2\r\n2 2\r\n"
        report, out = self._ingest(tmp_path, text)
        graph = open_disk_csr(out)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert report.duplicates == 1
        assert report.self_loops == 1
        assert report.lines_total == 7  # includes the trailing empty line
        assert report.lines_data == 4

    def test_self_loop_endpoint_still_counts_as_vertex(self, tmp_path):
        _, out = self._ingest(tmp_path, "0 1\n7 7\n")
        graph = open_disk_csr(out)
        assert graph.num_vertices == 3  # ids 0, 1, 7 compacted
        assert graph.num_edges == 1
        assert graph.degree(2) == 0

    def test_empty_and_comment_only_files(self, tmp_path):
        for text in ("", "# nothing\n% here\n\n"):
            report, out = self._ingest(tmp_path, text)
            graph = open_disk_csr(out)
            assert graph.num_vertices == 0
            assert graph.num_edges == 0
            assert report.num_edges == 0

    def test_gzip_detected_by_magic_not_suffix(self, tmp_path):
        source = tmp_path / "edges.dat"  # no .gz suffix on purpose
        source.write_bytes(gzip.compress(b"0 1\n1 2\n"))
        out = tmp_path / "out.rpdc"
        ingest_edge_list(source, out)
        assert open_disk_csr(out).num_edges == 2

    def test_malformed_line_reports_exact_position(self, tmp_path):
        with pytest.raises(GraphError, match=r"in\.txt:3: expected 'u v'"):
            self._ingest(tmp_path, "0 1\n# fine\nbroken\n0 2\n")

    def test_error_position_survives_chunk_splitting(self, tmp_path):
        lines = [f"{i} {i + 1}" for i in range(50)] + ["0 oops"]
        with pytest.raises(GraphError, match=r"in\.txt:51: non-integer"):
            self._ingest(tmp_path, "\n".join(lines) + "\n", chunk_bytes=7)

    def test_negative_id_rejected(self, tmp_path):
        with pytest.raises(GraphError, match=r"in\.txt:2: negative vertex id"):
            self._ingest(tmp_path, "0 1\n3 -4\n")

    def test_short_line_rejected_even_when_token_count_balances(self, tmp_path):
        # "1" + "2 3 4" has 4 tokens over 2 lines; a naive bulk
        # tokenizer would pair them up as (1,2),(3,4) — read_edge_list
        # rejects the short line, and so must ingest.
        with pytest.raises(GraphError, match=r"in\.txt:1: expected 'u v'"):
            self._ingest(tmp_path, "1\n2 3 4\n")

    def test_extra_columns_ignored_like_read_edge_list(self, tmp_path):
        _, out = self._ingest(tmp_path, "0 1 17.5\n1 2\tlabel\n")
        assert open_disk_csr(out).num_edges == 2

    def test_multi_bucket_scatter_is_exact(self, tmp_path):
        # ~7000 directed pairs x 16 bytes > the 64KiB budget floor, so
        # the scatter pass genuinely fans out over several bucket files.
        graph = barabasi_albert_graph(1200, 3, seed=77, name="in")
        source = tmp_path / "in.txt"
        with source.open("w") as handle:
            for u, v in graph.edges():
                handle.write(f"{u} {v}\n")
        out = tmp_path / "out.rpdc"
        report = ingest_edge_list(source, out, memory_budget_bytes=1)
        assert report.buckets > 1
        got = open_disk_csr(out)
        assert np.array_equal(got.csr.indptr, graph.csr.indptr)
        assert np.array_equal(got.csr.indices, graph.csr.indices)

    def test_parse_batching_preserves_results_and_line_numbers(
        self, tmp_path, monkeypatch
    ):
        # Force multi-batch parsing within a single chunk: results and
        # error positions must be unchanged (batching only bounds the
        # per-line Python object churn).
        import repro.datasets.ingest as ingest_mod

        monkeypatch.setattr(ingest_mod, "_PARSE_BATCH_LINES", 3)
        graph = barabasi_albert_graph(60, 2, seed=13, name="in")
        source = tmp_path / "in.txt"
        with source.open("w") as handle:
            handle.write("# header\n")
            for u, v in graph.edges():
                handle.write(f"{u} {v}\n")
        out = tmp_path / "out.rpdc"
        ingest_edge_list(source, out)
        got = open_disk_csr(out)
        assert np.array_equal(got.csr.indptr, graph.csr.indptr)
        assert np.array_equal(got.csr.indices, graph.csr.indices)

        bad = tmp_path / "bad.txt"
        bad.write_text("0 1\n1 2\n2 3\n3 4\nnope\n")
        with pytest.raises(GraphError, match=r"bad\.txt:5"):
            ingest_edge_list(bad, tmp_path / "bad.rpdc")


class TestDiskCSRFormat:
    def test_header_round_trip_and_sniffing(self, tmp_path):
        graph = barabasi_albert_graph(50, 2, seed=5, name="héader")
        path = tmp_path / "g.rpdc"
        write_graph_disk_csr(graph, path)
        assert is_disk_csr(path)
        header = read_disk_csr_header(path)
        assert header.num_vertices == graph.num_vertices
        assert header.num_directed_edges == len(graph.csr.indices)
        assert header.name == "héader"
        assert not header.wide
        other = tmp_path / "not.rpdc"
        other.write_bytes(b"RPRG" + b"\x00" * 30)
        assert not is_disk_csr(other)
        assert not is_disk_csr(tmp_path / "missing.rpdc")

    def test_wide_format_round_trip(self, tmp_path):
        graph = barabasi_albert_graph(80, 2, seed=6, name="wide")
        path = tmp_path / "g.rpdc"
        write_graph_disk_csr(graph, path, wide=True)
        header = read_disk_csr_header(path)
        assert header.wide
        assert header.index_dtype == np.dtype("<i8")
        got = open_disk_csr(path)
        assert np.array_equal(got.csr.indices, graph.csr.indices)
        narrow = tmp_path / "n.rpdc"
        write_graph_disk_csr(graph, narrow)
        assert path.stat().st_size > narrow.stat().st_size

    def test_mmap_and_copy_modes_agree(self, tmp_path):
        graph = barabasi_albert_graph(60, 3, seed=7)
        path = tmp_path / "g.rpdc"
        write_graph_disk_csr(graph, path)
        mapped = open_disk_csr(path, mmap=True)
        copied = open_disk_csr(path, mmap=False)
        assert isinstance(mapped.csr.indices, np.memmap)
        assert not isinstance(copied.csr.indices, np.memmap)
        assert np.array_equal(mapped.csr.indices, copied.csr.indices)
        assert drop_resident_pages(mapped.csr.indptr, mapped.csr.indices) == 2
        assert drop_resident_pages(copied.csr.indices) == 0
        assert np.array_equal(mapped.csr.indices, graph.csr.indices)

    def test_publish_validates_indptr_and_chunks(self, tmp_path):
        path = tmp_path / "bad.rpdc"
        good_indptr = np.array([0, 1, 2], dtype=np.int64)
        with pytest.raises(GraphError, match="indptr"):
            publish_disk_csr(path, np.array([1, 2], dtype=np.int64), [])
        with pytest.raises(GraphError, match="indptr"):
            publish_disk_csr(path, np.array([0, 2, 1], dtype=np.int64), [])
        with pytest.raises(GraphError, match="adjacency"):
            publish_disk_csr(
                path, good_indptr, [np.array([1], dtype=np.int64)]
            )
        with pytest.raises(GraphError, match="range"):
            publish_disk_csr(
                path, good_indptr, [np.array([1, 5], dtype=np.int64)]
            )
        assert not path.exists()  # nothing published on failure
        assert not list(tmp_path.glob("*.tmp"))  # no litter either

    def test_atomic_publish_leaves_no_temp_files(self, tmp_path):
        graph = barabasi_albert_graph(40, 2, seed=8)
        path = tmp_path / "g.rpdc"
        write_graph_disk_csr(graph, path)
        write_graph_disk_csr(graph, path)  # overwrite in place is fine
        assert sorted(p.name for p in tmp_path.iterdir()) == ["g.rpdc"]

    def test_open_rejects_corrupt_files(self, tmp_path):
        graph = barabasi_albert_graph(40, 2, seed=9)
        path = tmp_path / "g.rpdc"
        write_graph_disk_csr(graph, path)
        data = path.read_bytes()
        bad = tmp_path / "bad.rpdc"
        bad.write_bytes(data[: len(data) - 5])
        with pytest.raises(GraphError):
            open_disk_csr(bad)
        bad.write_bytes(b"XXXX" + data[4:])
        with pytest.raises(GraphError, match="not a repro disk-CSR"):
            open_disk_csr(bad)
        assert DISK_CSR_MAGIC == data[:4]

    def test_served_answers_match_in_memory_graph(self, tmp_path):
        # End-to-end: a memmapped disk CSR drives the oracle exactly
        # like the in-memory graph it came from.
        from repro.core.query import HighwayCoverOracle

        graph = barabasi_albert_graph(150, 3, seed=10, name="serve")
        path = tmp_path / "g.rpdc"
        write_graph_disk_csr(graph, path)
        mapped = open_disk_csr(path)
        a = HighwayCoverOracle(num_landmarks=8).build(graph)
        b = HighwayCoverOracle(num_landmarks=8).build(mapped)
        rng = np.random.default_rng(3)
        for s, t in rng.integers(0, graph.num_vertices, size=(50, 2)):
            assert a.query(int(s), int(t)) == b.query(int(s), int(t))


class TestDatasetScaleValidation:
    def test_rejects_nonpositive_and_nonfinite_scales(self):
        from repro.datasets import load_dataset

        for bad in (0, -1, -0.5, float("nan"), float("inf"), "x"):
            with pytest.raises(ReproError, match="scale"):
                load_dataset("Skitter", scale=bad)

    def test_valid_scale_still_generates(self):
        from repro.datasets import load_dataset

        graph = load_dataset("Skitter", scale=0.05)
        assert graph.num_vertices >= 64
