"""Differential-testing harness for labelling builders.

Every construction path in the library — the paper-literal looped
builder, the stacked bit-parallel engine (HL-C) at several chunk sizes,
both HL-P backends, and both label-store backends (frozen vertex-major
CSR and mutable landmark-major runs, compared through the canonical
vertex-major form) — must produce **byte-identical** labellings and
highways on the same (graph, landmark) input; that is the executable
form of Lemma 3.11 plus the engine's correctness contract. The harness
provides:

* :func:`harness_cases` — a seeded, deterministic grid of graph
  topologies (BA / WS / ER / grid / disconnected) × landmark counts;
* :func:`build_all_variants` — one labelling per builder variant;
* :func:`assert_builders_agree` — byte-equality across all variants
  plus a ground-truth check that decoded label distances match
  brute-force BFS;
* :func:`assert_kernels_agree` — the query-side twin: every available
  kernel backend (:mod:`repro.core.kernels`) must answer point queries,
  bounds, coverage, and batch queries byte-identically on the same
  built oracle (``tests/test_kernels.py`` drives it over the grid).

``tests/test_construction_engine.py`` drives it over the full grid; any
new builder variant should be added to :data:`BUILDER_VARIANTS` so it is
pinned by the same differential tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.construction import build_highway_cover_labelling
from repro.core.construction_engine import build_highway_cover_labelling_stacked
from repro.core.highway import Highway
from repro.core.labels import HighwayCoverLabelling
from repro.core.parallel import build_highway_cover_labelling_parallel
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph
from repro.landmarks.selection import select_landmarks
from repro.search.bfs import UNREACHED, bfs_distances

BuildResult = Tuple[HighwayCoverLabelling, Highway]


def _build_out_of_core(graph: Graph, landmarks: Sequence[int]) -> BuildResult:
    """Build via the spill-to-disk path, then reload the v2 snapshot.

    Exercises the full out-of-core round trip — chunked BFS, structured
    spill files, scatter assembly — with a chunk size small enough to
    force multiple spill generations on every harness case.
    """
    import tempfile
    from pathlib import Path

    from repro.core.ooc import build_snapshot_out_of_core
    from repro.core.serialization import load_oracle

    with tempfile.TemporaryDirectory(prefix="repro-harness-ooc-") as tmp:
        path = Path(tmp) / "ooc.hl"
        build_snapshot_out_of_core(
            graph, landmarks, path, chunk_size=3, edge_block=512
        )
        oracle = load_oracle(graph, path, mmap=False)
    assert oracle.labelling is not None and oracle.highway is not None
    return oracle.labelling, oracle.highway


def _disconnected_graph() -> Graph:
    """Two BA components plus isolated vertices, wired deterministically."""
    left = barabasi_albert_graph(40, 2, seed=31)
    right = barabasi_albert_graph(30, 2, seed=32)
    offset = left.num_vertices
    edges = [(u, v) for u, v in left.edges()]
    edges += [(u + offset, v + offset) for u, v in right.edges()]
    return Graph(offset + right.num_vertices + 3, edges, name="disconnected")


#: name -> zero-argument factory; all seeded, so cases are reproducible.
HARNESS_GRAPHS: Dict[str, Callable[[], Graph]] = {
    "ba": lambda: barabasi_albert_graph(120, 3, seed=21, name="ba"),
    "ws": lambda: watts_strogatz_graph(110, 4, 0.2, seed=22, name="ws"),
    "er": lambda: erdos_renyi_graph(100, 3.0, seed=23, name="er"),
    "grid": lambda: grid_graph(9, 11, name="grid"),
    "disconnected": _disconnected_graph,
}

LANDMARK_COUNTS: Tuple[int, ...] = (1, 5, 12)

#: name -> builder callable; every variant must agree byte-for-byte.
BUILDER_VARIANTS: Dict[str, Callable[[Graph, Sequence[int]], BuildResult]] = {
    "looped": lambda g, lms: build_highway_cover_labelling(g, lms, engine="looped"),
    "stacked": lambda g, lms: build_highway_cover_labelling_stacked(g, lms),
    "stacked-chunk1": lambda g, lms: build_highway_cover_labelling_stacked(
        g, lms, chunk_size=1
    ),
    "stacked-chunk3": lambda g, lms: build_highway_cover_labelling_stacked(
        g, lms, chunk_size=3
    ),
    "parallel-thread": lambda g, lms: build_highway_cover_labelling_parallel(
        g, lms, backend="thread", workers=3, chunk_size=2
    ),
    "parallel-process": lambda g, lms: build_highway_cover_labelling_parallel(
        g, lms, backend="process", workers=2, chunk_size=4
    ),
    "stacked-landmark-store": lambda g, lms: build_highway_cover_labelling_stacked(
        g, lms, store="landmark"
    ),
    "parallel-landmark-store": lambda g, lms: build_highway_cover_labelling_parallel(
        g, lms, backend="thread", workers=2, chunk_size=3, store="landmark"
    ),
    "ooc-snapshot": _build_out_of_core,
}


def harness_cases() -> Iterator[Tuple[str, Graph, List[int]]]:
    """Yield ``(case_id, graph, landmarks)`` over the full seeded grid."""
    for name, factory in HARNESS_GRAPHS.items():
        graph = factory()
        for k in LANDMARK_COUNTS:
            count = min(k, graph.num_vertices)
            landmarks = select_landmarks(graph, count)
            yield f"{name}-k{count}", graph, landmarks


def build_all_variants(
    graph: Graph, landmarks: Sequence[int]
) -> Dict[str, BuildResult]:
    """Build the labelling with every registered builder variant."""
    return {
        name: builder(graph, landmarks)
        for name, builder in BUILDER_VARIANTS.items()
    }


def assert_labelled_distances_exact(
    graph: Graph, landmarks: Sequence[int], labelling: HighwayCoverLabelling
) -> None:
    """Every label entry must decode to the brute-force BFS distance."""
    landmark_arr = np.asarray(landmarks, dtype=np.int64)
    for index, r in enumerate(landmark_arr):
        truth = bfs_distances(graph, int(r))
        positions = np.flatnonzero(labelling.landmark_indices == index)
        vertices = (
            np.searchsorted(labelling.offsets, positions, side="right") - 1
        )
        assert (truth[vertices] != UNREACHED).all(), f"landmark {r} labelled an unreachable vertex"
        assert np.array_equal(
            labelling.distances[positions], truth[vertices]
        ), f"landmark {r} produced a wrong labelled distance"


def sample_query_pairs(
    graph: Graph, landmarks: Sequence[int], count: int = 64, seed: int = 9172
) -> np.ndarray:
    """A deterministic ``(count+3, 2)`` pair mix covering every vertex class.

    Random pairs plus one same-vertex pair, one landmark-landmark pair,
    and one landmark-vertex pair, so kernel comparisons exercise all the
    query paths (including, on the disconnected harness graphs,
    cross-component and isolated-vertex pairs).
    """
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, graph.num_vertices, size=(count, 2), dtype=np.int64)
    r0, r1 = int(landmarks[0]), int(landmarks[-1])
    non_landmark = next(
        v for v in range(graph.num_vertices) if v not in set(map(int, landmarks))
    )
    extras = np.array(
        [[non_landmark, non_landmark], [r0, r1], [r0, non_landmark]],
        dtype=np.int64,
    )
    return np.vstack([pairs, extras])


def assert_kernels_agree(graph: Graph, landmarks: Sequence[int]) -> None:
    """Every available kernel backend answers byte-identically.

    Builds one oracle, then swaps backends with ``set_kernel`` and
    compares point queries, upper bounds, coverage flags, and the batch
    engine's answers (which must also match the scalar path within each
    backend) against the first backend's results.
    """
    from repro.core.kernels import available_kernels
    from repro.core.query import HighwayCoverOracle

    oracle = HighwayCoverOracle(
        num_landmarks=len(landmarks), landmarks=landmarks
    ).build(graph)
    pairs = sample_query_pairs(graph, landmarks)
    reference = None
    for name in available_kernels():
        oracle.set_kernel(name)
        point = np.array(
            [oracle.query(int(s), int(t)) for s, t in pairs], dtype=float
        )
        bounds = np.array(
            [oracle.upper_bound(int(s), int(t)) for s, t in pairs], dtype=float
        )
        covered = np.array(
            [oracle.is_covered(int(s), int(t)) for s, t in pairs], dtype=bool
        )
        batch, batch_covered = oracle.query_many(pairs, return_coverage=True)
        assert np.array_equal(point, batch), (
            f"kernel {name!r}: query_many diverged from looped query"
        )
        assert np.array_equal(covered, batch_covered), (
            f"kernel {name!r}: batch coverage diverged from is_covered"
        )
        if reference is None:
            reference = (name, point, bounds, covered)
            continue
        ref_name, ref_point, ref_bounds, ref_covered = reference
        assert np.array_equal(point, ref_point), (
            f"kernel {name!r} distances diverged from {ref_name!r}"
        )
        assert np.array_equal(bounds, ref_bounds), (
            f"kernel {name!r} bounds diverged from {ref_name!r}"
        )
        assert np.array_equal(covered, ref_covered), (
            f"kernel {name!r} coverage diverged from {ref_name!r}"
        )


def assert_builders_agree(graph: Graph, landmarks: Sequence[int]) -> None:
    """All builder variants byte-agree and decode to exact distances."""
    results = build_all_variants(graph, landmarks)
    ref_name = "looped"
    ref_labelling, ref_highway = results[ref_name]
    for name, (labelling, highway) in results.items():
        assert labelling == ref_labelling, (
            f"builder {name!r} diverged from {ref_name!r} labelling"
        )
        assert np.array_equal(highway.matrix, ref_highway.matrix), (
            f"builder {name!r} diverged from {ref_name!r} highway"
        )
    assert_labelled_distances_exact(graph, landmarks, ref_labelling)
