"""Tests for label compression and Table 3 byte accounting."""

import numpy as np
import pytest

from repro.core.compression import (
    LabelCodec,
    decode_labels,
    encode_labels,
    encoded_size_bytes,
)
from repro.core.construction import build_highway_cover_labelling
from repro.core.query import HighwayCoverOracle
from repro.errors import CompressionError
from repro.landmarks.selection import select_landmarks


class TestLabelCodec:
    def test_entry_widths_match_section_5_2(self):
        assert LabelCodec("u32").bytes_per_entry == 5  # 32-bit id + 8-bit dist
        assert LabelCodec("u8").bytes_per_entry == 2  # 8-bit id + 8-bit dist

    def test_unknown_codec_rejected(self):
        with pytest.raises(CompressionError):
            LabelCodec("u16")

    def test_u8_landmark_capacity(self):
        assert LabelCodec("u8").max_landmarks == 256


class TestByteAccounting:
    def test_hl8_smaller_than_hl(self, ba_graph):
        landmarks = select_landmarks(ba_graph, 8)
        labelling, highway = build_highway_cover_labelling(ba_graph, landmarks)
        wide = encoded_size_bytes(labelling, highway, LabelCodec("u32"))
        narrow = encoded_size_bytes(labelling, highway, LabelCodec("u8"))
        assert narrow < wide
        # The entry payload shrinks by exactly 5:2.
        entries = labelling.size()
        assert wide - narrow == entries * 3

    def test_oracle_size_bytes_uses_codec(self, ba_graph):
        wide = HighwayCoverOracle(num_landmarks=6, codec="u32").build(ba_graph)
        narrow = HighwayCoverOracle(num_landmarks=6, codec="u8").build(ba_graph)
        assert narrow.size_bytes() < wide.size_bytes()
        # Same labelling, same ALS.
        assert narrow.average_label_size() == wide.average_label_size()


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ["u32", "u8"])
    def test_lossless(self, ba_graph, kind):
        landmarks = select_landmarks(ba_graph, 8)
        labelling, _ = build_highway_cover_labelling(ba_graph, landmarks)
        codec = LabelCodec(kind)
        enc_idx, enc_dist = encode_labels(labelling, codec)
        decoded = decode_labels(
            labelling.num_vertices,
            labelling.num_landmarks,
            labelling.offsets,
            enc_idx,
            enc_dist,
        )
        assert decoded == labelling

    def test_u8_overflow_rejected(self):
        """A labelling with >256 landmarks cannot use the u8 codec."""
        from repro.core.highway import Highway
        from repro.core.labels import LabelAccumulator

        acc = LabelAccumulator(num_vertices=300, num_landmarks=300)
        for i in range(300):
            acc.add_landmark_result(i, np.asarray([0]), np.asarray([1]))
        labelling = acc.freeze()
        highway = Highway(list(range(1, 301)))
        with pytest.raises(CompressionError):
            LabelCodec("u8").validate(labelling, highway)
        with pytest.raises(CompressionError):
            encode_labels(labelling, LabelCodec("u8"))
