"""Unit tests for the CSR adjacency core."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.csr import (
    CSRAdjacency,
    build_csr,
    frontier_neighbors,
    induced_subgraph_csr,
)


class TestBuildCSR:
    def test_simple_triangle(self):
        csr = build_csr(3, [(0, 1), (1, 2), (0, 2)])
        assert csr.num_vertices == 3
        assert csr.num_directed_edges == 6
        assert list(csr.neighbors(0)) == [1, 2]
        assert list(csr.neighbors(1)) == [0, 2]
        assert list(csr.neighbors(2)) == [0, 1]

    def test_deduplicates_parallel_edges(self):
        csr = build_csr(2, [(0, 1), (0, 1), (1, 0)])
        assert csr.num_directed_edges == 2

    def test_drops_self_loops(self):
        csr = build_csr(2, [(0, 0), (0, 1), (1, 1)])
        assert csr.num_directed_edges == 2
        assert list(csr.neighbors(0)) == [1]

    def test_empty_graph(self):
        csr = build_csr(0, [])
        assert csr.num_vertices == 0
        assert csr.num_directed_edges == 0

    def test_vertices_without_edges(self):
        csr = build_csr(5, [(0, 1)])
        assert csr.degree(4) == 0
        assert csr.degree(0) == 1

    def test_neighbors_sorted(self):
        csr = build_csr(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert list(csr.neighbors(2)) == [0, 1, 3, 4]

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(GraphError):
            build_csr(2, [(0, 2)])
        with pytest.raises(GraphError):
            build_csr(2, [(-1, 0)])

    def test_negative_vertex_count_raises(self):
        with pytest.raises(GraphError):
            build_csr(-1, [])

    def test_malformed_edge_list_raises(self):
        with pytest.raises(GraphError):
            build_csr(3, np.asarray([1, 2, 3]))

    def test_degrees_match_indptr(self):
        csr = build_csr(4, [(0, 1), (0, 2), (0, 3)])
        assert list(csr.degrees()) == [3, 1, 1, 1]


class TestFrontierNeighbors:
    def test_single_vertex_frontier(self):
        csr = build_csr(4, [(0, 1), (0, 2), (1, 3)])
        out = frontier_neighbors(csr, np.asarray([0]))
        assert sorted(out.tolist()) == [1, 2]

    def test_multi_vertex_frontier_concatenates(self):
        csr = build_csr(4, [(0, 1), (0, 2), (1, 3)])
        out = frontier_neighbors(csr, np.asarray([0, 1]))
        assert sorted(out.tolist()) == [0, 1, 2, 3]

    def test_isolated_vertices_contribute_nothing(self):
        csr = build_csr(4, [(0, 1)])
        out = frontier_neighbors(csr, np.asarray([2, 3]))
        assert out.size == 0

    def test_matches_naive_gather_on_random_graph(self):
        rng = np.random.default_rng(5)
        edges = rng.integers(0, 50, size=(200, 2))
        csr = build_csr(50, edges)
        frontier = np.unique(rng.integers(0, 50, size=10)).astype(np.int64)
        fast = sorted(frontier_neighbors(csr, frontier).tolist())
        slow = sorted(
            int(v) for u in frontier for v in csr.neighbors(int(u))
        )
        assert fast == slow


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        csr = build_csr(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        keep = np.asarray([True, True, True, False, False])
        sub, old_ids = induced_subgraph_csr(csr, keep)
        assert sub.num_vertices == 3
        assert sub.num_directed_edges == 4  # edges (0,1) and (1,2)
        assert old_ids.tolist() == [0, 1, 2]

    def test_empty_keep(self):
        csr = build_csr(3, [(0, 1)])
        sub, old_ids = induced_subgraph_csr(csr, np.zeros(3, dtype=bool))
        assert sub.num_vertices == 0
        assert old_ids.size == 0

    def test_wrong_mask_shape_raises(self):
        csr = build_csr(3, [(0, 1)])
        with pytest.raises(GraphError):
            induced_subgraph_csr(csr, np.zeros(2, dtype=bool))
