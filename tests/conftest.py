"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import pytest

from repro.datasets.example_graph import paper_example_graph
from repro.graphs.connectivity import largest_connected_component
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph


@pytest.fixture(scope="session")
def ba_graph() -> Graph:
    """A 300-vertex scale-free graph (connected by construction)."""
    return barabasi_albert_graph(300, 3, seed=11)


@pytest.fixture(scope="session")
def ws_graph() -> Graph:
    """A 200-vertex small-world graph (largest component)."""
    graph, _ = largest_connected_component(watts_strogatz_graph(200, 4, 0.1, seed=12))
    return graph


@pytest.fixture(scope="session")
def er_graph() -> Graph:
    """A sparse random graph (largest component; has longer distances)."""
    graph, _ = largest_connected_component(erdos_renyi_graph(250, 3.0, seed=13))
    return graph


@pytest.fixture(scope="session")
def example_graph() -> Graph:
    """The paper's 14-vertex running example (Figures 2-5)."""
    return paper_example_graph()


@pytest.fixture(scope="session")
def tiny_graphs() -> list:
    """A basket of deterministic corner-case topologies."""
    return [
        path_graph(2),
        path_graph(7),
        star_graph(6),
        grid_graph(4, 5),
        Graph(1, [], name="singleton"),
        Graph(5, [(0, 1), (2, 3)], name="disconnected"),
        Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="cycle4"),
    ]
