"""Tests for HL index serialization (save/load round trips)."""

import numpy as np
import pytest

from repro.core.query import HighwayCoverOracle
from repro.core.serialization import load_oracle, save_oracle
from repro.errors import NotBuiltError, ReproError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs


class TestRoundTrip:
    def test_loaded_oracle_answers_identically(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        path = tmp_path / "index.hl"
        written = save_oracle(oracle, path)
        assert written == path.stat().st_size > 0

        loaded = load_oracle(ba_graph, path)
        pairs = sample_vertex_pairs(ba_graph, 120, seed=1)
        for s, t in pairs:
            assert loaded.query(int(s), int(t)) == oracle.query(int(s), int(t))

    def test_state_identical(self, ws_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=5).build(ws_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        loaded = load_oracle(ws_graph, path)
        assert loaded.labelling == oracle.labelling
        assert np.array_equal(loaded.highway.matrix, oracle.highway.matrix)
        assert np.array_equal(loaded.highway.landmarks, oracle.highway.landmarks)

    def test_disconnected_highway_entries_survive(self, tmp_path):
        from repro.graphs.graph import Graph

        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        oracle = HighwayCoverOracle(landmarks=[1, 4]).build(g)
        assert oracle.highway.distance(1, 4) == float("inf")
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        loaded = load_oracle(g, path)
        assert loaded.highway.distance(1, 4) == float("inf")
        assert loaded.query(0, 5) == float("inf")
        assert loaded.query(0, 2) == 2.0


class TestValidation:
    def test_unbuilt_oracle_rejected(self, tmp_path):
        with pytest.raises(NotBuiltError):
            save_oracle(HighwayCoverOracle(), tmp_path / "x.hl")

    def test_bad_magic_rejected(self, ba_graph, tmp_path):
        path = tmp_path / "junk.hl"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(ReproError):
            load_oracle(ba_graph, path)

    def test_wrong_graph_size_rejected(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        other = barabasi_albert_graph(50, 2, seed=9)
        with pytest.raises(ReproError):
            load_oracle(other, path)
