"""Tests for HL index serialization (save/load round trips)."""

import struct

import numpy as np
import pytest

from repro.core.query import HighwayCoverOracle
from repro.core.serialization import load_oracle, save_oracle
from repro.errors import NotBuiltError, ReproError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.sampling import sample_vertex_pairs


class TestRoundTrip:
    def test_loaded_oracle_answers_identically(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        path = tmp_path / "index.hl"
        written = save_oracle(oracle, path)
        assert written == path.stat().st_size > 0

        loaded = load_oracle(ba_graph, path)
        pairs = sample_vertex_pairs(ba_graph, 120, seed=1)
        for s, t in pairs:
            assert loaded.query(int(s), int(t)) == oracle.query(int(s), int(t))

    def test_state_identical(self, ws_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=5).build(ws_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        loaded = load_oracle(ws_graph, path)
        assert loaded.labelling == oracle.labelling
        assert np.array_equal(loaded.highway.matrix, oracle.highway.matrix)
        assert np.array_equal(loaded.highway.landmarks, oracle.highway.landmarks)

    def test_disconnected_highway_entries_survive(self, tmp_path):
        from repro.graphs.graph import Graph

        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        oracle = HighwayCoverOracle(landmarks=[1, 4]).build(g)
        assert oracle.highway.distance(1, 4) == float("inf")
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        loaded = load_oracle(g, path)
        assert loaded.highway.distance(1, 4) == float("inf")
        assert loaded.query(0, 5) == float("inf")
        assert loaded.query(0, 2) == 2.0


class TestVersionsAndMmap:
    @pytest.mark.parametrize("version", [1, 2])
    def test_round_trip_both_versions(self, ba_graph, tmp_path, version):
        oracle = HighwayCoverOracle(num_landmarks=6).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path, version=version)
        loaded = load_oracle(ba_graph, path)
        assert loaded.labelling == oracle.labelling
        assert np.array_equal(loaded.highway.matrix, oracle.highway.matrix)

    def test_v2_sections_are_aligned(self, ba_graph, tmp_path):
        from repro.core.serialization import _section_offsets

        oracle = HighwayCoverOracle(num_landmarks=6).build(ba_graph)
        labelling = oracle.labelling.as_vertex_major()
        sections = _section_offsets(
            2, labelling.num_vertices, 6, labelling.size(), narrow=True
        )
        assert all(start % 64 == 0 for start in sections[:-1])

    def test_mmap_load_is_zero_copy_and_query_correct(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=8).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path, version=2)
        mapped = load_oracle(ba_graph, path, mmap=True)
        labelling = mapped.labelling
        assert isinstance(labelling.offsets, np.memmap)
        assert isinstance(labelling.landmark_indices, np.memmap)
        assert isinstance(labelling.distances, np.memmap)
        for s, t in sample_vertex_pairs(ba_graph, 80, seed=2):
            assert mapped.query(int(s), int(t)) == oracle.query(int(s), int(t))
        # Batch path snapshots the mapped arrays without modification.
        pairs = sample_vertex_pairs(ba_graph, 50, seed=3)
        assert np.array_equal(mapped.query_many(pairs), oracle.query_many(pairs))

    def test_mmap_long_distances_do_not_wrap(self, tmp_path):
        """Regression: u8 memmap label distances summed past 255.

        On a long path the common-landmark bound adds two label legs
        whose sum exceeds the u8 range; the mmap-backed store must
        promote before summing instead of wrapping to a too-small (and
        inadmissible) bound.
        """
        from repro.graphs.generators import path_graph

        g = path_graph(256)
        oracle = HighwayCoverOracle(landmarks=[0]).build(g)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path, version=2)
        mapped = load_oracle(g, path, mmap=True)
        assert mapped.upper_bound(100, 250) == oracle.upper_bound(100, 250)
        assert mapped.query(100, 250) == 150.0
        pairs = np.array([[100, 250], [3, 255], [0, 200]])
        assert np.array_equal(mapped.query_many(pairs), oracle.query_many(pairs))

    def test_mmap_requires_v2(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path, version=1)
        with pytest.raises(ReproError, match="v2"):
            load_oracle(ba_graph, path, mmap=True)

    def test_landmark_store_oracle_saves(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=5, store="landmark").build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        assert load_oracle(ba_graph, path).labelling == oracle.labelling


class TestValidation:
    def test_unbuilt_oracle_rejected(self, tmp_path):
        with pytest.raises(NotBuiltError):
            save_oracle(HighwayCoverOracle(), tmp_path / "x.hl")

    def test_bad_magic_rejected(self, ba_graph, tmp_path):
        path = tmp_path / "junk.hl"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(ReproError):
            load_oracle(ba_graph, path)

    def test_wrong_graph_size_rejected(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        other = barabasi_albert_graph(50, 2, seed=9)
        with pytest.raises(ReproError):
            load_oracle(other, path)

    def test_unsupported_save_version_rejected(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        with pytest.raises(ReproError, match="version"):
            save_oracle(oracle, tmp_path / "x.hl", version=3)

    def test_unsupported_load_version_rejected(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        blob = bytearray(path.read_bytes())
        blob[4:8] = struct.pack("<I", 9)
        path.write_bytes(bytes(blob))
        with pytest.raises(ReproError, match="version 9"):
            load_oracle(ba_graph, path)

    def test_unknown_flag_bits_rejected(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        blob = bytearray(path.read_bytes())
        blob[8:12] = struct.pack("<I", 0x80)
        path.write_bytes(bytes(blob))
        with pytest.raises(ReproError, match="flag"):
            load_oracle(ba_graph, path)

    @pytest.mark.parametrize("keep", [2, 10, 31, 40, 200])
    def test_truncated_file_gives_clear_error(self, ba_graph, tmp_path, keep):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        path.write_bytes(path.read_bytes()[:keep])
        with pytest.raises(ReproError):
            load_oracle(ba_graph, path)

    def test_trailing_garbage_rejected(self, ba_graph, tmp_path):
        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        path = tmp_path / "index.hl"
        save_oracle(oracle, path)
        path.write_bytes(path.read_bytes() + b"\x00" * 16)
        with pytest.raises(ReproError, match="truncated or oversized"):
            load_oracle(ba_graph, path)

    def test_inconsistent_offsets_rejected(self, ba_graph, tmp_path):
        from repro.core.serialization import _section_offsets

        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        labelling = oracle.labelling.as_vertex_major()
        path = tmp_path / "index.hl"
        save_oracle(oracle, path, version=2)
        sections = _section_offsets(
            2, labelling.num_vertices, 4, labelling.size(), narrow=True
        )
        blob = bytearray(path.read_bytes())
        # Corrupt the final offset so offsets[-1] != entries.
        last_offset_at = sections[2] + 8 * labelling.num_vertices
        blob[last_offset_at : last_offset_at + 8] = struct.pack(
            "<q", labelling.size() + 1
        )
        path.write_bytes(bytes(blob))
        with pytest.raises(ReproError, match="offsets"):
            load_oracle(ba_graph, path)

    def test_non_monotone_interior_offsets_rejected(self, ba_graph, tmp_path):
        from repro.core.serialization import _section_offsets

        oracle = HighwayCoverOracle(num_landmarks=4).build(ba_graph)
        labelling = oracle.labelling.as_vertex_major()
        path = tmp_path / "index.hl"
        save_oracle(oracle, path, version=2)
        sections = _section_offsets(
            2, labelling.num_vertices, 4, labelling.size(), narrow=True
        )
        blob = bytearray(path.read_bytes())
        # Corrupt an interior offset (endpoints stay valid).
        mid = sections[2] + 8 * (labelling.num_vertices // 2)
        blob[mid : mid + 8] = struct.pack("<q", -5)
        path.write_bytes(bytes(blob))
        with pytest.raises(ReproError, match="non-decreasing"):
            load_oracle(ba_graph, path)
