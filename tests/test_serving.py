"""Tests for the :class:`~repro.serving.DistanceService` facade.

The acceptance bar the suite enforces: micro-batched concurrent
queries are **identical** to sequential ``oracle.query`` (same floats,
including ``inf``), coalescing actually happens under concurrency,
dynamic updates never interleave with query execution, and the stats
surface reports what happened.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import build_oracle
from repro.errors import CapabilityError, ReproError, ServiceClosedError
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.graphs.sampling import sample_vertex_pairs
from repro.serving import DistanceService


@pytest.fixture(scope="module")
def served_graph() -> Graph:
    return barabasi_albert_graph(600, 4, seed=19)


@pytest.fixture(scope="module")
def served_oracle(served_graph):
    return build_oracle(served_graph, "hl", num_landmarks=10)


def _drive(service, name, pairs, out, lo, hi):
    for i in range(lo, hi):
        out[i] = service.query(name, int(pairs[i, 0]), int(pairs[i, 1]))


def _run_threads(service, name, pairs, threads=8):
    out = np.empty(len(pairs), dtype=float)
    bounds = np.linspace(0, len(pairs), threads + 1).astype(int)
    workers = [
        threading.Thread(
            target=_drive, args=(service, name, pairs, out, int(lo), int(hi))
        )
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    return out


class TestConcurrentExactness:
    def test_coalesced_answers_equal_sequential_query(
        self, served_graph, served_oracle
    ):
        pairs = sample_vertex_pairs(served_graph, 1500, seed=3)
        expected = np.array(
            [served_oracle.query(int(s), int(t)) for s, t in pairs]
        )
        with DistanceService(max_wait_ms=1.0) as service:
            service.register("g", served_oracle)
            results = _run_threads(service, "g", pairs, threads=16)
            stats = service.stats("g")
        assert np.array_equal(results, expected)
        assert stats["queries"] == len(pairs)
        # Coalescing must actually happen under 16 concurrent threads.
        assert stats["batch_occupancy"] > 1.0
        assert stats["batches"] < len(pairs)

    def test_disconnected_pairs_serve_inf(self):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4)], name="split")
        oracle = build_oracle(graph, "hl", num_landmarks=2)
        with DistanceService(max_wait_ms=0.0) as service:
            service.register("g", oracle)
            assert service.query("g", 0, 3) == float("inf")
            assert service.query("g", 0, 2) == 2.0
            assert service.query("g", 5, 5) == 0.0

    def test_query_async_pipelined_exact(self, served_graph, served_oracle):
        """A single thread pipelining futures gets exact answers and
        coalesces them into large micro-batches."""
        pairs = sample_vertex_pairs(served_graph, 400, seed=41)
        expected = served_oracle.query_many(pairs)
        with DistanceService(max_wait_ms=1.0) as service:
            service.register("g", served_oracle)
            futures = [
                service.query_async("g", int(s), int(t)) for s, t in pairs
            ]
            results = np.array([f.result() for f in futures])
            stats = service.stats("g")
        assert np.array_equal(results, expected)
        assert stats["batch_occupancy"] > 1.0
        assert stats["max_batch"] > 16

    def test_query_many_direct_path(self, served_graph, served_oracle):
        pairs = sample_vertex_pairs(served_graph, 200, seed=5)
        with DistanceService() as service:
            service.register("g", served_oracle)
            bulk = service.query_many("g", pairs)
        assert np.array_equal(bulk, served_oracle.query_many(pairs))

    def test_zero_wait_still_exact(self, served_graph, served_oracle):
        pairs = sample_vertex_pairs(served_graph, 300, seed=7)
        expected = served_oracle.query_many(pairs)
        with DistanceService(max_wait_ms=0.0) as service:
            service.register("g", served_oracle)
            results = _run_threads(service, "g", pairs, threads=4)
        assert np.array_equal(results, expected)

    def test_invalid_vertex_raises_in_caller_thread(
        self, served_graph, served_oracle
    ):
        from repro.errors import VertexError

        with DistanceService(max_wait_ms=0.0) as service:
            service.register("g", served_oracle)
            with pytest.raises(VertexError):
                service.query("g", 0, served_graph.num_vertices + 5)
            with pytest.raises(VertexError):
                service.query_async("g", -1, 0)
            # The worker survives and keeps serving.
            assert service.query("g", 0, 0) == 0.0

    def test_failing_query_does_not_poison_batch_mates(
        self, served_graph, served_oracle
    ):
        """If the vectorized batch path blows up, batch-mates still get
        their own (correct) answers; only the offender errors."""
        with DistanceService(max_wait_ms=5.0) as service:
            service.register("g", served_oracle)
            # Sneak a malformed pending past enqueue validation to
            # force the batch itself to fail.
            good = service.query_async("g", 0, 5)
            entry = service._entry("g")
            bad = service.query_async("g", 0, 1)
            with entry.lock:
                for pending in entry.queue:
                    if pending.s == 0 and pending.t == 1:
                        pending.t = served_graph.num_vertices + 7
            assert good.result() == served_oracle.query(0, 5)
            with pytest.raises(ReproError):
                bad.result()
            assert service.query("g", 0, 0) == 0.0

    def test_cancelled_future_does_not_kill_worker(
        self, served_graph, served_oracle
    ):
        with DistanceService(max_wait_ms=20.0) as service:
            service.register("g", served_oracle)
            first = service.query_async("g", 0, 5)
            first.cancel()  # may or may not win the race with the worker
            # The worker must keep serving either way.
            assert service.query("g", 0, 5) == served_oracle.query(0, 5)
            assert first.cancelled() or first.result() == served_oracle.query(0, 5)


class TestCoalescingDeadline:
    """The coalescing window is pinned to the oldest query's enqueue
    time — regression tests for the deadline bug where it was restarted
    from "now" whenever the collector woke up."""

    def test_straggler_stream_cannot_stretch_the_window(
        self, served_graph, served_oracle
    ):
        """A first query followed by a slow stream of stragglers must be
        answered within ~one max_wait_s window, not one window per
        straggler."""
        window_s = 0.05
        with DistanceService(max_wait_ms=window_s * 1e3) as service:
            service.register("g", served_oracle)
            stop = threading.Event()

            def slow_submitter():
                # One straggler every window/2 — under a sliding-window
                # deadline these would extend the batch indefinitely.
                while not stop.is_set():
                    service.query_async("g", 0, 1)
                    time.sleep(window_s / 2)

            submitter = threading.Thread(target=slow_submitter)
            first = service.query_async("g", 0, 2)
            submitted = time.perf_counter()
            submitter.start()
            try:
                first.result(timeout=10.0)
                waited = time.perf_counter() - submitted
            finally:
                stop.set()
                submitter.join()
        assert first.result() == served_oracle.query(0, 2)
        # Generous CI margin: 4 windows, not the 10+ a sliding deadline
        # would take before the straggler stream happened to pause.
        assert waited < 4 * window_s, (
            f"first query waited {waited * 1e3:.0f}ms — the straggler "
            f"stream stretched the {window_s * 1e3:.0f}ms window"
        )

    def test_query_that_outwaited_its_window_runs_immediately(
        self, served_graph, served_oracle
    ):
        """A query enqueued while the worker drains a previous (slow)
        batch has already served its window when the worker returns; it
        must execute immediately, not pay a second window."""
        window_s = 0.25
        block = threading.Event()
        real_query_many = served_oracle.query_many

        def gated_query_many(pairs, **kwargs):
            block.wait(timeout=10.0)
            return real_query_many(pairs, **kwargs)

        with DistanceService(max_wait_ms=window_s * 1e3) as service:
            service.register("g", served_oracle)
            entry = service._entry("g")
            entry.oracle = type(
                "GatedOracle",
                (),
                {
                    "graph": served_oracle.graph,
                    "query_many": staticmethod(gated_query_many),
                    "query": staticmethod(served_oracle.query),
                },
            )()
            first = service.query_async("g", 0, 1)  # batch 1: blocks
            time.sleep(window_s / 5)  # let the worker pick batch 1 up
            second = service.query_async("g", 0, 2)  # waits behind it
            time.sleep(window_s * 1.5)  # second outlives its own window
            block.set()  # batch 1 finishes; batch 2 must run *now*
            released = time.perf_counter()
            assert first.result(timeout=10.0) == served_oracle.query(0, 1)
            assert second.result(timeout=10.0) == served_oracle.query(0, 2)
            lag = time.perf_counter() - released
        assert lag < window_s, (
            f"second query paid a fresh {window_s * 1e3:.0f}ms window "
            f"({lag * 1e3:.0f}ms) after already waiting out its own"
        )


class TestThreadedExecution:
    def test_service_threads_stay_exact(self, served_graph, served_oracle):
        """threads=2 routes micro-batches through a thread pool; the
        answers must stay byte-identical to the sequential oracle."""
        pairs = sample_vertex_pairs(served_graph, 1200, seed=43)
        expected = served_oracle.query_many(pairs)
        with DistanceService(max_wait_ms=1.0, threads=2) as service:
            service.register("g", served_oracle)
            results = _run_threads(service, "g", pairs, threads=8)
            bulk = service.query_many("g", pairs)
            stats = service.stats("g")
        assert np.array_equal(results, expected)
        assert np.array_equal(bulk, expected)
        assert stats["executor"]["threads"] == 2

    def test_stats_surface_executor_block(self, served_graph, served_oracle):
        with DistanceService(max_wait_ms=0.0, threads=2) as service:
            service.register("g", served_oracle)
            pairs = sample_vertex_pairs(served_graph, 600, seed=47)
            service.query_many("g", pairs)
            executor_stats = service.stats("g")["executor"]
        assert executor_stats["threads"] == 2
        assert executor_stats["parallel_batches"] >= 1
        assert len(executor_stats["per_thread"]) == 2

    def test_invalid_threads_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            DistanceService(threads=0)


class TestRegistry:
    def test_open_hosts_via_open_oracle(self, served_graph):
        with DistanceService() as service:
            service.open("a", served_graph, num_landmarks=6)
            service.open("b", served_graph, num_landmarks=6, dynamic=True)
            assert service.names() == ["a", "b"]
            assert service.query("a", 0, 1) == service.query("b", 0, 1)

    def test_duplicate_and_unknown_names_raise(self, served_graph, served_oracle):
        with DistanceService() as service:
            service.register("g", served_oracle)
            with pytest.raises(ReproError, match="already registered"):
                service.register("g", served_oracle)
            with pytest.raises(ReproError, match="unknown graph"):
                service.query("nope", 0, 1)

    def test_unbuilt_oracle_rejected(self):
        from repro.api import make_oracle

        with DistanceService() as service:
            with pytest.raises(ReproError, match="built"):
                service.register("g", make_oracle("hl"))

    def test_closed_service_raises(self, served_graph, served_oracle):
        service = DistanceService()
        service.register("g", served_oracle)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.query("g", 0, 1)
        with pytest.raises(ServiceClosedError):
            service.register("h", served_oracle)
        service.close()  # idempotent


class TestDynamicUpdates:
    def test_static_oracle_refuses_updates(self, served_graph, served_oracle):
        with DistanceService() as service:
            service.register("g", served_oracle)
            with pytest.raises(CapabilityError, match="DYNAMIC"):
                service.insert_edge("g", 0, 1)

    def test_update_is_visible_and_versioned(self, served_graph):
        with DistanceService(max_wait_ms=0.0) as service:
            service.open("g", served_graph, num_landmarks=8, dynamic=True)
            oracle = service.oracle("g")
            rng = np.random.default_rng(11)
            while True:
                u, v = (int(x) for x in rng.integers(0, served_graph.num_vertices, 2))
                if u != v and not oracle.graph.has_edge(u, v):
                    break
            assert service.version("g") == 0
            before = service.query("g", u, v)
            assert before > 1.0
            service.insert_edge("g", u, v)
            assert service.version("g") == 2  # seqlock: back to even
            assert service.query("g", u, v) == 1.0
            service.delete_edge("g", u, v)
            assert service.version("g") == 4
            assert service.query("g", u, v) == before
            assert service.stats("g")["updates"] == 2

    def test_updates_under_concurrent_load_stay_exact(self, served_graph):
        """Hammer queries while edges stream in; then cross-check the
        final served state against a fresh build (byte-identical store)."""
        with DistanceService(max_wait_ms=0.5) as service:
            service.open("g", served_graph, num_landmarks=8, dynamic=True)
            oracle = service.oracle("g")
            pairs = sample_vertex_pairs(served_graph, 400, seed=13)
            stop = threading.Event()
            errors: list = []

            def hammer():
                i = 0
                try:
                    while not stop.is_set():
                        s, t = pairs[i % len(pairs)]
                        service.query("g", int(s), int(t))
                        i += 1
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            workers = [threading.Thread(target=hammer) for _ in range(6)]
            for w in workers:
                w.start()
            rng = np.random.default_rng(29)
            inserted = 0
            while inserted < 4:
                u, v = (int(x) for x in rng.integers(0, served_graph.num_vertices, 2))
                if u == v or oracle.graph.has_edge(u, v):
                    continue
                service.insert_edge("g", u, v)
                inserted += 1
            stop.set()
            for w in workers:
                w.join()
            assert not errors
            fresh = build_oracle(
                oracle.graph,
                "hl",
                landmarks=[int(r) for r in oracle.highway.landmarks],
            )
            check = sample_vertex_pairs(oracle.graph, 300, seed=31)
            assert np.array_equal(
                service.query_many("g", check), fresh.query_many(check)
            )
            assert oracle.labelling == fresh.labelling


class TestSnapshotsAndStats:
    def test_save_round_trips_through_service(
        self, served_graph, served_oracle, tmp_path
    ):
        from repro.api import open_oracle

        path = tmp_path / "served.hl"
        with DistanceService() as service:
            service.register("g", served_oracle)
            written = service.save("g", path)
        assert written == path.stat().st_size
        restored = open_oracle(served_graph, index=path)
        pairs = sample_vertex_pairs(served_graph, 100, seed=37)
        assert np.array_equal(
            restored.query_many(pairs), served_oracle.query_many(pairs)
        )

    def test_snapshot_requires_capability(self, served_graph, tmp_path):
        with DistanceService() as service:
            service.open("g", served_graph, method="bibfs")
            with pytest.raises(CapabilityError, match="SNAPSHOT"):
                service.save("g", tmp_path / "x.hl")

    def test_stats_shape(self, served_graph, served_oracle):
        with DistanceService(max_wait_ms=0.0) as service:
            service.register("g", served_oracle)
            for _ in range(5):
                service.query("g", 0, 1)
            stats = service.stats("g")
            everything = service.stats()
        assert stats["queries"] == 5
        assert stats["batches"] >= 1
        assert stats["qps"] > 0
        assert stats["p50_ms"] >= 0 and stats["p99_ms"] >= stats["p50_ms"]
        assert stats["version"] == 0
        assert set(everything) == {"g"}
