"""The paper's running example as executable assertions (Figures 2-5).

These tests pin the reproduction to the paper's own worked numbers:
Figure 2(c)'s labels, Figure 3's labelling size, Example 3.5's analysis of
vertex 7, Example 4.2's upper bound and Example 4.3's bounded search.
"""

import numpy as np
import pytest

from repro.core.bounds import upper_bound_distance, upper_bound_with_witness
from repro.core.construction import build_highway_cover_labelling
from repro.core.query import HighwayCoverOracle
from repro.core.verification import is_highway_cover, is_hwc_minimal
from repro.datasets.example_graph import (
    EXAMPLE_LABELS,
    EXAMPLE_LANDMARKS,
    paper_example_graph,
)
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.search.bfs import bfs_distances


@pytest.fixture(scope="module")
def built():
    graph = paper_example_graph()
    labelling, highway = build_highway_cover_labelling(graph, EXAMPLE_LANDMARKS)
    return graph, labelling, highway


class TestFigure2:
    def test_labels_match_figure_2c(self, built):
        graph, labelling, _ = built
        got = {}
        for v in range(graph.num_vertices):
            idx, dist = labelling.label_arrays(v)
            if len(idx):
                got[v] = sorted(
                    (EXAMPLE_LANDMARKS[i], int(d)) for i, d in zip(idx, dist)
                )
        assert got == EXAMPLE_LABELS

    def test_labelling_size_is_13(self, built):
        """Figure 3 reports LS = 13 for the highway cover labelling."""
        _, labelling, _ = built
        assert labelling.size() == 13

    def test_highway_distances(self, built):
        _, _, highway = built
        assert highway.distance(1, 5) == 1.0
        assert highway.distance(1, 9) == 1.0
        assert highway.distance(5, 9) == 2.0

    def test_properties_hold(self, built):
        graph, labelling, highway = built
        assert is_highway_cover(graph, labelling, highway)
        assert is_hwc_minimal(graph, labelling, highway)


class TestExample35:
    """Vertex 7 is labelled by 5 (distance 2) and 9 (distance 1), not 1."""

    def test_vertex_7_label(self, built):
        _, labelling, _ = built
        idx, dist = labelling.label_arrays(7)
        entries = sorted((EXAMPLE_LANDMARKS[i], int(d)) for i, d in zip(idx, dist))
        assert entries == [(5, 2), (9, 1)]

    def test_landmark_1_excluded_because_closer_landmarks_intervene(self, built):
        graph, _, _ = built
        # d(1, 7) = 2, but every shortest path passes landmark 9 or 5.
        assert bfs_distances(graph, 1)[7] == 2
        for mid in graph.neighbors(7):
            mid = int(mid)
            if bfs_distances(graph, 1)[mid] == 1 and graph.has_edge(1, mid):
                assert mid in (5, 9)


class TestExample42:
    def test_upper_bound_between_2_and_11(self, built):
        """Paper: via (5, 1) the bound is 1+1+1 = 3; via (9, 1) it is 4."""
        _, labelling, highway = built
        bound, ri, rj = upper_bound_with_witness(labelling, highway, 2, 11)
        assert bound == 3.0
        assert EXAMPLE_LANDMARKS[ri] == 5
        assert EXAMPLE_LANDMARKS[rj] == 1

    def test_alternative_route_is_4(self, built):
        _, labelling, highway = built
        # Path through landmarks 9 then 1: 2 + 1 + 1.
        i9 = EXAMPLE_LANDMARKS.index(9)
        i1 = EXAMPLE_LANDMARKS.index(1)
        idx2, dist2 = labelling.label_arrays(2)
        idx11, dist11 = labelling.label_arrays(11)
        d_9_2 = int(dist2[list(idx2).index(i9)])
        d_1_11 = int(dist11[list(idx11).index(i1)])
        assert d_9_2 + highway.matrix[i9, i1] + d_1_11 == 4.0


class TestExample43:
    def test_exact_distance_2_to_11_is_3(self):
        graph = paper_example_graph()
        oracle = HighwayCoverOracle(landmarks=EXAMPLE_LANDMARKS).build(graph)
        assert oracle.query(2, 11) == 3.0

    def test_oracle_exact_on_all_pairs(self):
        graph = paper_example_graph()
        oracle = HighwayCoverOracle(landmarks=EXAMPLE_LANDMARKS).build(graph)
        for s in range(1, 15):
            truth = bfs_distances(graph, s)
            for t in range(1, 15):
                assert oracle.query(s, t) == float(truth[t])


class TestFigure4PLLContrast:
    def test_pll_is_order_dependent_hl_is_not(self):
        """Example 3.10: PLL sizes differ across orders; HL's never do."""
        graph = paper_example_graph()
        rest = [v for v in range(graph.num_vertices) if v not in (1, 5, 9)]
        pll_a = PrunedLandmarkLabelling(order=[1, 5, 9] + rest).build(graph)
        pll_b = PrunedLandmarkLabelling(order=[9, 5, 1] + rest).build(graph)
        assert pll_a.labelling_size() != pll_b.labelling_size()

        hl_a, _ = build_highway_cover_labelling(graph, [1, 5, 9])
        hl_b, _ = build_highway_cover_labelling(graph, [9, 5, 1])
        assert hl_a.size() == hl_b.size() == 13

    def test_corollary_3_14_on_example(self):
        """HL's 13 entries beat PLL's landmark-contributed entries."""
        graph = paper_example_graph()
        rest = [v for v in range(graph.num_vertices) if v not in (1, 5, 9)]
        for order in ([1, 5, 9], [9, 5, 1]):
            pll = PrunedLandmarkLabelling(order=order + rest).build(graph)
            assert pll.labels is not None
            landmark_entries = sum(
                1
                for v in range(graph.num_vertices)
                if v not in (1, 5, 9)
                for rank, _ in pll.labels[v]
                if rank < 3
            )
            assert landmark_entries >= 13
