"""Property tests (hypothesis) for snapshot serialization.

Hypothesis draws the *shape* of a synthetic oracle — landmark count
(narrow 8-bit ids vs wide 32-bit ids), extra vertices, label density,
unreachable-pair probability and a numpy seed — and numpy generates the
bulk arrays, which keeps example generation fast while still exploring
the corners the satellite task names: v1↔v2 round trips, narrow/wide
landmark ids, unreachable highway pairs (the 0xFFFF sentinel), empty
labellings, and disconnected graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.highway import Highway
from repro.core.labels import HighwayCoverLabelling
from repro.core.query import HighwayCoverOracle
from repro.core.serialization import load_oracle, save_oracle
from repro.errors import ReproError
from repro.graphs.graph import Graph

from builder_harness import HARNESS_GRAPHS


def _synthetic_oracle(k, extra, seed, density, inf_prob):
    """An oracle shell with random-but-valid labels and highway."""
    n = k + extra
    rng = np.random.default_rng(seed)
    offsets = np.zeros(n + 1, dtype=np.int64)
    all_ids, all_dists = [], []
    for v in range(n):
        count = 0
        if v >= k:  # landmarks carry no label
            count = int(rng.binomial(min(k, 8), density))
        if count:
            chosen = np.sort(
                rng.choice(k, size=count, replace=False)
            ).astype(np.int32)
            all_ids.append(chosen)
            all_dists.append(rng.integers(1, 256, size=count).astype(np.int32))
        offsets[v + 1] = offsets[v] + count
    ids = (
        np.concatenate(all_ids) if all_ids else np.empty(0, dtype=np.int32)
    )
    dists = (
        np.concatenate(all_dists) if all_dists else np.empty(0, dtype=np.int32)
    )
    values = rng.integers(1, 65535, size=(k, k)).astype(float)
    values[rng.random((k, k)) < inf_prob] = np.inf  # 0xFFFF sentinel on disk
    matrix = np.zeros((k, k))
    upper = np.triu(np.ones((k, k), dtype=bool), 1)
    matrix[upper] = values[upper]
    matrix = matrix + matrix.T
    np.fill_diagonal(matrix, 0.0)

    graph = Graph(n, [])
    highway = Highway(list(range(k)), matrix)
    labelling = HighwayCoverLabelling(n, k, offsets, ids, dists)
    oracle = HighwayCoverOracle(num_landmarks=k, landmarks=list(range(k)))
    oracle.graph = graph
    oracle.labelling = labelling
    oracle.highway = highway
    oracle._landmark_mask = highway.landmark_mask(n)
    return graph, oracle


def _assert_state_equal(loaded, oracle):
    original = oracle.labelling.as_vertex_major()
    restored = loaded.labelling.as_vertex_major()
    assert np.array_equal(restored.offsets, original.offsets)
    assert np.array_equal(restored.landmark_indices, original.landmark_indices)
    assert np.array_equal(restored.distances, original.distances)
    assert np.array_equal(loaded.highway.matrix, oracle.highway.matrix)
    assert np.array_equal(loaded.highway.landmarks, oracle.highway.landmarks)


oracle_shapes = st.tuples(
    st.integers(1, 12) | st.integers(250, 300),  # narrow and wide landmark ids
    st.integers(0, 6),
    st.integers(0, 2**32 - 1),
    st.floats(0.0, 1.0),
    st.floats(0.0, 1.0),  # inf_prob = 1.0 → every off-diagonal pair 0xFFFF
)


class TestRoundTripProperties:
    @settings(max_examples=30, deadline=None)
    @given(shape=oracle_shapes, version=st.sampled_from([1, 2]))
    def test_save_load_round_trip(self, tmp_path_factory, shape, version):
        graph, oracle = _synthetic_oracle(*shape)
        path = tmp_path_factory.mktemp("ser") / "index.hl"
        save_oracle(oracle, path, version=version)
        _assert_state_equal(load_oracle(graph, path), oracle)

    @settings(max_examples=20, deadline=None)
    @given(shape=oracle_shapes)
    def test_v1_v2_cross_version_round_trip(self, tmp_path_factory, shape):
        """v1 → load → v2 → load preserves every field, and vice versa."""
        graph, oracle = _synthetic_oracle(*shape)
        tmp = tmp_path_factory.mktemp("ser")
        first, second = tmp / "a.hl", tmp / "b.hl"
        save_oracle(oracle, first, version=1)
        intermediate = load_oracle(graph, first)
        save_oracle(intermediate, second, version=2)
        _assert_state_equal(load_oracle(graph, second), oracle)
        save_oracle(intermediate, second, version=1)
        _assert_state_equal(load_oracle(graph, second), oracle)

    @settings(max_examples=20, deadline=None)
    @given(shape=oracle_shapes)
    def test_mmap_load_matches_copy_load(self, tmp_path_factory, shape):
        graph, oracle = _synthetic_oracle(*shape)
        path = tmp_path_factory.mktemp("ser") / "index.hl"
        save_oracle(oracle, path, version=2)
        mapped = load_oracle(graph, path, mmap=True)
        _assert_state_equal(mapped, oracle)
        assert isinstance(mapped.labelling.offsets, np.memmap)

    @settings(max_examples=20, deadline=None)
    @given(
        shape=oracle_shapes,
        version=st.sampled_from([1, 2]),
        cut=st.floats(0.0, 1.0),
    )
    def test_any_truncation_is_a_clear_error(
        self, tmp_path_factory, shape, version, cut
    ):
        graph, oracle = _synthetic_oracle(*shape)
        path = tmp_path_factory.mktemp("ser") / "index.hl"
        size = save_oracle(oracle, path, version=version)
        keep = min(int(size * cut), size - 1)
        path.write_bytes(path.read_bytes()[:keep])
        with pytest.raises(ReproError):
            load_oracle(graph, path)


class TestRealGraphs:
    @pytest.mark.parametrize("version", [1, 2])
    def test_disconnected_graph_round_trip(self, tmp_path, version):
        graph = HARNESS_GRAPHS["disconnected"]()
        oracle = HighwayCoverOracle(num_landmarks=6).build(graph)
        assert np.isinf(oracle.highway.matrix).any(), (
            "disconnected fixture should exercise the 0xFFFF sentinel"
        )
        path = tmp_path / "index.hl"
        save_oracle(oracle, path, version=version)
        loaded = load_oracle(graph, path)
        _assert_state_equal(loaded, oracle)
        rng = np.random.default_rng(3)
        for s, t in rng.integers(0, graph.num_vertices, size=(40, 2)):
            assert loaded.query(int(s), int(t)) == oracle.query(int(s), int(t))

    def test_landmark_store_snapshots_identically(self, tmp_path, ba_graph):
        """Mutable and frozen backends serialize to identical bytes."""
        frozen = HighwayCoverOracle(num_landmarks=7, store="vertex").build(ba_graph)
        mutable = HighwayCoverOracle(num_landmarks=7, store="landmark").build(ba_graph)
        a, b = tmp_path / "a.hl", tmp_path / "b.hl"
        save_oracle(frozen, a)
        save_oracle(mutable, b)
        assert a.read_bytes() == b.read_bytes()
