"""Unit tests for the Graph façade."""

import numpy as np
import pytest

from repro.errors import GraphError, VertexError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_basic_properties(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], name="p4")
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.name == "p4"

    def test_size_bytes_counts_both_directions(self):
        g = Graph(3, [(0, 1), (1, 2)])
        # 2 edges * 2 directions * 8 bytes, as in Table 1's caption.
        assert g.size_bytes == 32

    def test_from_edge_array(self):
        arr = np.asarray([[0, 1], [1, 2]])
        g = Graph.from_edge_array(3, arr)
        assert g.num_edges == 2

    def test_simple_graph_normalization(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 0), (0, 1)])
        assert g.num_edges == 1


class TestAccessors:
    def test_degree_and_neighbors(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_has_edge(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 0)

    def test_edges_iterates_each_once(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        edges = list(g.edges())
        assert len(edges) == 4
        assert all(u < v for u, v in edges)

    def test_vertex_validation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(VertexError):
            g.degree(3)
        with pytest.raises(VertexError):
            g.neighbors(-1)

    def test_degrees_array(self):
        g = Graph(3, [(0, 1), (0, 2)])
        assert g.degrees().tolist() == [2, 1, 1]


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, old_ids = g.induced_subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert old_ids.tolist() == [1, 2, 3]

    def test_induced_subgraph_out_of_range(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.induced_subgraph([0, 5])

    def test_with_edges_added(self):
        g = Graph(4, [(0, 1)])
        g2 = g.with_edges_added([(2, 3)])
        assert g.num_edges == 1  # immutable original
        assert g2.num_edges == 2
        assert g2.has_edge(2, 3)

    def test_with_edges_removed(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        g2 = g.with_edges_removed([(1, 2)])
        assert g.num_edges == 3  # immutable original
        assert g2.num_edges == 2
        assert not g2.has_edge(1, 2)
        assert g2.has_edge(0, 1) and g2.has_edge(2, 3)

    def test_with_edges_removed_orientation_insensitive(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.with_edges_removed([(2, 1)]) == Graph(3, [(0, 1)])

    def test_with_edges_removed_roundtrip(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
        assert g.with_edges_removed([(2, 3), (0, 5)]).with_edges_added(
            [(2, 3), (0, 5)]
        ) == g

    def test_with_edges_removed_missing_edge_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.with_edges_removed([(1, 2)])

    def test_with_edges_removed_out_of_range_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.with_edges_removed([(0, 7)])

    def test_equality(self):
        g1 = Graph(3, [(0, 1), (1, 2)])
        g2 = Graph(3, [(1, 2), (0, 1)])
        g3 = Graph(3, [(0, 1)])
        assert g1 == g2
        assert g1 != g3
